//! `affectsys` — a Rust reproduction of *"Human Emotion Based Real-time
//! Memory and Computation Management on Resource-Limited Edge Devices"*
//! (Wei, Zhong, Gu — DAC 2022).
//!
//! The paper closes the loop between affective computing and low-level
//! system management on edge devices: a wearable streams biosignals, a
//! phone-side classifier derives the user's emotion in real time, and that
//! emotion drives (1) the power mode of an H.264/AVC video decoder and
//! (2) the background-kill policy of an Android-like app manager.
//!
//! This crate is a facade re-exporting the whole workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`core`](mod@core) | `affect-core` | emotion model, classifiers, policies, controller |
//! | [`obs`] | `affect-obs` | metrics registry, span tracing, Prometheus exposition |
//! | [`rt`] | `affect-rt` | real-time multi-session streaming runtime |
//! | [`fault`] | `affect-fault` | deterministic fault injection / chaos suite |
//! | [`fleet`] | `affect-fleet` | sharded many-session fleet runtime with QoS admission |
//! | [`dsp`] | `dsp` | FFT / MFCC / pitch / spectral features |
//! | [`nn`] | `nn` | from-scratch NN library with int8 quantization |
//! | [`biosignal`] | `biosignal` | synthetic SC/PPG/ECG/IMU/voice generators |
//! | [`datasets`] | `datasets` | RAVDESS/EMOVO/CREMA-D-like corpora |
//! | [`h264`] | `h264` | the affect-adaptive video decoder |
//! | [`mobile`] | `mobile-sim` | the Android-like app/memory simulator |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every figure.
//!
//! # Quickstart
//!
//! Classify a synthetic voice window and let the controller pick a decoder
//! mode:
//!
//! ```
//! use affectsys::core::controller::SystemController;
//! use affectsys::core::emotion::Emotion;
//! use affectsys::core::policy::PolicyTable;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut controller = SystemController::new(PolicyTable::paper_defaults(), 1);
//! let events = controller.observe_emotion(Emotion::Happy)?;
//! assert!(!events.is_empty());
//! println!("video mode now: {:?}", controller.video_mode());
//! # Ok(())
//! # }
//! ```
//!
//! The runnable examples cover the paper's case studies end to end:
//! `cargo run --release --example quickstart`, `video_playback`,
//! `app_management`, `classifier_study`.

/// The paper's core contribution: emotion model, classifiers, policies and
/// the system controller (`affect-core`).
pub use affect_core as core;
/// Deterministic, seed-driven fault injection for chaos testing the loop
/// (`affect-fault`).
pub use affect_fault as fault;
/// The sharded many-session fleet runtime: consistent-hash routing, QoS
/// admission control, fleet-wide report aggregation (`affect-fleet`).
pub use affect_fleet as fleet;
/// The observability layer: metrics registry, span tracing, Prometheus
/// exposition (`affect-obs`).
pub use affect_obs as obs;
/// The real-time multi-session streaming runtime (`affect-rt`).
pub use affect_rt as rt;
pub use biosignal;
pub use datasets;
pub use dsp;
pub use h264;
/// The Android-like mobile OS simulator (`mobile-sim`).
pub use mobile_sim as mobile;
pub use nn;
