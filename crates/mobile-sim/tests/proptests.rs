//! Property-based tests for the mobile simulator's invariants.

use affect_core::emotion::Emotion;
use mobile_sim::device::DeviceConfig;
use mobile_sim::manager::PolicyKind;
use mobile_sim::monkey::MonkeyScript;
use mobile_sim::sim::Simulator;
use mobile_sim::subjects::SubjectProfile;
use mobile_sim::trace::TraceEvent;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn subject_for(index: u8) -> SubjectProfile {
    match index % 4 {
        0 => SubjectProfile::subject1(),
        1 => SubjectProfile::subject2(),
        2 => SubjectProfile::subject3(),
        _ => SubjectProfile::subject4(),
    }
}

fn emotion_for(index: u8) -> Emotion {
    Emotion::ALL[usize::from(index) % Emotion::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every policy, subject, emotion and seed: launches are conserved,
    /// the byte split balances, and the resident set respects the process
    /// limit (+1 transient for the just-launched app).
    #[test]
    fn simulator_invariants(
        seed in 0u64..500,
        subject_idx in 0u8..4,
        emotion_idx in 0u8..8,
        launches in 20usize..80,
        policy_idx in 0u8..3,
    ) {
        let device = DeviceConfig::paper_emulator();
        let subject = subject_for(subject_idx);
        let policy = [PolicyKind::Fifo, PolicyKind::Lru, PolicyKind::Emotion]
            [usize::from(policy_idx) % 3];
        let workload = MonkeyScript::new(&subject, seed)
            .segment(emotion_for(emotion_idx), 600.0, launches)
            .build(&device)
            .unwrap();
        let mut sim = Simulator::with_subject(device.clone(), policy, &subject, 0.05).unwrap();
        let metrics = sim.run(&workload).unwrap();

        prop_assert_eq!(metrics.launches, launches);
        prop_assert_eq!(metrics.launches, metrics.cold_starts + metrics.warm_starts);
        prop_assert_eq!(metrics.loaded_bytes, metrics.flash_bytes + metrics.allocated_bytes);
        prop_assert!(metrics.load_time_s >= 0.0);

        // Replay the trace: the resident set never exceeds limit + 1 and
        // kills only target alive processes.
        let mut alive: BTreeSet<usize> = BTreeSet::new();
        for event in &metrics.trace {
            match event {
                TraceEvent::Launch { app_id, .. } => {
                    alive.insert(*app_id);
                }
                TraceEvent::Kill { app_id, .. } => {
                    prop_assert!(alive.remove(app_id), "killed a dead process");
                }
                TraceEvent::EmotionChange { .. } => {}
            }
            prop_assert!(alive.len() <= device.process_limit + 1);
        }
    }

    /// The same workload always produces the same metrics (full
    /// determinism, the foundation of the A/B comparison).
    #[test]
    fn simulator_deterministic(seed in 0u64..200, policy_idx in 0u8..3) {
        let device = DeviceConfig::paper_emulator();
        let subject = SubjectProfile::subject3();
        let policy = [PolicyKind::Fifo, PolicyKind::Lru, PolicyKind::Emotion]
            [usize::from(policy_idx) % 3];
        let workload = MonkeyScript::new(&subject, seed)
            .segment(Emotion::Happy, 300.0, 30)
            .build(&device)
            .unwrap();
        let run = || {
            let mut sim =
                Simulator::with_subject(device.clone(), policy, &subject, 0.05).unwrap();
            sim.run(&workload).unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    /// Trace timestamps are non-decreasing.
    #[test]
    fn trace_is_time_ordered(seed in 0u64..200) {
        let device = DeviceConfig::paper_emulator();
        let subject = SubjectProfile::subject1();
        let workload = MonkeyScript::new(&subject, seed)
            .segment(Emotion::Sad, 400.0, 40)
            .build(&device)
            .unwrap();
        let mut sim = Simulator::new(device, PolicyKind::Emotion).unwrap();
        let metrics = sim.run(&workload).unwrap();
        for pair in metrics.trace.windows(2) {
            prop_assert!(pair[0].time_s() <= pair[1].time_s());
        }
    }

    /// Monkey workloads respect their segment structure for any subject
    /// and emotion: counts, ordering, and app validity.
    #[test]
    fn monkey_workloads_well_formed(
        seed in 0u64..500,
        subject_idx in 0u8..4,
        a in 1usize..40,
        b in 1usize..40,
    ) {
        let device = DeviceConfig::paper_emulator();
        let subject = subject_for(subject_idx);
        let workload = MonkeyScript::new(&subject, seed)
            .segment(Emotion::Happy, 300.0, a)
            .segment(Emotion::Calm, 300.0, b)
            .build(&device)
            .unwrap();
        prop_assert_eq!(workload.len(), a + b);
        prop_assert!(workload.events.iter().all(|e| e.app_id < device.apps.len()));
        prop_assert!(workload.events.iter().all(|e| e.dwell_s > 0.0));
        let happy = workload.events.iter().filter(|e| e.emotion == Emotion::Happy).count();
        prop_assert_eq!(happy, a);
    }
}
