//! The four personality-based usage profiles of the paper's Fig. 7.
//!
//! The paper samples four subjects from a 640-subject personality/usage
//! study and uses their personalities to "emulate the impact of different
//! affects to the user's App usage patterns". Messaging and internet
//! browsing dominate every subject (60–70% combined); the remaining share
//! varies with personality.

use crate::app::AppCategory;
use std::collections::BTreeMap;

/// Big-Five personality scores in `[0, 1]` (O, C, E, A, ES).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BigFive {
    /// Openness.
    pub openness: f32,
    /// Conscientiousness.
    pub conscientiousness: f32,
    /// Extraversion.
    pub extraversion: f32,
    /// Agreeableness.
    pub agreeableness: f32,
    /// Emotional stability.
    pub emotional_stability: f32,
}

/// A subject: personality plus daily app-usage shares by category.
#[derive(Debug, Clone, PartialEq)]
pub struct SubjectProfile {
    /// Subject number (1–4 as in the paper).
    pub id: u8,
    /// The personality trait the paper highlights for this subject.
    pub trait_label: String,
    /// Big-Five scores.
    pub personality: BigFive,
    /// Usage share per category; sums to 1.
    usage: BTreeMap<AppCategory, f32>,
}

impl SubjectProfile {
    fn build(id: u8, trait_label: &str, personality: BigFive, raw: &[(AppCategory, f32)]) -> Self {
        let total: f32 = raw.iter().map(|&(_, w)| w).sum();
        let usage = raw
            .iter()
            .map(|&(c, w)| (c, w / total))
            .collect::<BTreeMap<_, _>>();
        Self {
            id,
            trait_label: trait_label.into(),
            personality,
            usage,
        }
    }

    /// Subject 1: high "agreeableness and willingness to trust" — frequent
    /// radio, sharing-cloud and TV/video apps.
    pub fn subject1() -> Self {
        Self::build(
            1,
            "agreeableness / willingness to trust",
            BigFive {
                openness: 0.55,
                conscientiousness: 0.5,
                extraversion: 0.45,
                agreeableness: 0.9,
                emotional_stability: 0.55,
            },
            &[
                (AppCategory::Messaging, 38.0),
                (AppCategory::InternetBrowser, 26.0),
                (AppCategory::MusicAudioRadio, 8.0),
                (AppCategory::SharingCloud, 7.0),
                (AppCategory::Tv, 6.0),
                (AppCategory::VideoApps, 4.0),
                (AppCategory::SocialNetworks, 3.0),
                (AppCategory::EMail, 2.5),
                (AppCategory::Gallery, 1.5),
                (AppCategory::Camera, 1.0),
                (AppCategory::Settings, 1.0),
                (AppCategory::Calling, 1.0),
                (AppCategory::CalendarApps, 1.0),
            ],
        )
    }

    /// Subject 2: median scores — even usage across sharing cloud,
    /// browsing and TV/video apps.
    pub fn subject2() -> Self {
        Self::build(
            2,
            "median / average",
            BigFive {
                openness: 0.5,
                conscientiousness: 0.5,
                extraversion: 0.5,
                agreeableness: 0.5,
                emotional_stability: 0.5,
            },
            &[
                (AppCategory::Messaging, 36.0),
                (AppCategory::InternetBrowser, 28.0),
                (AppCategory::SharingCloud, 6.0),
                (AppCategory::Tv, 6.0),
                (AppCategory::VideoApps, 5.0),
                (AppCategory::SocialNetworks, 4.0),
                (AppCategory::EMail, 3.5),
                (AppCategory::MusicAudioRadio, 3.0),
                (AppCategory::Gallery, 2.5),
                (AppCategory::Foto, 2.0),
                (AppCategory::Shopping, 2.0),
                (AppCategory::Settings, 1.0),
                (AppCategory::Calculator, 1.0),
            ],
        )
    }

    /// Subject 3: high "cheerfulness and positive mood" — the excited
    /// profile, heavy on calling and shared transportation.
    pub fn subject3() -> Self {
        Self::build(
            3,
            "cheerfulness / happiness / excited",
            BigFive {
                openness: 0.6,
                conscientiousness: 0.45,
                extraversion: 0.85,
                agreeableness: 0.6,
                emotional_stability: 0.7,
            },
            &[
                (AppCategory::Messaging, 34.0),
                (AppCategory::InternetBrowser, 26.0),
                (AppCategory::Calling, 9.0),
                (AppCategory::SharedTransport, 8.0),
                (AppCategory::SocialNetworks, 6.0),
                (AppCategory::Camera, 4.0),
                (AppCategory::Shopping, 3.5),
                (AppCategory::Foto, 3.0),
                (AppCategory::MusicAudioRadio, 2.5),
                (AppCategory::Gallery, 1.5),
                (AppCategory::TimerClocks, 1.0),
                (AppCategory::Settings, 1.0),
                (AppCategory::EMail, 0.5),
            ],
        )
    }

    /// Subject 4: median scores with a very even usage pattern — the calm
    /// profile.
    pub fn subject4() -> Self {
        Self::build(
            4,
            "emotion robustness / calm",
            BigFive {
                openness: 0.5,
                conscientiousness: 0.55,
                extraversion: 0.4,
                agreeableness: 0.55,
                emotional_stability: 0.8,
            },
            &[
                (AppCategory::Messaging, 33.0),
                (AppCategory::InternetBrowser, 29.0),
                (AppCategory::EMail, 5.0),
                (AppCategory::MusicAudioRadio, 5.0),
                (AppCategory::Tv, 4.5),
                (AppCategory::Gallery, 4.0),
                (AppCategory::VideoApps, 4.0),
                (AppCategory::CalendarApps, 3.5),
                (AppCategory::SharingCloud, 3.0),
                (AppCategory::SocialNetworks, 2.5),
                (AppCategory::Video, 2.5),
                (AppCategory::Settings, 2.0),
                (AppCategory::Calculator, 2.0),
            ],
        )
    }

    /// All four subjects in paper order.
    pub fn paper_subjects() -> Vec<SubjectProfile> {
        vec![
            Self::subject1(),
            Self::subject2(),
            Self::subject3(),
            Self::subject4(),
        ]
    }

    /// Usage share of a category (0 when the subject never uses it).
    pub fn usage_share(&self, category: AppCategory) -> f32 {
        self.usage.get(&category).copied().unwrap_or(0.0)
    }

    /// Categories with nonzero usage, highest share first.
    pub fn top_categories(&self) -> Vec<(AppCategory, f32)> {
        let mut v: Vec<(AppCategory, f32)> = self.usage.iter().map(|(&c, &w)| (c, w)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_subjects_with_normalized_usage() {
        for s in SubjectProfile::paper_subjects() {
            let total: f32 = AppCategory::ALL.iter().map(|&c| s.usage_share(c)).sum();
            assert!((total - 1.0).abs() < 1e-5, "subject {}: {total}", s.id);
        }
    }

    #[test]
    fn messaging_plus_browsing_dominates() {
        // The paper: about 60% to 70% combined for every subject.
        for s in SubjectProfile::paper_subjects() {
            let share =
                s.usage_share(AppCategory::Messaging) + s.usage_share(AppCategory::InternetBrowser);
            assert!((0.55..=0.75).contains(&share), "subject {}: {share}", s.id);
        }
    }

    #[test]
    fn subject1_favours_radio_cloud_tv() {
        let s = SubjectProfile::subject1();
        assert!(s.usage_share(AppCategory::MusicAudioRadio) > 0.05);
        assert!(s.usage_share(AppCategory::SharingCloud) > 0.05);
        assert!(s.usage_share(AppCategory::Tv) > 0.04);
    }

    #[test]
    fn subject3_favours_calling_and_transport() {
        let s = SubjectProfile::subject3();
        assert!(s.usage_share(AppCategory::Calling) > 0.06);
        assert!(s.usage_share(AppCategory::SharedTransport) > 0.06);
        assert!(s.personality.extraversion > 0.8);
    }

    #[test]
    fn top_categories_sorted_descending() {
        let tops = SubjectProfile::subject2().top_categories();
        assert_eq!(tops[0].0, AppCategory::Messaging);
        for w in tops.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn subjects_differ_in_tail_usage() {
        let s1 = SubjectProfile::subject1();
        let s3 = SubjectProfile::subject3();
        assert!(s3.usage_share(AppCategory::Calling) > s1.usage_share(AppCategory::Calling));
        assert!(s1.usage_share(AppCategory::Tv) > s3.usage_share(AppCategory::Tv));
    }
}
