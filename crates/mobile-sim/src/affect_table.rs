//! The App Affect Table: per-emotion app-launch propensities with online
//! learning.
//!
//! The paper's "emotional background manager has an App rank generator and
//! a background App Affect Table \[which\] stores the user specific app usage
//! pattern with certain emotional states". Here the table is seeded from a
//! subject profile (baseline category shares × emotion affinity) and
//! refined online with an exponential moving average over observed
//! launches, so the manager personalizes as the user behaves.

use crate::app::{App, AppCategory};
use crate::subjects::SubjectProfile;
use affect_core::emotion::Emotion;
use std::collections::BTreeMap;

/// Per-emotion, per-category launch propensities.
///
/// # Example
///
/// ```
/// use affect_core::emotion::Emotion;
/// use mobile_sim::affect_table::AppAffectTable;
/// use mobile_sim::app::AppCategory;
/// use mobile_sim::subjects::SubjectProfile;
///
/// let table = AppAffectTable::from_subject(&SubjectProfile::subject3(), 0.05);
/// // Subject 3 calls a lot when excited.
/// let call = table.propensity(Emotion::Happy, AppCategory::Calling);
/// let tv = table.propensity(Emotion::Happy, AppCategory::Tv);
/// assert!(call > tv);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AppAffectTable {
    /// `table[emotion][category] -> propensity` (each emotion row sums to 1).
    table: BTreeMap<Emotion, BTreeMap<AppCategory, f32>>,
    /// EMA learning rate for online updates.
    alpha: f32,
}

impl AppAffectTable {
    /// Seeds the table from a subject profile: the subject's baseline usage
    /// shares modulated by each emotion's category affinity, re-normalized
    /// per emotion. `alpha` is the online-update rate (0 disables learning).
    pub fn from_subject(subject: &SubjectProfile, alpha: f32) -> Self {
        let mut table = BTreeMap::new();
        for emotion in Emotion::ALL {
            let mut row: BTreeMap<AppCategory, f32> = BTreeMap::new();
            let mut total = 0.0f32;
            for category in AppCategory::ALL {
                let w = subject.usage_share(category) * category.emotion_affinity(emotion);
                if w > 0.0 {
                    row.insert(category, w);
                    total += w;
                }
            }
            if total > 0.0 {
                for v in row.values_mut() {
                    *v /= total;
                }
            }
            table.insert(emotion, row);
        }
        Self {
            table,
            alpha: alpha.clamp(0.0, 1.0),
        }
    }

    /// The learning rate.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Launch propensity of a category under an emotion (0 when unknown).
    pub fn propensity(&self, emotion: Emotion, category: AppCategory) -> f32 {
        self.table
            .get(&emotion)
            .and_then(|row| row.get(&category))
            .copied()
            .unwrap_or(0.0)
    }

    /// Records an observed launch, nudging the emotion's row toward the
    /// launched category by the EMA rate (the "App Running Record with
    /// Emotion Conditions" feedback loop of Fig. 8).
    pub fn record_launch(&mut self, emotion: Emotion, category: AppCategory) {
        if self.alpha == 0.0 {
            return;
        }
        let row = self.table.entry(emotion).or_default();
        for c in AppCategory::ALL {
            let target = if c == category { 1.0 } else { 0.0 };
            let v = row.entry(c).or_insert(0.0);
            *v += self.alpha * (target - *v);
        }
    }

    /// Retention rank of an app under the current emotion: higher = keep
    /// longer. Used by the rank generator to order the background list.
    pub fn rank(&self, emotion: Emotion, app: &App) -> f32 {
        self.propensity(emotion, app.category)
    }
}

/// Live re-ranking front end for the app manager, driven by the affect
/// loop at runtime.
///
/// The simulator consumes emotions from a pre-labelled workload; the
/// reranker instead holds the *current* emotion between updates so a
/// streaming controller can retarget it as classifications arrive. It is
/// the memory side's actuation endpoint for the `affect-rt` runtime.
#[derive(Debug, Clone)]
pub struct EmotionReranker {
    table: AppAffectTable,
    emotion: Emotion,
    reranks: usize,
    rerank_metric: Option<std::sync::Arc<affect_obs::Counter>>,
}

impl EmotionReranker {
    /// Creates a reranker over `table`, starting in `initial` emotion.
    pub fn new(table: AppAffectTable, initial: Emotion) -> Self {
        Self {
            table,
            emotion: initial,
            reranks: 0,
            rerank_metric: None,
        }
    }

    /// Registers `mobile_sim_reranks_total` with `registry` and bumps it
    /// on every effective re-rank observed by this instance.
    pub fn attach_metrics(&mut self, registry: &affect_obs::MetricsRegistry) {
        self.rerank_metric = Some(registry.counter(
            "mobile_sim_reranks_total",
            "background-list re-ranks triggered by emotion changes",
            &[],
        ));
    }

    /// The emotion the current ranking is conditioned on.
    pub fn emotion(&self) -> Emotion {
        self.emotion
    }

    /// Number of effective emotion changes (re-ranks) applied so far.
    pub fn reranks(&self) -> usize {
        self.reranks
    }

    /// The underlying affect table.
    pub fn table(&self) -> &AppAffectTable {
        &self.table
    }

    /// Observes a classified emotion. Returns `true` when it differs from
    /// the current one (the background list must be re-ranked); repeating
    /// the current emotion is a no-op.
    pub fn observe(&mut self, emotion: Emotion) -> bool {
        if emotion == self.emotion {
            return false;
        }
        self.emotion = emotion;
        self.reranks += 1;
        if let Some(m) = &self.rerank_metric {
            m.inc();
        }
        true
    }

    /// Indices of `apps` ordered most-retainable first under the current
    /// emotion (the head survives longest; the tail is killed first).
    /// Ties break by input order, keeping the ranking deterministic.
    pub fn retention_order(&self, apps: &[App]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..apps.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = self.table.rank(self.emotion, &apps[a]);
            let rb = self.table.rank(self.emotion, &apps[b]);
            rb.total_cmp(&ra).then(a.cmp(&b))
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    #[test]
    fn rows_are_normalized() {
        let t = AppAffectTable::from_subject(&SubjectProfile::subject1(), 0.1);
        for e in Emotion::ALL {
            let total: f32 = AppCategory::ALL.iter().map(|&c| t.propensity(e, c)).sum();
            assert!((total - 1.0).abs() < 1e-4, "{e}: {total}");
        }
    }

    #[test]
    fn emotion_modulates_rows() {
        let t = AppAffectTable::from_subject(&SubjectProfile::subject3(), 0.0);
        // Relative weight of calling rises from calm to happy.
        let happy = t.propensity(Emotion::Happy, AppCategory::Calling)
            / t.propensity(Emotion::Happy, AppCategory::MusicAudioRadio);
        let calm = t.propensity(Emotion::Calm, AppCategory::Calling)
            / t.propensity(Emotion::Calm, AppCategory::MusicAudioRadio);
        assert!(happy > calm, "{happy} vs {calm}");
    }

    #[test]
    fn learning_shifts_propensity() {
        let mut t = AppAffectTable::from_subject(&SubjectProfile::subject2(), 0.2);
        let before = t.propensity(Emotion::Sad, AppCategory::Shopping);
        for _ in 0..10 {
            t.record_launch(Emotion::Sad, AppCategory::Shopping);
        }
        let after = t.propensity(Emotion::Sad, AppCategory::Shopping);
        assert!(after > before + 0.3, "{before} -> {after}");
    }

    #[test]
    fn zero_alpha_disables_learning() {
        let mut t = AppAffectTable::from_subject(&SubjectProfile::subject2(), 0.0);
        let before = t.clone();
        t.record_launch(Emotion::Happy, AppCategory::Camera);
        assert_eq!(t, before);
    }

    #[test]
    fn rank_follows_category_propensity() {
        let t = AppAffectTable::from_subject(&SubjectProfile::subject3(), 0.0);
        let device = DeviceConfig::paper_emulator();
        let dialer = device.apps_in(AppCategory::Calling)[0];
        let tv = device.apps_in(AppCategory::Tv)[0];
        assert!(t.rank(Emotion::Happy, dialer) > t.rank(Emotion::Happy, tv));
    }

    #[test]
    fn alpha_clamped() {
        let t = AppAffectTable::from_subject(&SubjectProfile::subject1(), 5.0);
        assert_eq!(t.alpha(), 1.0);
    }

    #[test]
    fn reranker_counts_only_effective_changes() {
        let t = AppAffectTable::from_subject(&SubjectProfile::subject3(), 0.0);
        let mut r = EmotionReranker::new(t, Emotion::Neutral);
        assert!(!r.observe(Emotion::Neutral));
        assert_eq!(r.reranks(), 0);
        assert!(r.observe(Emotion::Happy));
        assert!(!r.observe(Emotion::Happy));
        assert!(r.observe(Emotion::Calm));
        assert_eq!(r.reranks(), 2);
        assert_eq!(r.emotion(), Emotion::Calm);
    }

    #[test]
    fn retention_order_tracks_emotion() {
        let t = AppAffectTable::from_subject(&SubjectProfile::subject3(), 0.0);
        let device = DeviceConfig::paper_emulator();
        let apps: Vec<_> = vec![
            device.apps_in(AppCategory::Tv)[0].clone(),
            device.apps_in(AppCategory::Calling)[0].clone(),
        ];
        let mut r = EmotionReranker::new(t, Emotion::Happy);
        // Subject 3 calls a lot when excited: the dialer outranks TV.
        assert_eq!(r.retention_order(&apps), vec![1, 0]);
        // A full ordering is a permutation regardless of emotion.
        r.observe(Emotion::Calm);
        let order = r.retention_order(&apps);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }
}
