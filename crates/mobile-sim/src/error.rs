//! Error type for the mobile simulator.

use std::error::Error;
use std::fmt;

/// Error returned by fallible simulator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter was invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint that was violated.
        reason: &'static str,
    },
    /// A workload referenced an app id the device does not have installed.
    UnknownApp(usize),
    /// The workload was empty.
    EmptyWorkload,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SimError::UnknownApp(id) => write!(f, "unknown app id {id}"),
            SimError::EmptyWorkload => write!(f, "workload has no events"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn display_mentions_app_id() {
        assert!(SimError::UnknownApp(7).to_string().contains('7'));
    }
}
