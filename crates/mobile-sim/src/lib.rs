//! An Android-like mobile OS simulator for the `affectsys` reproduction
//! (DAC 2022, Sec. 5): processes, RAM and flash, background app managers,
//! monkey-style workloads and Perfetto-like tracing.
//!
//! The paper's second case study replaces Android's default
//! first-in-first-out background-kill policy with an *emotion-adaptive* app
//! manager: an App Affect Table records which apps the user tends to open
//! in each emotional state, and when the process limit (20) or memory is
//! exceeded, the app *least likely under the current emotion* is killed
//! instead of the oldest. Keeping likely apps resident avoids flash→RAM
//! reloads, saving 17% of memory loaded at app start and 12% of loading
//! time in the paper's emulator study.
//!
//! This crate rebuilds that study end to end:
//!
//! * [`device`] — the paper's emulator configuration (Fig. 7 right: Android
//!   11, 4 GB RAM, 32 GB flash, 44 apps, process limit 20);
//! * [`app`] — app categories from the usage study and synthetic app
//!   footprints;
//! * [`subjects`] — the four personality-based usage profiles (Fig. 7 left);
//! * [`affect_table`] — the App Affect Table with online EMA learning;
//! * [`manager`] — FIFO (Android default), LRU, and Emotion policies;
//! * [`monkey`] — the monkey-script workload generator;
//! * [`sim`] — the discrete-event simulator with full accounting;
//! * [`trace`] — process-lifespan timelines (Fig. 9) and event logs.
//!
//! # Example
//!
//! ```
//! use mobile_sim::device::DeviceConfig;
//! use mobile_sim::manager::PolicyKind;
//! use mobile_sim::monkey::MonkeyScript;
//! use mobile_sim::sim::Simulator;
//! use mobile_sim::subjects::SubjectProfile;
//! use affect_core::emotion::Emotion;
//!
//! # fn main() -> Result<(), mobile_sim::SimError> {
//! let device = DeviceConfig::paper_emulator();
//! let subject = SubjectProfile::subject3();
//! let workload = MonkeyScript::new(&subject, 42)
//!     .segment(Emotion::Happy, 120.0, 10)
//!     .build(&device)?;
//! let mut sim = Simulator::new(device, PolicyKind::Fifo)?;
//! let metrics = sim.run(&workload)?;
//! assert_eq!(metrics.launches, 10);
//! # Ok(())
//! # }
//! ```

// `!(x > 0.0)` guards are deliberate: unlike `x <= 0.0` they also reject
// NaN, which is exactly what the parameter validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod affect_table;
pub mod app;
pub mod device;
pub mod error;
pub mod manager;
pub mod monkey;
pub mod sim;
pub mod subjects;
pub mod trace;

pub use error::SimError;
