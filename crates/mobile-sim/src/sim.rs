//! The discrete-event simulator and the Fig. 10 policy comparison.

use crate::device::DeviceConfig;
use crate::manager::{make_policy, BackgroundPolicy, PolicyContext, PolicyKind, ResidentProcess};
use crate::monkey::Workload;
use crate::subjects::SubjectProfile;
use crate::trace::{ProcessTimeline, TraceEvent};
use crate::SimError;
use affect_core::emotion::Emotion;
use affect_obs::{Counter, Histogram, MetricsRegistry};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Metrics of one simulated session — the quantities of the paper's
/// Fig. 10: total memory loaded at app start and total app loading time.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMetrics {
    /// Policy that produced the run.
    pub policy: PolicyKind,
    /// Total launches.
    pub launches: usize,
    /// Launches that required a flash reload.
    pub cold_starts: usize,
    /// Launches served from a resident process.
    pub warm_starts: usize,
    /// Background kills performed.
    pub kills: usize,
    /// Total memory loaded at app start (flash file loading + app-specific
    /// allocated memory), in bytes.
    pub loaded_bytes: u64,
    /// Flash file-loading component of `loaded_bytes`.
    pub flash_bytes: u64,
    /// App-specific allocated-memory component of `loaded_bytes`.
    pub allocated_bytes: u64,
    /// Total app loading time in seconds.
    pub load_time_s: f64,
    /// Peak resident app RAM over the session, in bytes.
    pub peak_resident_bytes: u64,
    /// Peak resident process count.
    pub peak_resident_processes: usize,
    /// Full event trace.
    pub trace: Vec<TraceEvent>,
    /// Session duration in seconds.
    pub duration_s: f64,
}

impl SimMetrics {
    /// The Fig. 9 process timeline of this run.
    pub fn timeline(&self) -> ProcessTimeline {
        ProcessTimeline::from_trace(&self.trace, self.duration_s)
    }
}

/// The simulator: a device, a kill policy, and the launch semantics of an
/// Android-like foreground/background service pair.
#[derive(Debug)]
pub struct Simulator {
    device: DeviceConfig,
    policy: Box<dyn BackgroundPolicy>,
    kind: PolicyKind,
    /// Resume latency of a warm start (no flash traffic).
    warm_start_secs: f64,
    metrics: Option<SimObs>,
}

/// Registered `mobile_sim_*` observability handles (see
/// `docs/OBSERVABILITY.md`). Kills are labelled by the policy that chose
/// the victim, so FIFO/LRU/emotion runs against one registry stay
/// distinguishable.
#[derive(Debug, Clone)]
struct SimObs {
    launches: Arc<Counter>,
    cold_starts: Arc<Counter>,
    warm_starts: Arc<Counter>,
    kills: Arc<Counter>,
    reload_bytes: Arc<Counter>,
    flash_bytes: Arc<Counter>,
    start_latency: Arc<Histogram>,
}

/// Short label value for a policy (the `Display` form is prose).
fn policy_label(kind: PolicyKind) -> &'static str {
    match kind {
        PolicyKind::Fifo => "fifo",
        PolicyKind::Lru => "lru",
        PolicyKind::Emotion => "emotion",
    }
}

impl Simulator {
    /// Creates a simulator. The emotion policy is seeded from subject 3
    /// (use [`Simulator::with_subject`] to pick another profile).
    ///
    /// # Errors
    ///
    /// Propagates device validation errors.
    pub fn new(device: DeviceConfig, kind: PolicyKind) -> Result<Self, SimError> {
        Self::with_subject(device, kind, &SubjectProfile::subject3(), 0.05)
    }

    /// Creates a simulator whose emotion policy is seeded from `subject`
    /// with online learning rate `alpha`.
    ///
    /// # Errors
    ///
    /// Propagates device validation errors.
    pub fn with_subject(
        device: DeviceConfig,
        kind: PolicyKind,
        subject: &SubjectProfile,
        alpha: f32,
    ) -> Result<Self, SimError> {
        device.validate()?;
        Ok(Self {
            policy: make_policy(kind, subject, alpha),
            device,
            kind,
            warm_start_secs: 0.05,
            metrics: None,
        })
    }

    /// The device configuration.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Registers the simulator's `mobile_sim_*` series with `registry`
    /// (kills labelled by this simulator's policy) and keeps them updated
    /// during [`Simulator::run`].
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        let policy = policy_label(self.kind);
        self.metrics = Some(SimObs {
            launches: registry.counter(
                "mobile_sim_launches_total",
                "app launches executed by the workload",
                &[("policy", policy)],
            ),
            cold_starts: registry.counter(
                "mobile_sim_cold_starts_total",
                "launches that reloaded the app from flash",
                &[("policy", policy)],
            ),
            warm_starts: registry.counter(
                "mobile_sim_warm_starts_total",
                "launches served from a resident process",
                &[("policy", policy)],
            ),
            kills: registry.counter(
                "mobile_sim_kills_total",
                "background processes killed by the manager",
                &[("policy", policy)],
            ),
            reload_bytes: registry.counter(
                "mobile_sim_reload_bytes_total",
                "memory loaded at app start (flash + allocated)",
                &[("policy", policy)],
            ),
            flash_bytes: registry.counter(
                "mobile_sim_flash_bytes_total",
                "flash file-loading component of reload traffic",
                &[("policy", policy)],
            ),
            start_latency: registry.histogram(
                "mobile_sim_app_start_latency_ns",
                "per-launch app start latency (simulated)",
                &[("policy", policy)],
            ),
        });
    }

    /// Runs a workload to completion.
    ///
    /// Launch semantics: a launch of a resident app is a *warm start*
    /// (foreground swap, no flash traffic); otherwise a *cold start* loads
    /// the app's code from flash and allocates its RAM. After every launch
    /// the background manager enforces the process limit and the RAM
    /// budget by killing policy-selected victims.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyWorkload`] for an empty workload and
    /// [`SimError::UnknownApp`] when the workload references an app the
    /// device lacks.
    pub fn run(&mut self, workload: &Workload) -> Result<SimMetrics, SimError> {
        if workload.is_empty() {
            return Err(SimError::EmptyWorkload);
        }
        let mut residents: Vec<ResidentProcess> = Vec::new();
        let mut launch_counts: BTreeMap<usize, u32> = BTreeMap::new();
        let mut trace: Vec<TraceEvent> = Vec::new();
        let mut metrics = SimMetrics {
            policy: self.kind,
            launches: 0,
            cold_starts: 0,
            warm_starts: 0,
            kills: 0,
            loaded_bytes: 0,
            flash_bytes: 0,
            allocated_bytes: 0,
            load_time_s: 0.0,
            peak_resident_bytes: 0,
            peak_resident_processes: 0,
            trace: Vec::new(),
            duration_s: workload.duration_s,
        };
        let mut current_emotion: Option<Emotion> = None;

        for event in &workload.events {
            let app = self.device.app(event.app_id)?.clone();

            if current_emotion != Some(event.emotion) {
                current_emotion = Some(event.emotion);
                trace.push(TraceEvent::EmotionChange {
                    time_s: event.time_s,
                    emotion: event.emotion,
                });
            }
            self.policy.observe_launch(event.emotion, app.category);
            *launch_counts.entry(event.app_id).or_insert(0) += 1;
            metrics.launches += 1;
            if let Some(obs) = &self.metrics {
                obs.launches.inc();
            }

            // Clear the previous foreground.
            for p in &mut residents {
                p.foreground = false;
            }

            if let Some(p) = residents.iter_mut().find(|p| p.app_id == event.app_id) {
                p.foreground = true;
                p.last_used = event.time_s;
                metrics.warm_starts += 1;
                metrics.load_time_s += self.warm_start_secs;
                if let Some(obs) = &self.metrics {
                    obs.warm_starts.inc();
                    obs.start_latency.record(secs_to_ns(self.warm_start_secs));
                }
                trace.push(TraceEvent::Launch {
                    time_s: event.time_s,
                    app_id: event.app_id,
                    cold: false,
                });
            } else {
                metrics.cold_starts += 1;
                // "The memory loading saving comes from roughly equal
                // saving of file loading from flash drive and app-specific
                // allocated memory space."
                metrics.loaded_bytes += app.cold_load_bytes + app.ram_bytes;
                metrics.flash_bytes += app.cold_load_bytes;
                metrics.allocated_bytes += app.ram_bytes;
                let cold_secs = app.cold_start_secs(self.device.flash_read_bps);
                metrics.load_time_s += cold_secs;
                if let Some(obs) = &self.metrics {
                    obs.cold_starts.inc();
                    obs.reload_bytes.add(app.cold_load_bytes + app.ram_bytes);
                    obs.flash_bytes.add(app.cold_load_bytes);
                    obs.start_latency.record(secs_to_ns(cold_secs));
                }
                residents.push(ResidentProcess {
                    app_id: event.app_id,
                    started_at: event.time_s,
                    last_used: event.time_s,
                    foreground: true,
                });
                trace.push(TraceEvent::Launch {
                    time_s: event.time_s,
                    app_id: event.app_id,
                    cold: true,
                });
            }

            // Enforce the process limit and RAM budget.
            loop {
                let used_ram: u64 = residents
                    .iter()
                    .map(|p| self.device.app(p.app_id).map(|a| a.ram_bytes).unwrap_or(0))
                    .sum();
                metrics.peak_resident_bytes = metrics.peak_resident_bytes.max(used_ram);
                metrics.peak_resident_processes =
                    metrics.peak_resident_processes.max(residents.len());
                let over_limit = residents.len() > self.device.process_limit;
                let over_ram = used_ram > self.device.app_ram_bytes();
                if !over_limit && !over_ram {
                    break;
                }
                let ctx = PolicyContext {
                    emotion: event.emotion,
                    launch_counts: &launch_counts,
                    device: &self.device,
                };
                let Some(victim) = self.policy.choose_victim(&residents, &ctx) else {
                    break; // everything protected; tolerate the overshoot
                };
                residents.retain(|p| p.app_id != victim);
                metrics.kills += 1;
                if let Some(obs) = &self.metrics {
                    obs.kills.inc();
                }
                trace.push(TraceEvent::Kill {
                    time_s: event.time_s,
                    app_id: victim,
                });
            }
        }

        metrics.trace = trace;
        Ok(metrics)
    }
}

/// Converts a simulated duration to nanoseconds for histogram recording.
fn secs_to_ns(secs: f64) -> u64 {
    (secs * 1e9) as u64
}

/// Side-by-side Fig. 10 comparison of the emotion-driven manager against a
/// baseline policy on the identical workload.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// The baseline run.
    pub baseline: SimMetrics,
    /// The emotion-driven run.
    pub emotion: SimMetrics,
}

impl ComparisonReport {
    /// Fractional saving of total memory loaded at app start
    /// (paper: 17%).
    pub fn memory_saving(&self) -> f64 {
        if self.baseline.loaded_bytes == 0 {
            return 0.0;
        }
        1.0 - self.emotion.loaded_bytes as f64 / self.baseline.loaded_bytes as f64
    }

    /// Fractional saving of the flash file-loading component.
    pub fn flash_saving(&self) -> f64 {
        if self.baseline.flash_bytes == 0 {
            return 0.0;
        }
        1.0 - self.emotion.flash_bytes as f64 / self.baseline.flash_bytes as f64
    }

    /// Fractional saving of the app-specific allocated-memory component.
    pub fn allocated_saving(&self) -> f64 {
        if self.baseline.allocated_bytes == 0 {
            return 0.0;
        }
        1.0 - self.emotion.allocated_bytes as f64 / self.baseline.allocated_bytes as f64
    }

    /// Fractional saving of total app loading time (paper: 12%).
    pub fn time_saving(&self) -> f64 {
        if self.baseline.load_time_s == 0.0 {
            return 0.0;
        }
        1.0 - self.emotion.load_time_s / self.baseline.load_time_s
    }
}

/// Runs the same workload under `baseline` and the emotion policy and
/// reports both.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn compare_policies(
    device: &DeviceConfig,
    subject: &SubjectProfile,
    workload: &Workload,
    baseline: PolicyKind,
    alpha: f32,
) -> Result<ComparisonReport, SimError> {
    let mut base_sim = Simulator::with_subject(device.clone(), baseline, subject, alpha)?;
    let mut emo_sim = Simulator::with_subject(device.clone(), PolicyKind::Emotion, subject, alpha)?;
    Ok(ComparisonReport {
        baseline: base_sim.run(workload)?,
        emotion: emo_sim.run(workload)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monkey::MonkeyScript;

    fn fig9_workload(device: &DeviceConfig, seed: u64) -> Workload {
        MonkeyScript::new(&SubjectProfile::subject3(), seed)
            .paper_fig9()
            .build(device)
            .unwrap()
    }

    #[test]
    fn empty_workload_rejected() {
        let device = DeviceConfig::paper_emulator();
        let mut sim = Simulator::new(device, PolicyKind::Fifo).unwrap();
        let w = Workload {
            events: vec![],
            duration_s: 0.0,
        };
        assert_eq!(sim.run(&w), Err(SimError::EmptyWorkload));
    }

    #[test]
    fn accounting_balances() {
        let device = DeviceConfig::paper_emulator();
        let w = fig9_workload(&device, 1);
        let mut sim = Simulator::new(device, PolicyKind::Fifo).unwrap();
        let m = sim.run(&w).unwrap();
        assert_eq!(m.launches, m.cold_starts + m.warm_starts);
        assert_eq!(m.launches, 100);
        assert!(m.cold_starts > 0);
        assert!(m.loaded_bytes > 0);
        assert!(m.load_time_s > 0.0);
    }

    #[test]
    fn process_pressure_triggers_kills() {
        let device = DeviceConfig::paper_emulator();
        let w = fig9_workload(&device, 2);
        let mut sim = Simulator::new(device, PolicyKind::Fifo).unwrap();
        let m = sim.run(&w).unwrap();
        assert!(m.kills > 0, "no memory pressure in the scenario");
    }

    #[test]
    fn emotion_policy_saves_reloads() {
        let device = DeviceConfig::paper_emulator();
        let subject = SubjectProfile::subject3();
        let w = fig9_workload(&device, 3);
        let report = compare_policies(&device, &subject, &w, PolicyKind::Fifo, 0.05).unwrap();
        assert!(
            report.emotion.cold_starts <= report.baseline.cold_starts,
            "{} vs {}",
            report.emotion.cold_starts,
            report.baseline.cold_starts
        );
        assert!(
            report.memory_saving() > 0.0,
            "memory saving {:.3}",
            report.memory_saving()
        );
        assert!(
            report.time_saving() > 0.0,
            "time saving {:.3}",
            report.time_saving()
        );
    }

    #[test]
    fn savings_are_in_the_paper_ballpark() {
        // Average over seeds to smooth workload noise; the paper reports
        // 17% memory / 12% time savings for its single scenario.
        let device = DeviceConfig::paper_emulator();
        let subject = SubjectProfile::subject3();
        let mut mem = 0.0;
        let mut time = 0.0;
        let seeds = [11u64, 22, 33, 44, 55];
        for &seed in &seeds {
            let w = fig9_workload(&device, seed);
            let r = compare_policies(&device, &subject, &w, PolicyKind::Fifo, 0.05).unwrap();
            mem += r.memory_saving();
            time += r.time_saving();
        }
        mem /= seeds.len() as f64;
        time /= seeds.len() as f64;
        assert!((0.05..=0.40).contains(&mem), "memory saving {mem:.3}");
        assert!((0.03..=0.35).contains(&time), "time saving {time:.3}");
    }

    #[test]
    fn loaded_bytes_split_into_flash_and_allocated() {
        // The paper: "the memory loading saving comes from roughly equal
        // saving of file loading from flash drive and app-specific
        // allocated memory space."
        let device = DeviceConfig::paper_emulator();
        let subject = SubjectProfile::subject3();
        let w = fig9_workload(&device, 6);
        let report = compare_policies(&device, &subject, &w, PolicyKind::Fifo, 0.05).unwrap();
        for m in [&report.baseline, &report.emotion] {
            assert_eq!(m.loaded_bytes, m.flash_bytes + m.allocated_bytes);
            assert!(m.flash_bytes > 0 && m.allocated_bytes > 0);
        }
        // Both components contribute savings of the same sign and a
        // comparable magnitude (within a factor of ~3 of each other).
        let f = report.flash_saving();
        let a = report.allocated_saving();
        assert!(f > 0.0 && a > 0.0, "flash {f:.3} allocated {a:.3}");
        assert!(
            f / a < 3.0 && a / f < 3.0,
            "flash {f:.3} vs allocated {a:.3}"
        );
    }

    #[test]
    fn occupancy_stats_tracked() {
        let device = DeviceConfig::paper_emulator();
        let w = fig9_workload(&device, 8);
        let mut sim = Simulator::new(device.clone(), PolicyKind::Fifo).unwrap();
        let m = sim.run(&w).unwrap();
        assert!(m.peak_resident_processes >= 1);
        assert!(m.peak_resident_processes <= device.process_limit + 1);
        assert!(m.peak_resident_bytes > 0);
        // Peak RAM cannot exceed the budget by more than one app's
        // footprint (the transient overshoot before enforcement).
        let max_app = device.apps.iter().map(|a| a.ram_bytes).max().unwrap();
        assert!(m.peak_resident_bytes <= device.app_ram_bytes() + max_app);
    }

    #[test]
    fn trace_supports_timeline() {
        let device = DeviceConfig::paper_emulator();
        let w = fig9_workload(&device, 4);
        let mut sim = Simulator::new(device.clone(), PolicyKind::Emotion).unwrap();
        let m = sim.run(&w).unwrap();
        let tl = m.timeline();
        assert!(!tl.rows.is_empty());
        let art = tl.render_ascii(&device, 80);
        assert!(art.contains('━'));
    }

    #[test]
    fn attached_metrics_mirror_sim_metrics() {
        let device = DeviceConfig::paper_emulator();
        let w = fig9_workload(&device, 7);
        let registry = MetricsRegistry::new();
        let mut sim = Simulator::new(device, PolicyKind::Emotion).unwrap();
        sim.attach_metrics(&registry);
        let m = sim.run(&w).unwrap();
        let labels = [("policy", "emotion")];
        let get = |name: &str| registry.counter(name, "", &labels).get();
        assert_eq!(get("mobile_sim_launches_total"), m.launches as u64);
        assert_eq!(get("mobile_sim_cold_starts_total"), m.cold_starts as u64);
        assert_eq!(get("mobile_sim_warm_starts_total"), m.warm_starts as u64);
        assert_eq!(get("mobile_sim_kills_total"), m.kills as u64);
        assert_eq!(get("mobile_sim_reload_bytes_total"), m.loaded_bytes);
        assert_eq!(get("mobile_sim_flash_bytes_total"), m.flash_bytes);
        let latency = registry.histogram("mobile_sim_app_start_latency_ns", "", &labels);
        assert_eq!(latency.count(), m.launches as u64);
    }

    #[test]
    fn lru_differs_from_fifo() {
        let device = DeviceConfig::paper_emulator();
        let w = fig9_workload(&device, 5);
        let mut fifo = Simulator::new(device.clone(), PolicyKind::Fifo).unwrap();
        let mut lru = Simulator::new(device, PolicyKind::Lru).unwrap();
        let mf = fifo.run(&w).unwrap();
        let ml = lru.run(&w).unwrap();
        // Policies genuinely act differently on this workload.
        assert_ne!(mf.trace, ml.trace);
    }
}
