//! Apps and the usage-study categories.

use affect_core::emotion::Emotion;
use std::fmt;

/// App categories from the personality/usage study the paper samples its
/// subjects from (Fig. 7 left lists the top-20 daily categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppCategory {
    /// SMS/IM apps — dominates daily usage.
    Messaging,
    /// Social network clients.
    SocialNetworks,
    /// Photo apps.
    Foto,
    /// Device settings.
    Settings,
    /// Music / audio / radio players.
    MusicAudioRadio,
    /// Timers and clocks.
    TimerClocks,
    /// Phone calling.
    Calling,
    /// Calculator.
    Calculator,
    /// Web browsers — the other dominant category.
    InternetBrowser,
    /// Mail clients.
    EMail,
    /// Shopping apps.
    Shopping,
    /// File sharing / cloud storage.
    SharingCloud,
    /// Camera.
    Camera,
    /// Local video players.
    Video,
    /// Live TV apps.
    Tv,
    /// Streaming video apps.
    VideoApps,
    /// Photo gallery.
    Gallery,
    /// System services (never killed).
    SystemApp,
    /// Calendars.
    CalendarApps,
    /// Ride sharing / shared transportation.
    SharedTransport,
}

impl AppCategory {
    /// All categories in canonical order.
    pub const ALL: [AppCategory; 20] = [
        AppCategory::Messaging,
        AppCategory::SocialNetworks,
        AppCategory::Foto,
        AppCategory::Settings,
        AppCategory::MusicAudioRadio,
        AppCategory::TimerClocks,
        AppCategory::Calling,
        AppCategory::Calculator,
        AppCategory::InternetBrowser,
        AppCategory::EMail,
        AppCategory::Shopping,
        AppCategory::SharingCloud,
        AppCategory::Camera,
        AppCategory::Video,
        AppCategory::Tv,
        AppCategory::VideoApps,
        AppCategory::Gallery,
        AppCategory::SystemApp,
        AppCategory::CalendarApps,
        AppCategory::SharedTransport,
    ];

    /// Canonical snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            AppCategory::Messaging => "messaging",
            AppCategory::SocialNetworks => "social_networks",
            AppCategory::Foto => "foto",
            AppCategory::Settings => "settings",
            AppCategory::MusicAudioRadio => "music_audio_radio",
            AppCategory::TimerClocks => "timer_clocks",
            AppCategory::Calling => "calling",
            AppCategory::Calculator => "calculator",
            AppCategory::InternetBrowser => "internet_browser",
            AppCategory::EMail => "e_mail",
            AppCategory::Shopping => "shopping",
            AppCategory::SharingCloud => "sharing_cloud",
            AppCategory::Camera => "camera",
            AppCategory::Video => "video",
            AppCategory::Tv => "tv",
            AppCategory::VideoApps => "video_apps",
            AppCategory::Gallery => "gallery",
            AppCategory::SystemApp => "system_app",
            AppCategory::CalendarApps => "calendar_apps",
            AppCategory::SharedTransport => "shared_transport",
        }
    }

    /// Affinity of this category with an emotional state, in `[0.25, 2.0]`:
    /// the multiplier the App Affect Table applies on top of the subject's
    /// baseline usage share. High-arousal states favour interactive/social
    /// categories; low-arousal states favour passive consumption.
    pub fn emotion_affinity(self, emotion: Emotion) -> f32 {
        // Category prototype in (valence, arousal) space: where in the
        // circumplex this category's usage concentrates.
        let (v, a) = match self {
            AppCategory::Messaging => (0.2, 0.3),
            AppCategory::SocialNetworks => (0.3, 0.6),
            AppCategory::Foto => (0.5, 0.4),
            AppCategory::Settings => (0.0, -0.2),
            AppCategory::MusicAudioRadio => (0.4, -0.5),
            AppCategory::TimerClocks => (0.0, -0.3),
            AppCategory::Calling => (0.3, 0.7),
            AppCategory::Calculator => (0.0, 0.0),
            AppCategory::InternetBrowser => (0.1, 0.1),
            AppCategory::EMail => (-0.1, -0.2),
            AppCategory::Shopping => (0.5, 0.5),
            AppCategory::SharingCloud => (0.1, -0.1),
            AppCategory::Camera => (0.6, 0.6),
            AppCategory::Video => (0.3, -0.4),
            AppCategory::Tv => (0.3, -0.5),
            AppCategory::VideoApps => (0.3, -0.4),
            AppCategory::Gallery => (0.4, -0.3),
            AppCategory::SystemApp => (0.0, 0.0),
            AppCategory::CalendarApps => (-0.1, -0.1),
            AppCategory::SharedTransport => (0.2, 0.7),
        };
        let e = emotion.to_vector();
        // Cosine-like similarity mapped to a positive multiplier.
        let dot = v * e.valence + a * e.arousal;
        (1.0 + dot).clamp(0.25, 2.0)
    }
}

impl fmt::Display for AppCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An installed app.
#[derive(Debug, Clone, PartialEq)]
pub struct App {
    /// Stable app id (index into the device's app table).
    pub id: usize,
    /// Display name.
    pub name: String,
    /// Usage-study category.
    pub category: AppCategory,
    /// Bytes loaded from flash on a cold start (code + initial data).
    pub cold_load_bytes: u64,
    /// Resident RAM footprint while alive.
    pub ram_bytes: u64,
}

impl App {
    /// Cold-start load time in seconds at the given flash bandwidth, plus a
    /// fixed process-initialization cost.
    pub fn cold_start_secs(&self, flash_bytes_per_sec: f64) -> f64 {
        const INIT_SECS: f64 = 0.15;
        INIT_SECS + self.cold_load_bytes as f64 / flash_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_categories_with_unique_names() {
        let mut names: Vec<_> = AppCategory::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn affinity_bounded() {
        for c in AppCategory::ALL {
            for e in Emotion::ALL {
                let a = c.emotion_affinity(e);
                assert!((0.25..=2.0).contains(&a), "{c}/{e}: {a}");
            }
        }
    }

    #[test]
    fn excited_boosts_calling_over_tv() {
        // Subject 3's "excited" behaviour in the paper: more calling and
        // shared transportation.
        let happy_call = AppCategory::Calling.emotion_affinity(Emotion::Happy);
        let happy_tv = AppCategory::Tv.emotion_affinity(Emotion::Happy);
        assert!(happy_call > happy_tv);
    }

    #[test]
    fn calm_boosts_passive_media() {
        let calm_tv = AppCategory::Tv.emotion_affinity(Emotion::Calm);
        let calm_call = AppCategory::Calling.emotion_affinity(Emotion::Calm);
        assert!(calm_tv > calm_call);
    }

    #[test]
    fn cold_start_time_scales_with_size() {
        let small = App {
            id: 0,
            name: "a".into(),
            category: AppCategory::Calculator,
            cold_load_bytes: 10_000_000,
            ram_bytes: 50_000_000,
        };
        let big = App {
            cold_load_bytes: 300_000_000,
            ..small.clone()
        };
        let bw = 500e6;
        assert!(big.cold_start_secs(bw) > small.cold_start_secs(bw) + 0.3);
    }

    #[test]
    fn neutral_emotion_is_near_unit_affinity() {
        for c in AppCategory::ALL {
            let a = c.emotion_affinity(Emotion::Neutral);
            assert!((a - 1.0).abs() < 1e-6, "{c}: {a}");
        }
    }
}
