//! Device configuration and the synthetic app table.

use crate::app::{App, AppCategory};
use crate::SimError;

/// Device/emulator configuration.
///
/// [`DeviceConfig::paper_emulator`] mirrors the paper's Fig. 7 (right):
/// Android Studio 2021 emulator, Android 11 (API 30), 4 CPU cores, 4096 MB
/// RAM, 32 GB ROM, 44 installed apps, 1920×1080.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Platform description (reporting only).
    pub platform: String,
    /// OS description (reporting only).
    pub os: String,
    /// CPU core count (reporting only).
    pub cpu_cores: u32,
    /// RAM size in bytes.
    pub ram_bytes: u64,
    /// Flash (ROM) size in bytes.
    pub flash_bytes: u64,
    /// Sustained flash read bandwidth in bytes/second.
    pub flash_read_bps: f64,
    /// Background process limit (Android default: 20).
    pub process_limit: usize,
    /// RAM reserved for the OS itself.
    pub os_reserved_bytes: u64,
    /// Display resolution (reporting only).
    pub resolution: String,
    /// Installed apps.
    pub apps: Vec<App>,
}

impl DeviceConfig {
    /// The paper's emulator with its 44-app install base.
    pub fn paper_emulator() -> Self {
        Self {
            platform: "Android Studio 2021 (simulated)".into(),
            os: "Android 11 API 30 (simulated)".into(),
            cpu_cores: 4,
            ram_bytes: 4096 * 1024 * 1024,
            flash_bytes: 32 * 1024 * 1024 * 1024,
            flash_read_bps: 500e6,
            process_limit: 20,
            os_reserved_bytes: 1200 * 1024 * 1024,
            resolution: "1920x1080".into(),
            apps: default_app_table(),
        }
    }

    /// Looks up an app.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownApp`] for an out-of-range id.
    pub fn app(&self, id: usize) -> Result<&App, SimError> {
        self.apps.get(id).ok_or(SimError::UnknownApp(id))
    }

    /// Installed apps of a category.
    pub fn apps_in(&self, category: AppCategory) -> Vec<&App> {
        self.apps
            .iter()
            .filter(|a| a.category == category)
            .collect()
    }

    /// RAM available to app processes.
    pub fn app_ram_bytes(&self) -> u64 {
        self.ram_bytes.saturating_sub(self.os_reserved_bytes)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for zero limits, an empty app
    /// table, or non-positive bandwidth.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.process_limit == 0 {
            return Err(SimError::InvalidParameter {
                name: "process_limit",
                reason: "must be non-zero",
            });
        }
        if self.apps.is_empty() {
            return Err(SimError::InvalidParameter {
                name: "apps",
                reason: "app table must be non-empty",
            });
        }
        if !(self.flash_read_bps > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "flash_read_bps",
                reason: "must be positive",
            });
        }
        if self.app_ram_bytes() == 0 {
            return Err(SimError::InvalidParameter {
                name: "ram_bytes",
                reason: "no ram left after the os reservation",
            });
        }
        Ok(())
    }
}

const MB: u64 = 1024 * 1024;

/// The 44-app install base: 2–3 apps per category with realistic footprint
/// spreads (messaging/social/browser apps are heavy; tools are light).
fn default_app_table() -> Vec<App> {
    // (name, category, cold_load_MB, ram_MB)
    let specs: [(&str, AppCategory, u64, u64); 44] = [
        ("Android Message", AppCategory::Messaging, 90, 180),
        ("ChatNow", AppCategory::Messaging, 140, 260),
        ("PingMe", AppCategory::Messaging, 110, 210),
        ("FriendFeed", AppCategory::SocialNetworks, 220, 380),
        ("Snapshot", AppCategory::SocialNetworks, 200, 340),
        ("MicroBlog", AppCategory::SocialNetworks, 180, 300),
        ("PhotoLab", AppCategory::Foto, 130, 240),
        ("PicTool", AppCategory::Foto, 90, 160),
        ("Settings", AppCategory::Settings, 30, 80),
        ("RadioOne", AppCategory::MusicAudioRadio, 110, 200),
        ("TuneBox", AppCategory::MusicAudioRadio, 150, 260),
        ("PodCatch", AppCategory::MusicAudioRadio, 100, 170),
        ("Clock", AppCategory::TimerClocks, 20, 60),
        ("SandTimer", AppCategory::TimerClocks, 15, 50),
        ("Dialer", AppCategory::Calling, 50, 120),
        ("VoiceLink", AppCategory::Calling, 90, 170),
        ("Calculator", AppCategory::Calculator, 12, 40),
        ("Chrome", AppCategory::InternetBrowser, 250, 450),
        ("Lighthouse", AppCategory::InternetBrowser, 190, 330),
        ("MailBird", AppCategory::EMail, 120, 210),
        ("Postbox", AppCategory::EMail, 100, 180),
        ("ShopCart", AppCategory::Shopping, 170, 290),
        ("Bazaar", AppCategory::Shopping, 150, 250),
        ("CloudDrop", AppCategory::SharingCloud, 130, 220),
        ("SyncBox", AppCategory::SharingCloud, 110, 190),
        ("Camera", AppCategory::Camera, 80, 230),
        ("ProShot", AppCategory::Camera, 120, 280),
        ("PlayerX", AppCategory::Video, 140, 260),
        ("ClipView", AppCategory::Video, 100, 190),
        ("LiveTV", AppCategory::Tv, 180, 320),
        ("AntennaGo", AppCategory::Tv, 150, 270),
        ("StreamFlix", AppCategory::VideoApps, 230, 400),
        ("TubeCast", AppCategory::VideoApps, 210, 360),
        ("Gallery", AppCategory::Gallery, 70, 200),
        ("Albums", AppCategory::Gallery, 60, 160),
        ("System UI", AppCategory::SystemApp, 40, 150),
        ("Play Services", AppCategory::SystemApp, 60, 220),
        ("Phone Services", AppCategory::SystemApp, 30, 110),
        ("Calendar", AppCategory::CalendarApps, 60, 130),
        ("Planner", AppCategory::CalendarApps, 70, 140),
        ("RideShare", AppCategory::SharedTransport, 160, 270),
        ("CityCab", AppCategory::SharedTransport, 140, 240),
        ("ScooterGo", AppCategory::SharedTransport, 110, 190),
        ("FileManager", AppCategory::Settings, 40, 100),
    ];
    specs
        .into_iter()
        .enumerate()
        .map(|(id, (name, category, load_mb, ram_mb))| App {
            id,
            name: name.into(),
            category,
            cold_load_bytes: load_mb * MB,
            ram_bytes: ram_mb * MB,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_emulator_matches_fig7_table() {
        let d = DeviceConfig::paper_emulator();
        assert_eq!(d.apps.len(), 44);
        assert_eq!(d.process_limit, 20);
        assert_eq!(d.ram_bytes, 4096 * 1024 * 1024);
        assert_eq!(d.flash_bytes, 32 * 1024 * 1024 * 1024);
        assert_eq!(d.cpu_cores, 4);
        assert_eq!(d.resolution, "1920x1080");
        d.validate().unwrap();
    }

    #[test]
    fn every_category_has_an_app() {
        let d = DeviceConfig::paper_emulator();
        for c in AppCategory::ALL {
            assert!(!d.apps_in(c).is_empty(), "no app in {c}");
        }
    }

    #[test]
    fn app_ids_are_indices() {
        let d = DeviceConfig::paper_emulator();
        for (i, a) in d.apps.iter().enumerate() {
            assert_eq!(a.id, i);
        }
        assert!(d.app(43).is_ok());
        assert_eq!(d.app(44), Err(SimError::UnknownApp(44)));
    }

    #[test]
    fn validation_catches_degenerate_configs() {
        let mut d = DeviceConfig::paper_emulator();
        d.process_limit = 0;
        assert!(d.validate().is_err());
        let mut d = DeviceConfig::paper_emulator();
        d.apps.clear();
        assert!(d.validate().is_err());
        let mut d = DeviceConfig::paper_emulator();
        d.os_reserved_bytes = d.ram_bytes;
        assert!(d.validate().is_err());
    }

    #[test]
    fn ram_budget_cannot_hold_all_apps() {
        // The experiment depends on memory pressure actually occurring.
        let d = DeviceConfig::paper_emulator();
        let total: u64 = d.apps.iter().map(|a| a.ram_bytes).sum();
        assert!(total > d.app_ram_bytes());
    }
}
