//! Perfetto-like event tracing and process-lifespan timelines (Fig. 9).

use crate::device::DeviceConfig;
use affect_core::emotion::Emotion;

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An app came to the foreground.
    Launch {
        /// Simulation time in seconds.
        time_s: f64,
        /// App id.
        app_id: usize,
        /// `true` when the process had to be cold-started from flash.
        cold: bool,
    },
    /// A background process was killed.
    Kill {
        /// Simulation time in seconds.
        time_s: f64,
        /// App id.
        app_id: usize,
    },
    /// The detected emotion changed.
    EmotionChange {
        /// Simulation time in seconds.
        time_s: f64,
        /// New emotion.
        emotion: Emotion,
    },
}

impl TraceEvent {
    /// Event timestamp.
    pub fn time_s(&self) -> f64 {
        match self {
            TraceEvent::Launch { time_s, .. }
            | TraceEvent::Kill { time_s, .. }
            | TraceEvent::EmotionChange { time_s, .. } => *time_s,
        }
    }
}

/// Per-app alive intervals recovered from a trace — the paper's Fig. 9
/// "process running diagram".
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessTimeline {
    /// `(app_id, alive intervals)` for every app that ever ran, in app-id
    /// order.
    pub rows: Vec<(usize, Vec<(f64, f64)>)>,
    /// Trace duration in seconds.
    pub duration_s: f64,
}

impl ProcessTimeline {
    /// Builds the timeline from a trace.
    pub fn from_trace(events: &[TraceEvent], duration_s: f64) -> Self {
        use std::collections::BTreeMap;
        let mut open: BTreeMap<usize, f64> = BTreeMap::new();
        let mut rows: BTreeMap<usize, Vec<(f64, f64)>> = BTreeMap::new();
        for event in events {
            match *event {
                TraceEvent::Launch { time_s, app_id, .. } => {
                    // Either way the process is alive from here; a warm
                    // launch finds the interval already open.
                    open.entry(app_id).or_insert(time_s);
                    rows.entry(app_id).or_default();
                }
                TraceEvent::Kill { time_s, app_id } => {
                    if let Some(start) = open.remove(&app_id) {
                        rows.entry(app_id).or_default().push((start, time_s));
                    }
                }
                TraceEvent::EmotionChange { .. } => {}
            }
        }
        for (app_id, start) in open {
            rows.entry(app_id).or_default().push((start, duration_s));
        }
        Self {
            rows: rows.into_iter().collect(),
            duration_s,
        }
    }

    /// Total alive seconds of one app.
    pub fn alive_secs(&self, app_id: usize) -> f64 {
        self.rows
            .iter()
            .find(|(id, _)| *id == app_id)
            .map(|(_, spans)| spans.iter().map(|(a, b)| b - a).sum())
            .unwrap_or(0.0)
    }

    /// Number of times the app's process died.
    pub fn death_count(&self, app_id: usize) -> usize {
        self.rows
            .iter()
            .find(|(id, _)| *id == app_id)
            .map(|(_, spans)| {
                spans
                    .iter()
                    .filter(|&&(_, end)| end < self.duration_s)
                    .count()
            })
            .unwrap_or(0)
    }

    /// Renders the Fig. 9-style ASCII diagram: one row per app, `━` while
    /// the process is alive, `·` while dead.
    pub fn render_ascii(&self, device: &DeviceConfig, columns: usize) -> String {
        let columns = columns.max(10);
        let mut out = String::new();
        let name_width = 16usize;
        for (app_id, spans) in &self.rows {
            let name = device
                .app(*app_id)
                .map(|a| a.name.clone())
                .unwrap_or_else(|_| format!("app{app_id}"));
            let mut row = vec!['·'; columns];
            for &(start, end) in spans {
                let a = ((start / self.duration_s) * columns as f64) as usize;
                let b = (((end / self.duration_s) * columns as f64).ceil() as usize).min(columns);
                for c in row.iter_mut().take(b).skip(a.min(columns)) {
                    *c = '━';
                }
            }
            let bar: String = row.into_iter().collect();
            out.push_str(&format!("{name:<name_width$} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Launch {
                time_s: 0.0,
                app_id: 1,
                cold: true,
            },
            TraceEvent::Launch {
                time_s: 10.0,
                app_id: 2,
                cold: true,
            },
            TraceEvent::Kill {
                time_s: 40.0,
                app_id: 1,
            },
            TraceEvent::Launch {
                time_s: 60.0,
                app_id: 1,
                cold: true,
            },
            TraceEvent::EmotionChange {
                time_s: 50.0,
                emotion: Emotion::Calm,
            },
        ]
    }

    #[test]
    fn timeline_reconstructs_intervals() {
        let tl = ProcessTimeline::from_trace(&sample_trace(), 100.0);
        assert_eq!(tl.rows.len(), 2);
        let app1 = tl.rows.iter().find(|(id, _)| *id == 1).unwrap();
        assert_eq!(app1.1, vec![(0.0, 40.0), (60.0, 100.0)]);
        assert!((tl.alive_secs(1) - 80.0).abs() < 1e-9);
        assert!((tl.alive_secs(2) - 90.0).abs() < 1e-9);
    }

    #[test]
    fn death_count_excludes_survivors() {
        let tl = ProcessTimeline::from_trace(&sample_trace(), 100.0);
        assert_eq!(tl.death_count(1), 1); // killed once, then survived
        assert_eq!(tl.death_count(2), 0);
        assert_eq!(tl.death_count(99), 0);
    }

    #[test]
    fn ascii_render_shows_alive_and_dead() {
        let device = DeviceConfig::paper_emulator();
        let tl = ProcessTimeline::from_trace(&sample_trace(), 100.0);
        let art = tl.render_ascii(&device, 50);
        assert!(art.contains('━'));
        assert!(art.contains('·'));
        assert_eq!(art.lines().count(), 2);
    }

    #[test]
    fn event_time_accessor() {
        assert_eq!(
            TraceEvent::Kill {
                time_s: 7.5,
                app_id: 0
            }
            .time_s(),
            7.5
        );
    }
}
