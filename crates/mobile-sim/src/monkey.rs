//! Monkey-script workload generation.
//!
//! The paper drives its emulator with "a monkey script ... to open certain
//! Apps with a given frequency and duration to match the probability of the
//! subjects' daily statistics" plus random touch/typing input. This module
//! generates that launch sequence: per emotion segment, app launches are
//! sampled from the subject's usage distribution modulated by the emotion's
//! category affinity — the same statistics the App Affect Table models.

use crate::app::AppCategory;
use crate::device::DeviceConfig;
use crate::subjects::SubjectProfile;
use crate::SimError;
use affect_core::emotion::Emotion;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One app launch in a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchEvent {
    /// Simulation time in seconds.
    pub time_s: f64,
    /// Launched app id.
    pub app_id: usize,
    /// The user's (ground-truth) emotion at launch time.
    pub emotion: Emotion,
    /// Foreground dwell time in seconds.
    pub dwell_s: f64,
    /// Random touch/typing inputs during the dwell.
    pub touches: u32,
}

/// A generated workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Launches in time order.
    pub events: Vec<LaunchEvent>,
    /// Total duration in seconds.
    pub duration_s: f64,
}

impl Workload {
    /// Number of launches.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the workload has no launches.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Builder for monkey workloads: a sequence of emotion segments.
#[derive(Debug, Clone)]
pub struct MonkeyScript<'a> {
    subject: &'a SubjectProfile,
    seed: u64,
    segments: Vec<(Emotion, f64, usize)>,
}

impl<'a> MonkeyScript<'a> {
    /// Starts a script for a subject with a deterministic seed.
    pub fn new(subject: &'a SubjectProfile, seed: u64) -> Self {
        Self {
            subject,
            seed,
            segments: Vec::new(),
        }
    }

    /// Appends a segment: `launches` app launches spread over
    /// `duration_s` seconds while the user is in `emotion`.
    #[must_use]
    pub fn segment(mut self, emotion: Emotion, duration_s: f64, launches: usize) -> Self {
        self.segments.push((emotion, duration_s, launches));
        self
    }

    /// The paper's Fig. 9 scenario: 12 minutes excited followed by
    /// 8 minutes calm, with a launch roughly every 12 seconds (the paper
    /// compresses idle time, so launches are dense).
    #[must_use]
    pub fn paper_fig9(self) -> Self {
        self.segment(Emotion::Happy, 12.0 * 60.0, 60)
            .segment(Emotion::Calm, 8.0 * 60.0, 40)
    }

    /// Generates the workload.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when no segment was added or
    /// a segment has a non-positive duration, and [`SimError::EmptyWorkload`]
    /// when every segment has zero launches.
    pub fn build(self, device: &DeviceConfig) -> Result<Workload, SimError> {
        if self.segments.is_empty() {
            return Err(SimError::InvalidParameter {
                name: "segments",
                reason: "script needs at least one segment",
            });
        }
        if self.segments.iter().any(|&(_, d, _)| !(d > 0.0)) {
            return Err(SimError::InvalidParameter {
                name: "duration_s",
                reason: "must be positive",
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::new();
        let mut t0 = 0.0f64;
        for (emotion, duration, launches) in &self.segments {
            let weights = category_weights(self.subject, *emotion);
            for k in 0..*launches {
                let slot = duration / *launches as f64;
                let jitter = rng.random::<f64>() * 0.5 * slot;
                let time_s = t0 + k as f64 * slot + jitter;
                let category = sample_category(&weights, &mut rng);
                let app_id = sample_app(device, category, &mut rng);
                let dwell_s = (slot * (0.3 + 0.5 * rng.random::<f64>())).max(1.0);
                let touches = rng.random_range(5u32..50);
                events.push(LaunchEvent {
                    time_s,
                    app_id,
                    emotion: *emotion,
                    dwell_s,
                    touches,
                });
            }
            t0 += duration;
        }
        if events.is_empty() {
            return Err(SimError::EmptyWorkload);
        }
        events.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
        Ok(Workload {
            events,
            duration_s: t0,
        })
    }
}

/// Emotion-modulated category distribution for a subject.
fn category_weights(subject: &SubjectProfile, emotion: Emotion) -> Vec<(AppCategory, f32)> {
    let mut weights: Vec<(AppCategory, f32)> = AppCategory::ALL
        .iter()
        .map(|&c| (c, subject.usage_share(c) * c.emotion_affinity(emotion)))
        .filter(|&(_, w)| w > 0.0)
        .collect();
    let total: f32 = weights.iter().map(|&(_, w)| w).sum();
    for (_, w) in &mut weights {
        *w /= total;
    }
    weights
}

fn sample_category(weights: &[(AppCategory, f32)], rng: &mut StdRng) -> AppCategory {
    let mut x: f32 = rng.random();
    for &(c, w) in weights {
        if x < w {
            return c;
        }
        x -= w;
    }
    weights
        .last()
        .map(|&(c, _)| c)
        .unwrap_or(AppCategory::Messaging)
}

fn sample_app(device: &DeviceConfig, category: AppCategory, rng: &mut StdRng) -> usize {
    let apps = device.apps_in(category);
    if apps.is_empty() {
        // Fall back to messaging, which the default table always has.
        let fallback = device.apps_in(AppCategory::Messaging);
        return fallback[0].id;
    }
    // Primary app of a category dominates (users have one browser they
    // actually use): 70/30-ish split.
    let idx = if apps.len() == 1 || rng.random::<f32>() < 0.7 {
        0
    } else {
        1 + (rng.random_range(0usize..apps.len() - 1))
    };
    apps[idx].id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_requires_segments_and_durations() {
        let device = DeviceConfig::paper_emulator();
        let s = SubjectProfile::subject1();
        assert!(MonkeyScript::new(&s, 1).build(&device).is_err());
        assert!(MonkeyScript::new(&s, 1)
            .segment(Emotion::Happy, 0.0, 5)
            .build(&device)
            .is_err());
        assert!(matches!(
            MonkeyScript::new(&s, 1)
                .segment(Emotion::Happy, 10.0, 0)
                .build(&device),
            Err(SimError::EmptyWorkload)
        ));
    }

    #[test]
    fn events_sorted_and_within_duration() {
        let device = DeviceConfig::paper_emulator();
        let s = SubjectProfile::subject3();
        let w = MonkeyScript::new(&s, 3)
            .paper_fig9()
            .build(&device)
            .unwrap();
        assert_eq!(w.len(), 100);
        assert!((w.duration_s - 1200.0).abs() < 1e-9);
        for pair in w.events.windows(2) {
            assert!(pair[0].time_s <= pair[1].time_s);
        }
        assert!(w.events.iter().all(|e| e.time_s < w.duration_s));
    }

    #[test]
    fn deterministic_per_seed() {
        let device = DeviceConfig::paper_emulator();
        let s = SubjectProfile::subject2();
        let a = MonkeyScript::new(&s, 9)
            .paper_fig9()
            .build(&device)
            .unwrap();
        let b = MonkeyScript::new(&s, 9)
            .paper_fig9()
            .build(&device)
            .unwrap();
        assert_eq!(a, b);
        let c = MonkeyScript::new(&s, 10)
            .paper_fig9()
            .build(&device)
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn launch_distribution_tracks_subject() {
        let device = DeviceConfig::paper_emulator();
        let s = SubjectProfile::subject1();
        let w = MonkeyScript::new(&s, 5)
            .segment(Emotion::Neutral, 10_000.0, 1000)
            .build(&device)
            .unwrap();
        let messaging = w
            .events
            .iter()
            .filter(|e| device.app(e.app_id).unwrap().category == AppCategory::Messaging)
            .count() as f32
            / 1000.0;
        // Subject 1 sends ~38% of launches to messaging.
        assert!((0.28..=0.48).contains(&messaging), "{messaging}");
    }

    #[test]
    fn emotion_shifts_the_mix() {
        let device = DeviceConfig::paper_emulator();
        let s = SubjectProfile::subject3();
        let count_calls = |emotion: Emotion| {
            let w = MonkeyScript::new(&s, 6)
                .segment(emotion, 10_000.0, 1000)
                .build(&device)
                .unwrap();
            w.events
                .iter()
                .filter(|e| device.app(e.app_id).unwrap().category == AppCategory::Calling)
                .count()
        };
        assert!(count_calls(Emotion::Happy) > count_calls(Emotion::Calm));
    }

    #[test]
    fn segments_carry_their_emotion() {
        let device = DeviceConfig::paper_emulator();
        let s = SubjectProfile::subject4();
        let w = MonkeyScript::new(&s, 7)
            .segment(Emotion::Happy, 60.0, 5)
            .segment(Emotion::Sad, 60.0, 5)
            .build(&device)
            .unwrap();
        assert!(w.events[..5].iter().all(|e| e.emotion == Emotion::Happy));
        assert!(w.events[5..].iter().all(|e| e.emotion == Emotion::Sad));
    }
}
