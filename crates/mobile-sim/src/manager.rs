//! Background app managers: the Android-default FIFO policy, an LRU
//! variant, and the paper's emotion-adaptive policy.

use crate::affect_table::AppAffectTable;
use crate::app::AppCategory;
use crate::device::DeviceConfig;
use crate::subjects::SubjectProfile;
use affect_core::emotion::Emotion;
use std::collections::BTreeMap;

/// Which background-kill policy a simulator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Android-like default: oldest background process dies first (the
    /// paper's baseline).
    Fifo,
    /// Least-recently-used background process dies first.
    Lru,
    /// The paper's proposal: the app least likely under the current
    /// emotion dies first.
    Emotion,
}

impl PolicyKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo (system default)",
            PolicyKind::Lru => "lru",
            PolicyKind::Emotion => "emotion driven",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A resident app process as the manager sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidentProcess {
    /// App id.
    pub app_id: usize,
    /// Simulation time the process was (last) started.
    pub started_at: f64,
    /// Simulation time of the last foreground use.
    pub last_used: f64,
    /// Currently in the foreground (never killed).
    pub foreground: bool,
}

/// Information available to a kill decision.
#[derive(Debug)]
pub struct PolicyContext<'a> {
    /// Smoothed current emotion.
    pub emotion: Emotion,
    /// Cumulative launches per app id (the "frequently used" signal —
    /// Android never kills apps like Messages that are used periodically).
    pub launch_counts: &'a BTreeMap<usize, u32>,
    /// The device (for app lookups).
    pub device: &'a DeviceConfig,
}

impl PolicyContext<'_> {
    /// `true` for processes the OS never kills: the foreground app, system
    /// apps, and the single most frequently launched app ("Android
    /// Message" in the paper's Fig. 9).
    pub fn is_protected(&self, process: &ResidentProcess) -> bool {
        if process.foreground {
            return true;
        }
        let Ok(app) = self.device.app(process.app_id) else {
            return true; // unknown apps are left alone
        };
        if app.category == AppCategory::SystemApp {
            return true;
        }
        let max_count = self.launch_counts.values().copied().max().unwrap_or(0);
        max_count >= 3 && self.launch_counts.get(&process.app_id) == Some(&max_count)
    }
}

/// A background-kill policy.
pub trait BackgroundPolicy: std::fmt::Debug + Send {
    /// The policy's kind tag.
    fn kind(&self) -> PolicyKind;

    /// Observes a launch (the emotion policy learns from this).
    fn observe_launch(&mut self, _emotion: Emotion, _category: AppCategory) {}

    /// Picks the background process to kill, or `None` when every resident
    /// is protected.
    fn choose_victim(
        &self,
        residents: &[ResidentProcess],
        ctx: &PolicyContext<'_>,
    ) -> Option<usize>;
}

/// The Android-like default: first in, first out.
#[derive(Debug, Default)]
pub struct FifoPolicy;

impl BackgroundPolicy for FifoPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Fifo
    }

    fn choose_victim(
        &self,
        residents: &[ResidentProcess],
        ctx: &PolicyContext<'_>,
    ) -> Option<usize> {
        residents
            .iter()
            .filter(|p| !ctx.is_protected(p))
            .min_by(|a, b| a.started_at.total_cmp(&b.started_at))
            .map(|p| p.app_id)
    }
}

/// Least recently used.
#[derive(Debug, Default)]
pub struct LruPolicy;

impl BackgroundPolicy for LruPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }

    fn choose_victim(
        &self,
        residents: &[ResidentProcess],
        ctx: &PolicyContext<'_>,
    ) -> Option<usize> {
        residents
            .iter()
            .filter(|p| !ctx.is_protected(p))
            .min_by(|a, b| a.last_used.total_cmp(&b.last_used))
            .map(|p| p.app_id)
    }
}

/// The paper's emotional app manager: rank generator over the App Affect
/// Table; the lowest-ranked (least likely under the current emotion)
/// background app dies first, ties broken FIFO.
#[derive(Debug)]
pub struct EmotionPolicy {
    table: AppAffectTable,
}

impl EmotionPolicy {
    /// Builds the policy from a subject profile with the given online
    /// learning rate.
    pub fn from_subject(subject: &SubjectProfile, alpha: f32) -> Self {
        Self {
            table: AppAffectTable::from_subject(subject, alpha),
        }
    }

    /// Read access to the affect table (for inspection/reporting).
    pub fn table(&self) -> &AppAffectTable {
        &self.table
    }
}

impl BackgroundPolicy for EmotionPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Emotion
    }

    fn observe_launch(&mut self, emotion: Emotion, category: AppCategory) {
        self.table.record_launch(emotion, category);
    }

    fn choose_victim(
        &self,
        residents: &[ResidentProcess],
        ctx: &PolicyContext<'_>,
    ) -> Option<usize> {
        residents
            .iter()
            .filter(|p| !ctx.is_protected(p))
            .min_by(|a, b| {
                let ra = ctx
                    .device
                    .app(a.app_id)
                    .map(|app| self.table.rank(ctx.emotion, app))
                    .unwrap_or(f32::MAX);
                let rb = ctx
                    .device
                    .app(b.app_id)
                    .map(|app| self.table.rank(ctx.emotion, app))
                    .unwrap_or(f32::MAX);
                ra.total_cmp(&rb)
                    .then(a.started_at.total_cmp(&b.started_at))
            })
            .map(|p| p.app_id)
    }
}

/// Instantiates a policy. The emotion policy is seeded from `subject`;
/// `alpha` is its online learning rate.
pub fn make_policy(
    kind: PolicyKind,
    subject: &SubjectProfile,
    alpha: f32,
) -> Box<dyn BackgroundPolicy> {
    match kind {
        PolicyKind::Fifo => Box::new(FifoPolicy),
        PolicyKind::Lru => Box::new(LruPolicy),
        PolicyKind::Emotion => Box::new(EmotionPolicy::from_subject(subject, alpha)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(counts: &'a BTreeMap<usize, u32>, device: &'a DeviceConfig) -> PolicyContext<'a> {
        PolicyContext {
            emotion: Emotion::Happy,
            launch_counts: counts,
            device,
        }
    }

    fn resident(app_id: usize, started_at: f64, last_used: f64) -> ResidentProcess {
        ResidentProcess {
            app_id,
            started_at,
            last_used,
            foreground: false,
        }
    }

    #[test]
    fn fifo_kills_oldest_background() {
        let device = DeviceConfig::paper_emulator();
        let counts = BTreeMap::new();
        let residents = vec![resident(17, 5.0, 50.0), resident(3, 1.0, 90.0)];
        let victim = FifoPolicy.choose_victim(&residents, &ctx(&counts, &device));
        assert_eq!(victim, Some(3));
    }

    #[test]
    fn lru_kills_least_recently_used() {
        let device = DeviceConfig::paper_emulator();
        let counts = BTreeMap::new();
        let residents = vec![resident(17, 5.0, 50.0), resident(3, 1.0, 90.0)];
        let victim = LruPolicy.choose_victim(&residents, &ctx(&counts, &device));
        assert_eq!(victim, Some(17));
    }

    #[test]
    fn foreground_never_chosen() {
        let device = DeviceConfig::paper_emulator();
        let counts = BTreeMap::new();
        let mut fg = resident(3, 1.0, 1.0);
        fg.foreground = true;
        let residents = vec![fg, resident(17, 5.0, 5.0)];
        assert_eq!(
            FifoPolicy.choose_victim(&residents, &ctx(&counts, &device)),
            Some(17)
        );
    }

    #[test]
    fn system_apps_protected() {
        let device = DeviceConfig::paper_emulator();
        let sys_id = device.apps_in(crate::app::AppCategory::SystemApp)[0].id;
        let counts = BTreeMap::new();
        let residents = vec![resident(sys_id, 0.0, 0.0)];
        assert_eq!(
            FifoPolicy.choose_victim(&residents, &ctx(&counts, &device)),
            None
        );
    }

    #[test]
    fn most_frequent_app_protected() {
        // "Android messages ... never killed due to the periodic usage."
        let device = DeviceConfig::paper_emulator();
        let mut counts = BTreeMap::new();
        counts.insert(0usize, 10u32); // Android Message
        counts.insert(17usize, 2u32);
        let residents = vec![resident(0, 0.0, 0.0), resident(17, 5.0, 5.0)];
        assert_eq!(
            FifoPolicy.choose_victim(&residents, &ctx(&counts, &device)),
            Some(17)
        );
    }

    #[test]
    fn emotion_policy_kills_least_likely() {
        let device = DeviceConfig::paper_emulator();
        let policy = EmotionPolicy::from_subject(&SubjectProfile::subject3(), 0.0);
        let counts = BTreeMap::new();
        let dialer = device.apps_in(crate::app::AppCategory::Calling)[0].id;
        let tv = device.apps_in(crate::app::AppCategory::Tv)[0].id;
        // Under Happy (excited), subject 3 is far likelier to call than to
        // watch TV, so the TV app dies even though the dialer is older.
        let residents = vec![resident(dialer, 0.0, 0.0), resident(tv, 100.0, 100.0)];
        assert_eq!(
            policy.choose_victim(&residents, &ctx(&counts, &device)),
            Some(tv)
        );
    }

    #[test]
    fn make_policy_dispatches() {
        let s = SubjectProfile::subject1();
        assert_eq!(
            make_policy(PolicyKind::Fifo, &s, 0.0).kind(),
            PolicyKind::Fifo
        );
        assert_eq!(
            make_policy(PolicyKind::Lru, &s, 0.0).kind(),
            PolicyKind::Lru
        );
        assert_eq!(
            make_policy(PolicyKind::Emotion, &s, 0.1).kind(),
            PolicyKind::Emotion
        );
    }

    #[test]
    fn all_protected_yields_none() {
        let device = DeviceConfig::paper_emulator();
        let counts = BTreeMap::new();
        let mut fg = resident(1, 0.0, 0.0);
        fg.foreground = true;
        assert_eq!(LruPolicy.choose_victim(&[fg], &ctx(&counts, &device)), None);
    }
}
