//! Proves that metric updates on the warm classify path allocate zero
//! bytes: registering instruments is the cold path (locks, strings); the
//! returned handles must be pure atomics. The measured loop is exactly
//! what an instrumented affect-rt classify worker does per window —
//! a span over `classify_with`, counter bumps, a histogram record.
//!
//! Runs without the libtest harness (`harness = false`): the allocator
//! counters are process-global, so the measurement must own the process.

use affect_core::classifier::{AffectClassifier, Decision, ModelConfig};
use affect_obs::{MetricsRegistry, Span, SystemClock};
use alloc_counter::{count_allocations, CountingAllocator};
use nn::Scratch;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn main() {
    // Cold path: registration allocates (names, label pairs, Arc handles).
    let registry = MetricsRegistry::new();
    let clock = SystemClock::new();
    let windows = registry.counter("windows_total", "windows classified", &[]);
    let dropped = registry.counter("dropped_total", "windows shed", &[("stage", "classify")]);
    let depth = registry.gauge("queue_depth", "queue depth", &[("stage", "classify")]);
    let latency = registry.histogram("classify_latency_ns", "per-window latency", &[]);
    let batch = registry.histogram("batch_size", "windows per wakeup", &[]);

    // The classify workload underneath the instrumentation.
    let cfg = ModelConfig::scaled_cnn(64, 5);
    let labels: Vec<String> = (0..5).map(|i| format!("c{i}")).collect();
    let mut clf = AffectClassifier::from_config(&cfg, labels, 11).unwrap();
    let features: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
    let mut scratch = Scratch::new();
    let mut decision = Decision::default();

    // Warm-up sizes the scratch arena; metric handles have no warm-up —
    // they are allocation-free from the first update.
    for _ in 0..2 {
        clf.classify_with(&features, &[1, 64], &mut scratch, &mut decision)
            .unwrap();
    }

    let (delta, ()) = count_allocations(|| {
        for i in 0..100u64 {
            let span = Span::enter(&latency, &clock);
            clf.classify_with(&features, &[1, 64], &mut scratch, &mut decision)
                .unwrap();
            drop(span);
            windows.inc();
            batch.record(1 + i % 4);
            depth.set((i % 8) as i64);
            if i % 10 == 0 {
                dropped.inc();
            }
        }
    });
    assert_eq!(
        delta.allocations, 0,
        "instrumented classify path allocated in steady state: {delta:?}"
    );
    assert_eq!(delta.bytes_allocated, 0);

    // The instruments saw every update the loop made.
    assert_eq!(windows.get(), 100);
    assert_eq!(dropped.get(), 10);
    assert_eq!(latency.count(), 100);
    assert_eq!(batch.count(), 100);

    // Bare metric ops without the model, for a tight upper bound.
    let (delta, ()) = count_allocations(|| {
        for i in 0..10_000u64 {
            windows.inc();
            depth.set(i as i64);
            latency.record(i);
        }
    });
    assert_eq!(
        delta.allocations, 0,
        "bare metric updates allocated: {delta:?}"
    );
    println!("obs_zero_alloc: ok");
}
