//! Proves the memory-pressure governor adds zero allocations to the warm
//! path: what a worker does per window with a budget attached — a band
//! load, a classify pass, scratch-delta charge/release — and what a chaos
//! tick does (absolute phantom write + refresh) are all pure atomics.
//! Construction and metric registration are the cold path.
//!
//! Runs without the libtest harness (`harness = false`): the allocator
//! counters are process-global, so the measurement must own the process.

use affect_core::classifier::{AffectClassifier, Decision, ModelConfig};
use affect_rt::{MemConsumer, MemoryBudget, PressureBand};
use alloc_counter::{count_allocations, CountingAllocator};
use nn::Scratch;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn main() {
    // Cold path: the accountant itself is a fistful of atomics.
    let mem = MemoryBudget::new(1 << 20);
    mem.charge(MemConsumer::RingQueues, 4096);
    mem.charge(MemConsumer::ModelTables, 64 << 10);

    // The classify workload the governor rides along with.
    let cfg = ModelConfig::scaled_cnn(64, 5);
    let labels: Vec<String> = (0..5).map(|i| format!("c{i}")).collect();
    let mut clf = AffectClassifier::from_config(&cfg, labels, 11).unwrap();
    let features: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
    let mut scratch = Scratch::new();
    let mut decision = Decision::default();
    for _ in 0..2 {
        clf.classify_with(&features, &[1, 64], &mut scratch, &mut decision)
            .unwrap();
    }

    // Warm path: exactly what an instrumented worker does per window once
    // the budget is attached — plus the band walk a chaos staircase
    // drives, so every transition-counter bump is covered too.
    let (delta, ()) = count_allocations(|| {
        for i in 0..1_000u64 {
            // The per-window governor read in the classify loop.
            let batch_limit = if mem.band() >= PressureBand::Yellow {
                1
            } else {
                4
            };
            assert!(batch_limit >= 1);
            clf.classify_with(&features, &[1, 64], &mut scratch, &mut decision)
                .unwrap();
            // Scratch growth/shrink accounting at the (de)allocation seam.
            mem.charge(MemConsumer::ScratchPools, 512);
            mem.release(MemConsumer::ScratchPools, 512);
            // A chaos tick: absolute phantom write, then a band refresh
            // that crosses thresholds (and ticks transition counters) as
            // the staircase walks up and down.
            mem.set_phantom((i % 4) * (1 << 18));
            mem.refresh();
        }
    });
    assert_eq!(
        delta.allocations, 0,
        "governed classify path allocated in steady state: {delta:?}"
    );
    assert_eq!(delta.bytes_allocated, 0);

    // The governor really did move through bands while staying silent.
    let transitions: u64 = mem.transitions().iter().sum();
    assert!(transitions > 0, "the staircase never changed band");
    mem.set_phantom(0);
    assert_eq!(mem.refresh(), PressureBand::Green);

    // Bare accountant ops without the model, for a tight upper bound.
    let (delta, ()) = count_allocations(|| {
        for i in 0..10_000u64 {
            mem.charge(MemConsumer::DecoderBuffers, i % 257);
            mem.release(MemConsumer::DecoderBuffers, i % 257);
            mem.refresh();
        }
    });
    assert_eq!(
        delta.allocations, 0,
        "bare budget updates allocated: {delta:?}"
    );
    println!("mem_governor_zero_alloc: ok");
}
