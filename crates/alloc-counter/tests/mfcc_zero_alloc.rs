//! Proves `MfccExtractor::extract_into` performs zero steady-state heap
//! allocations: after one warm-up call sizes every internal scratch
//! buffer, repeated extraction never touches the allocator again.
//!
//! Runs without the libtest harness (`harness = false`): the allocator
//! counters are process-global, so the measurement must own the process.

use alloc_counter::{count_allocations, CountingAllocator};
use dsp::MfccExtractor;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn main() {
    let mut mfcc = MfccExtractor::new(16_000.0, 512, 26, 13).unwrap();
    let frame: Vec<f32> = (0..512).map(|i| (i as f32 * 0.013).sin()).collect();
    let mut out = Vec::new();

    // Warm-up: the first call may size the internal FFT/spectrum/energy
    // buffers and the caller's output vector.
    mfcc.extract_into(&frame, &mut out).unwrap();
    let warm = out.clone();

    let (delta, ()) = count_allocations(|| {
        for _ in 0..100 {
            mfcc.extract_into(&frame, &mut out).unwrap();
        }
    });
    assert_eq!(
        delta.allocations, 0,
        "extract_into allocated in steady state: {delta:?}"
    );
    assert_eq!(delta.bytes_allocated, 0);
    assert_eq!(out, warm, "steady-state output drifted");
    println!("mfcc_zero_alloc: ok");
}
