//! Sanity check that the counting allocator actually observes heap
//! traffic — guards against the zero-alloc tests passing vacuously.

use alloc_counter::{count_allocations, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn counter_observes_vec_allocations() {
    let (delta, v) = count_allocations(|| {
        let mut v: Vec<u64> = Vec::with_capacity(64);
        v.extend(0..64);
        v
    });
    assert!(delta.allocations >= 1, "missed an allocation: {delta:?}");
    assert!(delta.bytes_allocated >= 64 * 8);
    drop(v);
    let after = alloc_counter::snapshot();
    assert!(after.deallocations >= 1);
}
