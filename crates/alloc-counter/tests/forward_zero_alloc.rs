//! Proves the scratch-buffer inference path (`Sequential::forward_with`
//! and `AffectClassifier::classify_with`) performs zero steady-state
//! heap allocations once the `Scratch` arena is warm — in f32, in int8,
//! with f32 and int8 models interleaved on one shared arena (the runtime's
//! mixed-precision worker pattern), and through the HDC classifier.
//!
//! Runs without the libtest harness (`harness = false`): the allocator
//! counters are process-global, so the measurement must own the process.

use affect_core::classifier::{AffectClassifier, Decision, ModelConfig};
use alloc_counter::{count_allocations, CountingAllocator};
use nn::hdc::HdcClassifier;
use nn::layers::{Activation, Dense};
use nn::{Precision, Scratch, Sequential, Tensor};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn main() {
    // Plain MLP through the raw nn API.
    let mut model = Sequential::new();
    model.push(Dense::new(16, 32, 7).unwrap());
    model.push(Activation::relu());
    model.push(Dense::new(32, 8, 8).unwrap());
    let input: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.1).collect();
    let mut scratch = Scratch::new();

    // Warm-up sizes the ping-pong buffers in the scratch pool. Two calls:
    // the best-fit acquire can hand buffers back in a different order than
    // the cold pass, growing one of them once more before settling.
    for _ in 0..2 {
        model.forward_with(&input, &[16], &mut scratch).unwrap();
    }

    let (delta, ()) = count_allocations(|| {
        for _ in 0..100 {
            model.forward_with(&input, &[16], &mut scratch).unwrap();
        }
    });
    assert_eq!(
        delta.allocations, 0,
        "forward_with allocated in steady state: {delta:?}"
    );
    assert_eq!(delta.bytes_allocated, 0);

    // Full classifier path: CNN forward + softmax + decision reuse, the
    // exact loop the affect-rt classify workers run per window.
    let cfg = ModelConfig::scaled_cnn(64, 5);
    let labels: Vec<String> = (0..5).map(|i| format!("c{i}")).collect();
    let mut clf = AffectClassifier::from_config(&cfg, labels, 11).unwrap();
    let features: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
    let mut clf_scratch = Scratch::new();
    let mut decision = Decision::default();

    for _ in 0..2 {
        clf.classify_with(&features, &[1, 64], &mut clf_scratch, &mut decision)
            .unwrap();
    }

    let (delta, ()) = count_allocations(|| {
        for _ in 0..100 {
            clf.classify_with(&features, &[1, 64], &mut clf_scratch, &mut decision)
                .unwrap();
        }
    });
    assert_eq!(
        delta.allocations, 0,
        "classify_with allocated in steady state: {delta:?}"
    );
    assert_eq!(delta.bytes_allocated, 0);

    // Int8 path interleaved with a f32 model on the SAME arena — the
    // mixed-precision worker pattern of affect-rt. The quantized pass pulls
    // its i8 temporaries from a pool disjoint from the f32 buffers, so
    // alternating precisions must not thrash the best-fit allocator.
    let mut q_model = Sequential::new();
    q_model.push(Dense::new(16, 32, 21).unwrap());
    q_model.push(Activation::relu());
    q_model.push(Dense::new(32, 8, 22).unwrap());
    q_model.set_precision(Precision::Int8).unwrap();
    let mut shared = Scratch::new();
    for _ in 0..2 {
        q_model.forward_with(&input, &[16], &mut shared).unwrap();
        model.forward_with(&input, &[16], &mut shared).unwrap();
    }
    let (delta, ()) = count_allocations(|| {
        for _ in 0..100 {
            q_model.forward_with(&input, &[16], &mut shared).unwrap();
            model.forward_with(&input, &[16], &mut shared).unwrap();
        }
    });
    assert_eq!(
        delta.allocations, 0,
        "mixed f32/int8 forwards allocated in steady state: {delta:?}"
    );
    assert_eq!(delta.bytes_allocated, 0);

    // HDC rung: encode + Hamming lookup reuse internal buffers, and
    // classify_into reuses the caller's probability vector.
    let xs: Vec<Tensor> = (0..8)
        .map(|i| {
            Tensor::from_vec(
                (0..16)
                    .map(|c| ((i * 16 + c) as f32 * 0.11).sin())
                    .collect(),
                &[16],
            )
            .unwrap()
        })
        .collect();
    let ys: Vec<usize> = (0..8).map(|i| i % 4).collect();
    let mut hdc = HdcClassifier::new(nn::hdc::HdcConfig::new(16, 4, 5).unwrap()).unwrap();
    hdc.fit(&xs, &ys).unwrap();
    let mut probs = Vec::with_capacity(4);
    for x in &xs {
        hdc.classify_into(x.data(), &mut probs).unwrap();
    }
    let (delta, ()) = count_allocations(|| {
        for _ in 0..100 {
            for x in &xs {
                hdc.classify_into(x.data(), &mut probs).unwrap();
            }
        }
    });
    assert_eq!(
        delta.allocations, 0,
        "HDC classify_into allocated in steady state: {delta:?}"
    );
    assert_eq!(delta.bytes_allocated, 0);
    println!("forward_zero_alloc: ok");
}
