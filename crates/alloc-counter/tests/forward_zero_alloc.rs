//! Proves the scratch-buffer inference path (`Sequential::forward_with`
//! and `AffectClassifier::classify_with`) performs zero steady-state
//! heap allocations once the `Scratch` arena is warm.
//!
//! Runs without the libtest harness (`harness = false`): the allocator
//! counters are process-global, so the measurement must own the process.

use affect_core::classifier::{AffectClassifier, Decision, ModelConfig};
use alloc_counter::{count_allocations, CountingAllocator};
use nn::layers::{Activation, Dense};
use nn::{Scratch, Sequential};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn main() {
    // Plain MLP through the raw nn API.
    let mut model = Sequential::new();
    model.push(Dense::new(16, 32, 7).unwrap());
    model.push(Activation::relu());
    model.push(Dense::new(32, 8, 8).unwrap());
    let input: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.1).collect();
    let mut scratch = Scratch::new();

    // Warm-up sizes the ping-pong buffers in the scratch pool. Two calls:
    // the best-fit acquire can hand buffers back in a different order than
    // the cold pass, growing one of them once more before settling.
    for _ in 0..2 {
        model.forward_with(&input, &[16], &mut scratch).unwrap();
    }

    let (delta, ()) = count_allocations(|| {
        for _ in 0..100 {
            model.forward_with(&input, &[16], &mut scratch).unwrap();
        }
    });
    assert_eq!(
        delta.allocations, 0,
        "forward_with allocated in steady state: {delta:?}"
    );
    assert_eq!(delta.bytes_allocated, 0);

    // Full classifier path: CNN forward + softmax + decision reuse, the
    // exact loop the affect-rt classify workers run per window.
    let cfg = ModelConfig::scaled_cnn(64, 5);
    let labels: Vec<String> = (0..5).map(|i| format!("c{i}")).collect();
    let mut clf = AffectClassifier::from_config(&cfg, labels, 11).unwrap();
    let features: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
    let mut clf_scratch = Scratch::new();
    let mut decision = Decision::default();

    for _ in 0..2 {
        clf.classify_with(&features, &[1, 64], &mut clf_scratch, &mut decision)
            .unwrap();
    }

    let (delta, ()) = count_allocations(|| {
        for _ in 0..100 {
            clf.classify_with(&features, &[1, 64], &mut clf_scratch, &mut decision)
                .unwrap();
        }
    });
    assert_eq!(
        delta.allocations, 0,
        "classify_with allocated in steady state: {delta:?}"
    );
    assert_eq!(delta.bytes_allocated, 0);
    println!("forward_zero_alloc: ok");
}
