//! A counting [`GlobalAlloc`] wrapper used by this workspace's tests and
//! benches to *prove* that the hot-path kernels are allocation-free in
//! steady state, rather than merely claiming it.
//!
//! Install it as the global allocator in a test or bench binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator::new();
//! ```
//!
//! then bracket the code under measurement with [`snapshot`] and inspect
//! the delta, or use the [`count_allocations`] convenience wrapper.
//!
//! Each measurement binary should contain a single `#[test]` (or run the
//! measured region on the only active thread) — the counters are global,
//! so concurrent tests in the same process would pollute each other.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// Forwards every request to the system allocator while counting calls
/// and bytes. `realloc` counts as one allocation of the new size (it may
/// grow in place, but it is still a heap interaction the hot path must
/// not perform).
pub struct CountingAllocator;

impl CountingAllocator {
    pub const fn new() -> Self {
        CountingAllocator
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates verbatim to `System`; the counters are side effects
// with no bearing on the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// A point-in-time reading of the global counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    pub allocations: u64,
    pub deallocations: u64,
    pub bytes_allocated: u64,
}

impl AllocSnapshot {
    /// Counter deltas since an `earlier` snapshot.
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocations: self.allocations - earlier.allocations,
            deallocations: self.deallocations - earlier.deallocations,
            bytes_allocated: self.bytes_allocated - earlier.bytes_allocated,
        }
    }
}

/// Read the global counters. Meaningful only in a binary where
/// [`CountingAllocator`] is installed as the `#[global_allocator]`;
/// otherwise every field stays zero.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        deallocations: DEALLOCATIONS.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
    }
}

/// Run `f` and return `(counter deltas, f's result)`.
pub fn count_allocations<R>(f: impl FnOnce() -> R) -> (AllocSnapshot, R) {
    let before = snapshot();
    let result = f();
    (snapshot().since(&before), result)
}
