//! Property tests for the consistent-hash router: placement uniformity
//! and deterministic rebalancing.

use affect_fleet::{HashRing, ShardId};
use proptest::prelude::*;

proptest! {
    /// Placement is uniform enough to run a fleet on: with 128 virtual
    /// nodes per shard and a key population much larger than the shard
    /// count, no shard carries more than 4x the lightest shard's load.
    /// (Perfect uniformity would be a ratio of 1; consistent hashing
    /// trades some balance for minimal disruption, and virtual nodes buy
    /// most of it back.)
    #[test]
    fn placement_is_roughly_uniform(
        shards in 2usize..12,
        key_base in 0u64..1_000_000,
    ) {
        let ring = HashRing::with_shards(shards, 128);
        let keys = (0..4_096u64).map(|k| key_base.wrapping_add(k * 7919));
        let load = ring.load_of(keys);
        let max = load.iter().map(|&(_, n)| n).max().unwrap();
        let min = load.iter().map(|&(_, n)| n).min().unwrap();
        prop_assert!(min > 0, "a shard owns nothing: {load:?}");
        prop_assert!(
            max <= min * 4,
            "load skew too high (max {max}, min {min}): {load:?}"
        );
    }

    /// Removing a shard and re-adding it restores the exact prior
    /// placement for every key: the ring is a pure function of the shard
    /// set, so rebalancing is deterministic.
    #[test]
    fn remove_then_readd_rebalances_identically(
        shards in 2usize..10,
        victim in 0usize..10,
        key_base in 0u64..1_000_000,
    ) {
        let victim = ShardId(victim % shards);
        let original = HashRing::with_shards(shards, 64);
        let mut churned = original.clone();
        churned.remove_shard(victim);
        churned.add_shard(victim);
        for k in 0..2_048u64 {
            let key = key_base.wrapping_add(k * 104_729);
            prop_assert_eq!(original.route(key), churned.route(key));
        }
    }

    /// While a shard is out, only its keys move (minimal disruption), and
    /// its displaced load spreads over the survivors rather than piling
    /// onto one neighbour.
    #[test]
    fn removal_disrupts_only_the_victims_keys(
        shards in 3usize..10,
        victim in 0usize..10,
    ) {
        let victim = ShardId(victim % shards);
        let full = HashRing::with_shards(shards, 64);
        let mut reduced = full.clone();
        reduced.remove_shard(victim);
        let mut inherited = vec![0usize; shards];
        for key in 0..4_096u64 {
            let before = full.route(key);
            let after = reduced.route(key);
            if before == victim {
                prop_assert_ne!(after, victim);
                inherited[after.index()] += 1;
            } else {
                prop_assert_eq!(before, after);
            }
        }
        let moved: usize = inherited.iter().sum();
        prop_assert!(moved > 0, "victim owned nothing");
        // Displaced keys land on more than one survivor (virtual nodes
        // interleave shards around the ring).
        let recipients = inherited.iter().filter(|&&n| n > 0).count();
        prop_assert!(
            recipients >= 2,
            "all {moved} displaced keys went to one shard: {inherited:?}"
        );
    }
}
