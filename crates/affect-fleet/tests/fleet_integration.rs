//! Fleet integration tests: end-to-end accounting across shards, QoS
//! shedding order under pressure, and chaos replay determinism from one
//! fleet seed.

use std::sync::Arc;

use affect_core::pipeline::FeatureConfig;
use affect_fault::{FaultPlan, RtFaultHook};
use affect_fleet::{
    drive_lockstep, AdmissionConfig, Fleet, FleetBuilder, FleetConfig, FleetReport, LoadPlan,
    QosTier,
};
use affect_rt::{
    silence_injected_panics, CollectActuator, FaultHook, OverflowPolicy, RuntimeConfig,
    StageConfig, VirtualClock,
};

fn small_runtime_config() -> RuntimeConfig {
    RuntimeConfig {
        window_samples: 256,
        feature: FeatureConfig {
            frame_len: 128,
            hop: 64,
            n_mfcc: 4,
            n_mels: 12,
            ..FeatureConfig::default()
        },
        workers: 1,
        ingest: StageConfig::new(64, OverflowPolicy::Block),
        classify: StageConfig::new(64, OverflowPolicy::Block),
        control: StageConfig::new(64, OverflowPolicy::Block),
        actuate_capacity: 64,
        ..RuntimeConfig::default()
    }
}

/// Builds and drives a fleet: `sessions` wearers cycled over the QoS
/// tiers, `rounds` lockstep rounds, an optional chaos seed. Returns the
/// shutdown report.
fn run_fleet(shards: usize, sessions: usize, rounds: u64, chaos_seed: Option<u64>) -> FleetReport {
    let config = FleetConfig {
        shards,
        runtime: small_runtime_config(),
        ..FleetConfig::default()
    };
    let clock = Arc::new(VirtualClock::new());
    let mut builder = FleetBuilder::new(config).unwrap();
    for key in 0..sessions as u64 {
        let tier = QosTier::ALL[key as usize % QosTier::ALL.len()];
        builder
            .add_session(key, tier, Box::new(CollectActuator::default()))
            .expect("capacity is ample");
    }
    builder = builder.clock(clock.clone());
    if let Some(seed) = chaos_seed {
        let plan = FaultPlan::chaos(seed);
        builder = builder.fault_hooks(|shard| {
            Arc::new(RtFaultHook::new(plan.for_shard(shard.index()))) as Arc<dyn FaultHook>
        });
    }
    let fleet = builder.start().unwrap();
    let plan = LoadPlan {
        rounds,
        window_samples: 256,
        drain_every: Some(1),
        ..LoadPlan::default()
    };
    drive_lockstep(&fleet, &clock, &plan);
    fleet.wait_idle();
    fleet.shutdown()
}

#[test]
fn accounting_holds_across_shards() {
    let report = run_fleet(4, 64, 8, None);
    assert!(report.accounted(), "fleet accounting broke: {report:?}");
    assert_eq!(report.sessions(), 64);
    assert_eq!(report.merged.total_produced(), 64 * 8);
    // Each shard's report individually accounts too.
    for (shard, shard_report) in &report.shards {
        assert!(
            shard_report.all_accounted(),
            "shard {shard:?} broke accounting"
        );
    }
    // Global ids partition across shards without overlap.
    let mut ids: Vec<usize> = report
        .shards
        .iter()
        .flat_map(|(_, r)| r.sessions.iter().map(|s| s.session))
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..64).collect::<Vec<_>>());
}

#[test]
fn accounting_holds_under_chaos() {
    silence_injected_panics();
    let report = run_fleet(3, 48, 10, Some(42));
    assert!(
        report.accounted(),
        "chaos must never cause silent loss: {report:?}"
    );
    assert!(
        report.merged.total_dropped() > 0,
        "the chaos preset drops ~3% at ingest; 480 windows should lose some"
    );
    assert_eq!(report.merged.total_produced(), 48 * 10);
}

#[test]
fn chaos_replays_identically_from_one_fleet_seed() {
    silence_injected_panics();
    let a = run_fleet(3, 30, 6, Some(7));
    let b = run_fleet(3, 30, 6, Some(7));
    // Window-fate accounting is deterministic: same seed, same per-session
    // produced/processed/dropped everywhere. (Latency and degradation
    // counters depend on wall-clock worker timing, so the comparison is
    // the fate ledger, not the whole report.)
    let fates = |r: &FleetReport| {
        let mut v: Vec<(usize, u64, u64, u64)> = r
            .merged
            .sessions
            .iter()
            .map(|s| (s.session, s.produced, s.processed, s.dropped))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(fates(&a), fates(&b));
    // And a different seed produces a different fate ledger.
    let c = run_fleet(3, 30, 6, Some(8));
    assert_ne!(fates(&a), fates(&c), "seed must steer the fault stream");
}

#[test]
fn best_effort_sheds_first_under_pressure() {
    // A tiny ingest queue plus free-running (no drain) load forces
    // pressure shedding. DropOldest keeps the producer from blocking, so
    // fill stays high and the QoS gate engages.
    let mut runtime = small_runtime_config();
    runtime.ingest = StageConfig::new(8, OverflowPolicy::DropOldest);
    let config = FleetConfig {
        shards: 1,
        runtime,
        admission: AdmissionConfig {
            shed_best_effort_permille: 500,
            shed_standard_permille: 900,
            ..AdmissionConfig::default()
        },
        ..FleetConfig::default()
    };
    let clock = Arc::new(VirtualClock::new());
    let mut builder = FleetBuilder::new(config).unwrap();
    for key in 0..12u64 {
        let tier = QosTier::ALL[key as usize % QosTier::ALL.len()];
        builder
            .add_session(key, tier, Box::new(CollectActuator::default()))
            .unwrap();
    }
    let fleet = builder.clock(clock.clone()).start().unwrap();
    let plan = LoadPlan {
        rounds: 64,
        window_samples: 256,
        drain_every: None, // free-running: let the backlog build
        ..LoadPlan::default()
    };
    drive_lockstep(&fleet, &clock, &plan);
    fleet.wait_idle();
    let report = fleet.shutdown();
    assert!(report.accounted());
    let shed = &report.admission.shed;
    assert_eq!(
        shed.get(QosTier::Critical),
        0,
        "critical windows are never QoS-shed"
    );
    assert!(
        shed.get(QosTier::BestEffort) >= shed.get(QosTier::Standard),
        "best effort must shed at least as much as standard: {shed:?}"
    );
}

/// Admission reserves at fleet scope: a flood of best-effort sessions
/// cannot take the slots reserved for critical wearers.
#[test]
fn reserves_survive_a_best_effort_flood() {
    let config = FleetConfig {
        shards: 2,
        runtime: small_runtime_config(),
        admission: AdmissionConfig {
            max_sessions_per_shard: 8,
            critical_reserve: 2,
            standard_reserve: 2,
            ..AdmissionConfig::default()
        },
        ..FleetConfig::default()
    };
    let mut builder = FleetBuilder::new(config).unwrap();
    // Flood: far more best-effort registrations than the fleet can hold.
    for key in 0..64u64 {
        let _ = builder.add_session(
            key,
            QosTier::BestEffort,
            Box::new(CollectActuator::default()),
        );
    }
    // Every critical wearer still gets a slot out of the reserve.
    let mut critical_admitted = 0;
    for key in 64..68u64 {
        if builder
            .add_session(key, QosTier::Critical, Box::new(CollectActuator::default()))
            .is_some()
        {
            critical_admitted += 1;
        }
    }
    assert_eq!(
        critical_admitted, 4,
        "2 reserved slots per shard x 2 shards"
    );
    let fleet = builder.start().unwrap();
    let report = fleet.shutdown();
    // 2 shards x (8 - 2 - 2) = 8 best-effort slots fleet-wide.
    assert_eq!(report.admission.admitted.get(QosTier::BestEffort), 8);
    assert_eq!(report.admission.rejected.get(QosTier::BestEffort), 56);
    assert_eq!(report.admission.admitted.get(QosTier::Critical), 4);
}

/// The merged report's totals equal the sum of the shard totals — no
/// double counting, no loss in the merge — and merging is order-
/// independent (the underlying histogram merge is commutative).
#[test]
fn merged_report_equals_sum_of_shards() {
    let report = run_fleet(4, 40, 5, None);
    let by_shards: u64 = report.shards.iter().map(|(_, r)| r.total_produced()).sum();
    assert_eq!(report.merged.total_produced(), by_shards);
    let hist = report.merged.merged_latency();
    let shard_hist_count: u64 = report
        .shards
        .iter()
        .map(|(_, r)| r.merged_latency().count)
        .sum();
    assert_eq!(hist.count, shard_hist_count);
}

/// Sanity for the shared driver: a fleet of one shard behaves like a
/// plain runtime (same totals, same invariant).
#[test]
fn single_shard_fleet_degenerates_to_one_runtime() {
    let report = run_fleet(1, 10, 4, None);
    assert!(report.accounted());
    assert_eq!(report.shards.len(), 1);
    assert_eq!(report.merged.total_produced(), 40);
}

/// Type-level sanity that `Fleet` is `Send + Sync` (producers submit from
/// many threads).
#[test]
fn fleet_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Fleet>();
}
