//! QoS tiers and admission control.
//!
//! The degradation ladder (LSTM → CNN → MLP → HDC) trades accuracy for
//! compute per wearer. At fleet scale the same ladder becomes a *policy
//! axis*: a tier is a promise about which rung a session starts on, how
//! far it may climb back after degradation, and who gets shed first when
//! the fleet saturates. Every tier may degrade all the way down to the
//! runtime's floor family (the integer-only HDC rung by default — see
//! `docs/DEGRADATION.md`); the tier only caps the *ceiling*.
//!
//! | tier         | initial family (= ceiling) | shed order            |
//! |--------------|----------------------------|-----------------------|
//! | `Critical`   | LSTM                       | never shed            |
//! | `Standard`   | CNN                        | shed under heavy load |
//! | `BestEffort` | MLP                        | shed first            |
//!
//! Admission happens at registration time: `affect-rt` fixes its session
//! set at `start()`, so the fleet's capacity promise has to be made
//! up-front. The controller keeps *reserves* — headroom that only the
//! higher tiers may consume — so a burst of best-effort registrations can
//! never crowd a critical wearer out of a shard.
//!
//! Runtime-phase QoS is window shedding: each submit consults the owning
//! shard's ingest fill and sheds low tiers before the queue's own
//! overflow policy would start evicting indiscriminately.

use affect_core::classifier::ClassifierKind;

/// Service tier of one fleet session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosTier {
    /// Shed before anything else; starts on (and is capped at) the MLP
    /// rung, one above the HDC floor.
    BestEffort,
    /// Shed only under heavy load; runs the mid-ladder CNN.
    Standard,
    /// Never shed; runs the full LSTM and may always recover to it.
    Critical,
}

impl QosTier {
    /// All tiers, lowest priority first.
    pub const ALL: [QosTier; 3] = [QosTier::BestEffort, QosTier::Standard, QosTier::Critical];

    /// The classifier family a session of this tier starts in — also its
    /// recovery ceiling (`affect-rt` never climbs a session past the
    /// family it was registered with).
    pub fn initial_family(self) -> ClassifierKind {
        match self {
            QosTier::Critical => ClassifierKind::Lstm,
            QosTier::Standard => ClassifierKind::Cnn,
            QosTier::BestEffort => ClassifierKind::Mlp,
        }
    }

    /// Stable label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            QosTier::Critical => "critical",
            QosTier::Standard => "standard",
            QosTier::BestEffort => "best_effort",
        }
    }

    /// Index into per-tier arrays (shed order: 0 sheds first).
    pub fn index(self) -> usize {
        match self {
            QosTier::BestEffort => 0,
            QosTier::Standard => 1,
            QosTier::Critical => 2,
        }
    }
}

/// Per-tier values, indexed by [`QosTier::index`]. The fleet report and
/// the admission controller both count in these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerTier {
    /// `[best_effort, standard, critical]`.
    pub by_tier: [u64; 3],
}

impl PerTier {
    /// The count for one tier.
    pub fn get(&self, tier: QosTier) -> u64 {
        self.by_tier[tier.index()]
    }

    /// Mutable count for one tier.
    pub fn get_mut(&mut self, tier: QosTier) -> &mut u64 {
        &mut self.by_tier[tier.index()]
    }

    /// Sum over all tiers.
    pub fn total(&self) -> u64 {
        self.by_tier.iter().sum()
    }

    /// Element-wise addition (for merging shard-local tallies).
    pub fn add(&mut self, other: &PerTier) {
        for (a, b) in self.by_tier.iter_mut().zip(other.by_tier.iter()) {
            *a += b;
        }
    }
}

/// Capacity promises the admission controller enforces per shard.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Hard session cap per shard (the runtime's working-set budget).
    pub max_sessions_per_shard: usize,
    /// Slots only `Critical` registrations may consume.
    pub critical_reserve: usize,
    /// Slots only `Standard`-or-better registrations may consume.
    pub standard_reserve: usize,
    /// Ingest fill ratio (×1000) past which `BestEffort` windows are shed
    /// pre-submit. 750 = shed when the queue is ≥ 75% full.
    pub shed_best_effort_permille: u32,
    /// Ingest fill ratio (×1000) past which `Standard` windows are shed.
    pub shed_standard_permille: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_sessions_per_shard: 1024,
            critical_reserve: 64,
            standard_reserve: 128,
            shed_best_effort_permille: 750,
            shed_standard_permille: 950,
        }
    }
}

impl AdmissionConfig {
    /// Highest occupancy at which a registration of `tier` is still
    /// admitted. Lower tiers see a smaller effective cap because the
    /// reserves above them are off limits.
    pub fn cap_for(&self, tier: QosTier) -> usize {
        match tier {
            QosTier::Critical => self.max_sessions_per_shard,
            QosTier::Standard => self
                .max_sessions_per_shard
                .saturating_sub(self.critical_reserve),
            QosTier::BestEffort => self
                .max_sessions_per_shard
                .saturating_sub(self.critical_reserve)
                .saturating_sub(self.standard_reserve),
        }
    }

    /// Whether a window of `tier` should be shed given the owning shard's
    /// ingest queue state. Critical traffic is never shed here — it rides
    /// the queue's own overflow policy like any single-runtime deployment.
    pub fn should_shed(&self, tier: QosTier, depth: usize, capacity: usize) -> bool {
        if capacity == 0 {
            return false;
        }
        let fill_permille = (depth * 1000 / capacity) as u32;
        match tier {
            QosTier::Critical => false,
            QosTier::Standard => fill_permille >= self.shed_standard_permille,
            QosTier::BestEffort => fill_permille >= self.shed_best_effort_permille,
        }
    }
}

/// Registration-time admission state for one shard.
#[derive(Debug, Clone, Default)]
pub struct ShardOccupancy {
    /// Admitted sessions per tier.
    pub admitted: PerTier,
}

impl ShardOccupancy {
    /// Total sessions admitted to this shard.
    pub fn total(&self) -> usize {
        self.admitted.total() as usize
    }

    /// Tries to admit one session of `tier` under `config`; returns
    /// whether the slot was granted.
    pub fn try_admit(&mut self, tier: QosTier, config: &AdmissionConfig) -> bool {
        if self.total() < config.cap_for(tier) {
            *self.admitted.get_mut(tier) += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_maps_onto_the_degradation_ladder() {
        assert_eq!(QosTier::Critical.initial_family(), ClassifierKind::Lstm);
        assert_eq!(QosTier::Standard.initial_family(), ClassifierKind::Cnn);
        assert_eq!(QosTier::BestEffort.initial_family(), ClassifierKind::Mlp);
    }

    #[test]
    fn reserves_protect_high_tiers() {
        let config = AdmissionConfig {
            max_sessions_per_shard: 10,
            critical_reserve: 2,
            standard_reserve: 3,
            ..AdmissionConfig::default()
        };
        let mut occ = ShardOccupancy::default();
        // Best effort can only take 10 - 2 - 3 = 5 slots.
        let admitted = (0..10)
            .filter(|_| occ.try_admit(QosTier::BestEffort, &config))
            .count();
        assert_eq!(admitted, 5);
        // Standard reaches up to 10 - 2 = 8 total.
        let admitted = (0..10)
            .filter(|_| occ.try_admit(QosTier::Standard, &config))
            .count();
        assert_eq!(admitted, 3);
        // Critical fills the shard to its hard cap.
        let admitted = (0..10)
            .filter(|_| occ.try_admit(QosTier::Critical, &config))
            .count();
        assert_eq!(admitted, 2);
        assert_eq!(occ.total(), 10);
        assert!(!occ.try_admit(QosTier::Critical, &config));
    }

    #[test]
    fn shedding_orders_tiers() {
        let config = AdmissionConfig::default();
        // 75% full: best effort sheds, standard and critical ride on.
        assert!(config.should_shed(QosTier::BestEffort, 6, 8));
        assert!(!config.should_shed(QosTier::Standard, 6, 8));
        assert!(!config.should_shed(QosTier::Critical, 6, 8));
        // Full queue: standard sheds too; critical never does.
        assert!(config.should_shed(QosTier::Standard, 8, 8));
        assert!(!config.should_shed(QosTier::Critical, 8, 8));
        // Empty or zero-capacity queues never shed.
        assert!(!config.should_shed(QosTier::BestEffort, 0, 8));
        assert!(!config.should_shed(QosTier::BestEffort, 1, 0));
    }

    #[test]
    fn per_tier_merges_element_wise() {
        let mut a = PerTier { by_tier: [1, 2, 3] };
        let b = PerTier {
            by_tier: [10, 20, 30],
        };
        a.add(&b);
        assert_eq!(a.by_tier, [11, 22, 33]);
        assert_eq!(a.total(), 66);
        assert_eq!(a.get(QosTier::Critical), 33);
    }
}
