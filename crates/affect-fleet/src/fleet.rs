//! The fleet: N runtime shards behind one router and one admission
//! controller.
//!
//! Each shard is a complete [`affect_rt::Runtime`] — its own worker
//! threads, queues, supervision, and statistics — owning its sessions
//! end-to-end. The fleet layer never touches a window after routing it:
//! there are no cross-shard locks on the hot path, so shards scale the
//! way independent runtimes do (one per core is the intended shape).
//!
//! What the fleet adds on top:
//!
//! - **Routing** — a session key is consistently hashed to its owning
//!   shard at registration; every later submit for that session goes
//!   straight to the same runtime.
//! - **Admission** — per-shard capacity with reserves for the higher QoS
//!   tiers ([`AdmissionConfig`]); a refused registration is counted, not
//!   silently dropped.
//! - **Pressure shedding** — each submit consults the owning shard's
//!   ingest fill and sheds `BestEffort` (then `Standard`) windows before
//!   the queue's overflow policy would evict blindly. Shed windows are
//!   tallied per tier so `offered == submitted + shed + evicted` always
//!   holds.
//! - **Memory-pressure eviction** — [`Fleet::enforce_pressure`] reads each
//!   shard's [`affect_rt::MemoryBudget`] band: at `Red` it evicts
//!   `BestEffort` sessions (ascending global id), at `Critical` it evicts
//!   `Standard` sessions too; `Critical`-tier sessions are never evicted.
//!   When a shard returns to `Green` its evicted sessions are readmitted
//!   in the same deterministic order. A submit against an evicted session
//!   bounces cleanly (tallied per tier as `evicted`) without ever being
//!   produced, so both accounting invariants hold mid-eviction.
//! - **Aggregation** — shutdown merges every shard's [`RuntimeReport`]
//!   (histograms bucket-wise, counters summed) after remapping
//!   shard-local session ids onto the fleet's global id space.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use affect_core::AffectError;
use affect_obs::MetricsRegistry;
use affect_rt::{
    Actuator, Clock, FaultHook, MemoryBudget, PressureBand, Runtime, RuntimeBuilder, RuntimeConfig,
    RuntimeReport, SessionId,
};

use crate::metrics::FleetMetrics;
use crate::qos::{AdmissionConfig, PerTier, QosTier, ShardOccupancy};
use crate::report::{AdmissionReport, FleetReport};
use crate::router::{HashRing, ShardId};

/// Configuration of a fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of runtime shards (one per core is the intended shape).
    pub shards: usize,
    /// Virtual nodes per shard on the router's hash ring.
    pub replicas: usize,
    /// Per-shard runtime configuration template. `initial_family` is
    /// overridden per session by its QoS tier.
    pub runtime: RuntimeConfig,
    /// Admission capacity and shedding thresholds.
    pub admission: AdmissionConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            replicas: 64,
            runtime: RuntimeConfig::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// Handle to one admitted fleet session: where it lives and what was
/// promised to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSessionId {
    /// Globally unique id (dense, in admission order) — the id the merged
    /// fleet report uses.
    pub global: usize,
    /// The shard that owns the session.
    pub shard: ShardId,
    /// The session's id inside its shard's runtime.
    pub local: SessionId,
    /// The session's QoS tier.
    pub tier: QosTier,
}

/// Per-tier atomic window tallies (submit is called from many producer
/// threads; the ledger must not serialize them).
#[derive(Debug, Default)]
struct AtomicPerTier {
    by_tier: [AtomicU64; 3],
}

impl AtomicPerTier {
    fn inc(&self, tier: QosTier) {
        self.by_tier[tier.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> PerTier {
        PerTier {
            by_tier: std::array::from_fn(|i| self.by_tier[i].load(Ordering::Relaxed)),
        }
    }
}

/// Builds a [`Fleet`]: registers sessions through admission control, then
/// starts every non-empty shard.
pub struct FleetBuilder {
    config: FleetConfig,
    ring: HashRing,
    builders: Vec<RuntimeBuilder>,
    occupancy: Vec<ShardOccupancy>,
    /// Per shard: local session index → global id.
    local_to_global: Vec<Vec<usize>>,
    sessions: Vec<FleetSessionId>,
    rejected: PerTier,
    clock: Option<Arc<dyn Clock>>,
    registry: Option<Arc<MetricsRegistry>>,
    fault_hooks: Vec<Option<Arc<dyn FaultHook>>>,
}

impl FleetBuilder {
    /// Creates a builder with `config.shards` empty shards.
    pub fn new(config: FleetConfig) -> Result<Self, AffectError> {
        if config.shards == 0 {
            return Err(AffectError::InvalidParameter {
                name: "shards",
                reason: "a fleet needs at least one shard",
            });
        }
        if config.admission.max_sessions_per_shard == 0 {
            return Err(AffectError::InvalidParameter {
                name: "max_sessions_per_shard",
                reason: "must be at least 1",
            });
        }
        let builders = (0..config.shards)
            .map(|_| RuntimeBuilder::new(config.runtime.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            ring: HashRing::with_shards(config.shards, config.replicas),
            occupancy: vec![ShardOccupancy::default(); config.shards],
            local_to_global: vec![Vec::new(); config.shards],
            fault_hooks: vec![None; config.shards],
            sessions: Vec::new(),
            rejected: PerTier::default(),
            clock: None,
            registry: None,
            builders,
            config,
        })
    }

    /// Shares one clock across every shard (lockstep virtual-time runs).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Shares one metrics registry across every shard. The registry is
    /// idempotent per `(name, labels)`, so the per-runtime `affect_rt_*`
    /// series aggregate fleet-wide automatically, and the fleet's own
    /// `affect_fleet_*` series are registered alongside them.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Installs a fault hook per shard via `factory`. For replayable
    /// chaos, derive each shard's hook from one fleet seed (e.g.
    /// `FaultPlan::chaos(seed).for_shard(shard.index())`) so the whole
    /// fleet replays from a single seed with decorrelated per-shard
    /// streams.
    pub fn fault_hooks(mut self, factory: impl Fn(ShardId) -> Arc<dyn FaultHook>) -> Self {
        for (i, slot) in self.fault_hooks.iter_mut().enumerate() {
            *slot = Some(factory(ShardId(i)));
        }
        self
    }

    /// The shard a session key routes to (diagnostics; `add_session` does
    /// this internally).
    pub fn shard_of(&self, key: u64) -> ShardId {
        self.ring.route(key)
    }

    /// Routes `key` to its shard and asks admission control for a slot.
    /// On admission the session starts in (and is ceilinged at) its
    /// tier's classifier family. Returns `None` when the owning shard is
    /// at capacity for that tier — the refusal is tallied in the fleet
    /// report.
    pub fn add_session(
        &mut self,
        key: u64,
        tier: QosTier,
        actuator: Box<dyn Actuator>,
    ) -> Option<FleetSessionId> {
        let shard = self.ring.route(key);
        if !self.occupancy[shard.index()].try_admit(tier, &self.config.admission) {
            *self.rejected.get_mut(tier) += 1;
            return None;
        }
        let local =
            self.builders[shard.index()].add_session_with_family(actuator, tier.initial_family());
        let id = FleetSessionId {
            global: self.sessions.len(),
            shard,
            local,
            tier,
        };
        self.local_to_global[shard.index()].push(id.global);
        self.sessions.push(id);
        Some(id)
    }

    /// Sessions admitted so far, per tier.
    pub fn admitted(&self) -> PerTier {
        let mut total = PerTier::default();
        for occ in &self.occupancy {
            total.add(&occ.admitted);
        }
        total
    }

    /// Starts every shard that owns at least one session. Shards the
    /// router left empty (possible with few sessions and many shards) are
    /// skipped — they own nothing, so no submit can ever target them.
    pub fn start(self) -> Result<Fleet, AffectError> {
        let admitted = self.admitted();
        let metrics = self.registry.as_deref().map(FleetMetrics::register);
        if let (Some(m), Some(registry)) = (&metrics, self.registry.as_deref()) {
            m.shards.set(self.config.shards as i64);
            for tier in QosTier::ALL {
                m.tier(tier).sessions.set(admitted.get(tier) as i64);
                m.tier(tier).rejected.add(self.rejected.get(tier));
            }
            for (i, occ) in self.occupancy.iter().enumerate() {
                FleetMetrics::set_shard_sessions(registry, ShardId(i), occ.total());
            }
        }
        let mut shards = Vec::with_capacity(self.config.shards);
        for (i, mut builder) in self.builders.into_iter().enumerate() {
            if self.local_to_global[i].is_empty() {
                shards.push(None);
                continue;
            }
            if let Some(clock) = &self.clock {
                builder = builder.clock(Arc::clone(clock));
            }
            if let Some(registry) = &self.registry {
                builder = builder.metrics(Arc::clone(registry));
            }
            if let Some(hook) = &self.fault_hooks[i] {
                builder = builder.fault_hook(Arc::clone(hook));
            }
            shards.push(Some(builder.start()?));
        }
        Ok(Fleet {
            admission: self.config.admission,
            shards,
            sessions: self.sessions,
            local_to_global: self.local_to_global,
            admitted,
            rejected: self.rejected,
            offered: AtomicPerTier::default(),
            submitted: AtomicPerTier::default(),
            shed: AtomicPerTier::default(),
            evicted: AtomicPerTier::default(),
            sessions_evicted: AtomicPerTier::default(),
            sessions_readmitted: AtomicPerTier::default(),
            metrics,
        })
    }
}

/// A running fleet of runtime shards. See the module docs for the
/// architecture.
pub struct Fleet {
    admission: AdmissionConfig,
    /// One runtime per shard; `None` for shards the router left empty.
    shards: Vec<Option<Runtime>>,
    sessions: Vec<FleetSessionId>,
    local_to_global: Vec<Vec<usize>>,
    admitted: PerTier,
    rejected: PerTier,
    offered: AtomicPerTier,
    submitted: AtomicPerTier,
    shed: AtomicPerTier,
    evicted: AtomicPerTier,
    sessions_evicted: AtomicPerTier,
    sessions_readmitted: AtomicPerTier,
    metrics: Option<FleetMetrics>,
}

/// What happened to one offered window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The window entered its shard's ingest queue (it may still be
    /// decimated or shed *inside* the runtime — that shows up in the
    /// shard's own accounting, never as silent loss).
    Submitted,
    /// QoS pressure control shed the window before it reached the shard.
    Shed,
    /// The session is currently evicted by the memory-pressure governor;
    /// the window bounced before it was produced, so the session's
    /// accounting stayed frozen exactly where eviction left it.
    Evicted,
}

impl Fleet {
    /// Number of shards (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of admitted sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The handle of an admitted session by global id.
    pub fn session(&self, global: usize) -> FleetSessionId {
        self.sessions[global]
    }

    /// Offers one window for `session`. Under ingest pressure on the
    /// owning shard, `BestEffort` windows are shed first and `Standard`
    /// next; `Critical` windows always go through to the runtime. Windows
    /// for a session the memory-pressure governor has evicted bounce
    /// before they are produced. Either way the window is tallied:
    /// `offered == submitted + shed + evicted` per tier, always.
    pub fn submit(&self, session: FleetSessionId, samples: Vec<f32>) -> SubmitOutcome {
        let tier = session.tier;
        self.offered.inc(tier);
        let runtime = self.shards[session.shard.index()]
            .as_ref()
            .expect("session routed to an empty shard");
        if runtime.session_evicted(session.local) {
            self.evicted.inc(tier);
            if let Some(m) = &self.metrics {
                m.tier(tier).offered.inc();
                m.tier(tier).windows_evicted.inc();
            }
            return SubmitOutcome::Evicted;
        }
        if self
            .admission
            .should_shed(tier, runtime.ingest_depth(), runtime.ingest_capacity())
        {
            self.shed.inc(tier);
            if let Some(m) = &self.metrics {
                m.tier(tier).offered.inc();
                m.tier(tier).shed.inc();
            }
            return SubmitOutcome::Shed;
        }
        if !runtime.submit(session.local, samples) && runtime.session_evicted(session.local) {
            // The governor evicted the session between the pre-check and
            // the submit: the runtime refused the window before producing
            // it, so it belongs in the evicted ledger, not submitted.
            self.evicted.inc(tier);
            if let Some(m) = &self.metrics {
                m.tier(tier).offered.inc();
                m.tier(tier).windows_evicted.inc();
            }
            return SubmitOutcome::Evicted;
        }
        self.submitted.inc(tier);
        if let Some(m) = &self.metrics {
            m.tier(tier).offered.inc();
            m.tier(tier).submitted.inc();
        }
        SubmitOutcome::Submitted
    }

    /// Runs one pass of the memory-pressure eviction governor and returns
    /// the worst pressure band seen across shards.
    ///
    /// Per shard, the shard's [`affect_rt::MemoryBudget`] band (recomputed
    /// from live usage) dictates the response:
    ///
    /// - `Red` — every `BestEffort` session on the shard is evicted, in
    ///   ascending global-id order.
    /// - `Critical` — `Standard` sessions are evicted too (`BestEffort`
    ///   first, then `Standard`, each in ascending global-id order).
    ///   `Critical`-tier sessions are *never* evicted.
    /// - `Green` — previously evicted sessions are readmitted in ascending
    ///   global-id order.
    ///
    /// Each eviction blocks until the session's in-flight windows drain
    /// ([`affect_rt::Runtime::remove_session`]), so the session's
    /// accounting is frozen exactly (`produced == processed + dropped`)
    /// the moment this returns. The pass is deterministic: the same band
    /// sequence against the same session set always evicts and readmits
    /// in the same order. Call it from the fleet's control plane at
    /// whatever cadence suits the deployment (the chaos driver ticks it
    /// once per submitted window).
    pub fn enforce_pressure(&self) -> PressureBand {
        let mut worst = PressureBand::Green;
        for (i, runtime) in self.shards.iter().enumerate() {
            let Some(runtime) = runtime else { continue };
            let band = runtime.memory_budget().refresh();
            worst = worst.max(band);
            if band >= PressureBand::Red {
                // BestEffort goes first; Standard only at Critical. The
                // outer tier loop keeps the order deterministic even when
                // both tiers go in one pass.
                for tier in [QosTier::BestEffort, QosTier::Standard] {
                    if tier == QosTier::Standard && band < PressureBand::Critical {
                        continue;
                    }
                    for session in self.sessions.iter() {
                        if session.shard.index() != i || session.tier != tier {
                            continue;
                        }
                        if runtime.remove_session(session.local) {
                            self.sessions_evicted.inc(tier);
                            if let Some(m) = &self.metrics {
                                m.tier(tier).sessions_evicted.inc();
                                m.tier(tier).sessions.add(-1);
                            }
                        }
                    }
                }
            } else if band == PressureBand::Green {
                for session in self.sessions.iter() {
                    if session.shard.index() != i {
                        continue;
                    }
                    if runtime.readmit_session(session.local) {
                        self.sessions_readmitted.inc(session.tier);
                        if let Some(m) = &self.metrics {
                            m.tier(session.tier).sessions_readmitted.inc();
                            m.tier(session.tier).sessions.add(1);
                        }
                    }
                }
            }
        }
        worst
    }

    /// The memory budget of one shard's runtime, or `None` for a shard
    /// the router left empty. A control plane uses this to re-target
    /// budgets at runtime ([`MemoryBudget::set_budget_bytes`]) or to read
    /// usage before calling [`Fleet::enforce_pressure`]; a chaos harness
    /// injects phantom charges through the same handle.
    pub fn shard_budget(&self, shard: usize) -> Option<&Arc<MemoryBudget>> {
        self.shards.get(shard)?.as_ref().map(Runtime::memory_budget)
    }

    /// Deepest ingest backlog across shards (pressure diagnostics).
    pub fn max_ingest_depth(&self) -> usize {
        self.shards
            .iter()
            .flatten()
            .map(Runtime::ingest_depth)
            .max()
            .unwrap_or(0)
    }

    /// Blocks until every shard has drained its pipeline.
    pub fn wait_idle(&self) {
        for runtime in self.shards.iter().flatten() {
            runtime.wait_idle();
        }
    }

    /// Shuts every shard down and assembles the fleet report: per-shard
    /// runtime reports with session ids remapped onto the global id
    /// space, their merge, and the admission ledger.
    pub fn shutdown(self) -> FleetReport {
        let mut shard_reports: Vec<(ShardId, RuntimeReport)> = Vec::new();
        for (i, runtime) in self.shards.into_iter().enumerate() {
            let Some(runtime) = runtime else { continue };
            let mut report = runtime.shutdown().report;
            for session in &mut report.sessions {
                session.session = self.local_to_global[i][session.session];
            }
            shard_reports.push((ShardId(i), report));
        }
        let admission = AdmissionReport {
            admitted: self.admitted,
            rejected: self.rejected,
            offered: self.offered.snapshot(),
            submitted: self.submitted.snapshot(),
            shed: self.shed.snapshot(),
            evicted: self.evicted.snapshot(),
            sessions_evicted: self.sessions_evicted.snapshot(),
            sessions_readmitted: self.sessions_readmitted.snapshot(),
        };
        FleetReport::new(shard_reports, admission)
    }
}

#[cfg(test)]
mod tests {
    use affect_rt::{CollectActuator, OverflowPolicy, StageConfig, VirtualClock};

    use super::*;

    fn small_runtime_config() -> RuntimeConfig {
        RuntimeConfig {
            window_samples: 256,
            feature: affect_core::pipeline::FeatureConfig {
                frame_len: 128,
                hop: 64,
                n_mfcc: 4,
                n_mels: 12,
                ..Default::default()
            },
            workers: 1,
            ingest: StageConfig::new(64, OverflowPolicy::Block),
            classify: StageConfig::new(64, OverflowPolicy::Block),
            control: StageConfig::new(64, OverflowPolicy::Block),
            actuate_capacity: 64,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn sessions_land_on_their_routed_shard_and_reports_remap() {
        let config = FleetConfig {
            shards: 3,
            runtime: small_runtime_config(),
            ..FleetConfig::default()
        };
        let mut builder = FleetBuilder::new(config).unwrap();
        let clock = Arc::new(VirtualClock::new());
        let mut ids = Vec::new();
        for key in 0..12u64 {
            let id = builder
                .add_session(key, QosTier::Standard, Box::new(CollectActuator::default()))
                .expect("capacity is ample");
            assert_eq!(id.shard, builder.shard_of(key));
            ids.push(id);
        }
        let fleet = builder.clock(clock).start().unwrap();
        assert_eq!(fleet.session_count(), 12);
        for id in &ids {
            fleet.submit(*id, vec![0.2; 256]);
        }
        fleet.wait_idle();
        let report = fleet.shutdown();
        assert!(report.accounted());
        // Every global id appears exactly once in the merged report.
        let mut seen: Vec<usize> = report.merged.sessions.iter().map(|s| s.session).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
        assert_eq!(report.merged.total_produced(), 12);
        assert_eq!(report.admission.submitted.total(), 12);
        assert_eq!(report.admission.shed.total(), 0);
    }

    #[test]
    fn rejected_sessions_are_tallied_not_lost() {
        let config = FleetConfig {
            shards: 1,
            runtime: small_runtime_config(),
            admission: AdmissionConfig {
                max_sessions_per_shard: 3,
                critical_reserve: 1,
                standard_reserve: 0,
                ..AdmissionConfig::default()
            },
            ..FleetConfig::default()
        };
        let mut builder = FleetBuilder::new(config).unwrap();
        let mut admitted = 0;
        for key in 0..5u64 {
            if builder
                .add_session(
                    key,
                    QosTier::BestEffort,
                    Box::new(CollectActuator::default()),
                )
                .is_some()
            {
                admitted += 1;
            }
        }
        // Cap 3 minus the critical reserve of 1 leaves 2 best-effort slots.
        assert_eq!(admitted, 2);
        let fleet = builder.start().unwrap();
        let report = fleet.shutdown();
        assert_eq!(report.admission.admitted.get(QosTier::BestEffort), 2);
        assert_eq!(report.admission.rejected.get(QosTier::BestEffort), 3);
        assert!(report.accounted());
    }

    #[test]
    fn tier_sets_the_initial_family() {
        let config = FleetConfig {
            shards: 1,
            runtime: small_runtime_config(),
            ..FleetConfig::default()
        };
        let mut builder = FleetBuilder::new(config).unwrap();
        let best = builder
            .add_session(0, QosTier::BestEffort, Box::new(CollectActuator::default()))
            .unwrap();
        let crit = builder
            .add_session(1, QosTier::Critical, Box::new(CollectActuator::default()))
            .unwrap();
        let fleet = builder.start().unwrap();
        let report = fleet.shutdown();
        use affect_core::classifier::ClassifierKind;
        let family_of = |global: usize| {
            report
                .merged
                .sessions
                .iter()
                .find(|s| s.session == global)
                .unwrap()
                .family
        };
        assert_eq!(family_of(best.global), ClassifierKind::Mlp);
        assert_eq!(family_of(crit.global), ClassifierKind::Lstm);
    }

    #[test]
    fn pressure_evicts_low_tiers_first_and_readmits_on_green() {
        let config = FleetConfig {
            shards: 1,
            runtime: small_runtime_config(),
            ..FleetConfig::default()
        };
        let mut builder = FleetBuilder::new(config).unwrap();
        let best = builder
            .add_session(0, QosTier::BestEffort, Box::new(CollectActuator::default()))
            .unwrap();
        let std_tier = builder
            .add_session(1, QosTier::Standard, Box::new(CollectActuator::default()))
            .unwrap();
        let crit = builder
            .add_session(2, QosTier::Critical, Box::new(CollectActuator::default()))
            .unwrap();
        let fleet = builder.start().unwrap();

        // Warm every session up first so the scratch arenas reach their
        // fixed point, then scale the budget off the shard's real
        // footprint: base usage sits at 100‰ and the phantom charge alone
        // decides the band.
        assert_eq!(fleet.submit(best, vec![0.1; 256]), SubmitOutcome::Submitted);
        assert_eq!(
            fleet.submit(std_tier, vec![0.1; 256]),
            SubmitOutcome::Submitted
        );
        assert_eq!(fleet.submit(crit, vec![0.1; 256]), SubmitOutcome::Submitted);
        fleet.wait_idle();
        let base = fleet.shards[0].as_ref().unwrap().memory_budget().clone();
        let real = base.used_bytes();
        assert!(real > 0, "rings and model tables must be charged");
        base.set_budget_bytes(real * 10);
        assert_eq!(fleet.enforce_pressure(), affect_rt::PressureBand::Green);

        // Red: BestEffort is evicted; Standard and Critical ride on.
        base.set_phantom(real * 9 - real); // 900‰ total
        assert_eq!(fleet.enforce_pressure(), affect_rt::PressureBand::Red);
        assert_eq!(fleet.submit(best, vec![0.1; 256]), SubmitOutcome::Evicted);
        assert_eq!(
            fleet.submit(std_tier, vec![0.1; 256]),
            SubmitOutcome::Submitted
        );

        // Critical: Standard goes too; the Critical tier never does.
        base.set_phantom(real * 10 - real); // 1000‰ total
        assert_eq!(fleet.enforce_pressure(), affect_rt::PressureBand::Critical);
        assert_eq!(
            fleet.submit(std_tier, vec![0.1; 256]),
            SubmitOutcome::Evicted
        );
        assert_eq!(fleet.submit(crit, vec![0.1; 256]), SubmitOutcome::Submitted);

        // Pressure recedes: everyone is readmitted, in order.
        base.set_phantom(0);
        assert_eq!(fleet.enforce_pressure(), affect_rt::PressureBand::Green);
        assert_eq!(fleet.submit(best, vec![0.1; 256]), SubmitOutcome::Submitted);
        assert_eq!(
            fleet.submit(std_tier, vec![0.1; 256]),
            SubmitOutcome::Submitted
        );

        fleet.wait_idle();
        let report = fleet.shutdown();
        assert!(report.accounted());
        let admission = &report.admission;
        assert_eq!(admission.sessions_evicted.by_tier, [1, 1, 0]);
        assert_eq!(admission.sessions_readmitted.by_tier, [1, 1, 0]);
        assert_eq!(admission.evicted.by_tier, [1, 1, 0]);
        assert_eq!(admission.offered.by_tier, [3, 4, 2]);
        assert_eq!(admission.submitted.by_tier, [2, 3, 2]);
    }
}
