//! The session router: consistent hashing with virtual nodes.
//!
//! Placement must satisfy three properties at fleet scale:
//!
//! 1. **Determinism** — the shard owning a session key is a pure function
//!    of `(shard ids, replicas, key)`. No RNG state, no registration
//!    order: removing a shard and re-adding it reproduces the *identical*
//!    ring, so a fleet restarted from its config routes every session to
//!    the same place (proven by a test).
//! 2. **Minimal disruption** — removing one shard only moves the keys it
//!    owned; every other key keeps its shard. That is the consistent-hash
//!    contract, and the reason the router is a hash ring rather than
//!    `key % shards` (where removing one shard reshuffles almost
//!    everything).
//! 3. **Uniformity** — each shard materializes as `replicas` virtual
//!    points on a `u64` ring, so load spreads evenly even with a handful
//!    of shards (property-tested against a max/min load-ratio bound).
//!
//! The hash is the same three-round SplitMix64 mix the chaos layer uses —
//! bijective per round, so distinct `(shard, replica)` pairs never
//! collide more than any 64-bit hash would.

/// Identifies one runtime shard of a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub usize);

impl ShardId {
    /// The shard's index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One step of the SplitMix64 output function (identical to
/// `affect_fault::decision_hash`'s core, duplicated here so the router
/// does not pull the chaos crate into every fleet build).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash of a `(shard, replica)` virtual node onto the ring.
fn point_of(shard: usize, replica: usize) -> u64 {
    mix(
        mix(0x5249_4e47 ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(replica as u64),
    )
}

/// Hash of a session key onto the ring.
fn key_point(key: u64) -> u64 {
    mix(key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x004b_4559)
}

/// A consistent-hash ring over the fleet's shards.
#[derive(Debug, Clone)]
pub struct HashRing {
    replicas: usize,
    /// Sorted `(point, shard)` pairs — the materialized ring.
    points: Vec<(u64, ShardId)>,
    shards: Vec<ShardId>,
}

impl HashRing {
    /// An empty ring where each shard will materialize as `replicas`
    /// virtual nodes (min 1).
    pub fn new(replicas: usize) -> Self {
        Self {
            replicas: replicas.max(1),
            points: Vec::new(),
            shards: Vec::new(),
        }
    }

    /// A ring pre-populated with shards `0..shards`.
    pub fn with_shards(shards: usize, replicas: usize) -> Self {
        let mut ring = Self::new(replicas);
        for s in 0..shards {
            ring.add_shard(ShardId(s));
        }
        ring
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` when no shard has been added.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shards currently on the ring, in id order.
    pub fn shards(&self) -> &[ShardId] {
        &self.shards
    }

    /// Virtual nodes per shard.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Adds a shard, materializing its virtual nodes. Idempotent: adding a
    /// shard already present is a no-op, so the ring stays a pure function
    /// of the shard *set*.
    pub fn add_shard(&mut self, shard: ShardId) {
        if self.shards.contains(&shard) {
            return;
        }
        self.shards.push(shard);
        self.shards.sort();
        for replica in 0..self.replicas {
            self.points.push((point_of(shard.0, replica), shard));
        }
        // Ties broken by shard id so the ring is order-independent even in
        // the (astronomically unlikely) event of a point collision.
        self.points.sort();
    }

    /// Removes a shard and all its virtual nodes. Keys it owned move to
    /// their next clockwise neighbour; every other key keeps its shard.
    pub fn remove_shard(&mut self, shard: ShardId) {
        self.shards.retain(|&s| s != shard);
        self.points.retain(|&(_, s)| s != shard);
    }

    /// Routes a session key to its owning shard: the first virtual node
    /// clockwise of the key's point (wrapping past the top of the ring).
    ///
    /// # Panics
    ///
    /// Panics on an empty ring — routing with zero shards is a
    /// configuration error, not a runtime condition.
    pub fn route(&self, key: u64) -> ShardId {
        assert!(!self.points.is_empty(), "routing on an empty ring");
        let p = key_point(key);
        match self.points.binary_search(&(p, ShardId(usize::MAX))) {
            // `Err(i)` is the insertion point: the first ring point > p
            // (ShardId::MAX makes equal-point entries sort before the
            // probe, so an exact point hit also lands here).
            Ok(i) => self.points[i].1,
            Err(i) if i < self.points.len() => self.points[i].1,
            Err(_) => self.points[0].1, // wrap
        }
    }

    /// Routes every key in `keys`, returning per-shard load counts
    /// indexed by position in [`HashRing::shards`]. Convenience for
    /// placement diagnostics and the uniformity tests.
    pub fn load_of(&self, keys: impl IntoIterator<Item = u64>) -> Vec<(ShardId, usize)> {
        let mut load: Vec<(ShardId, usize)> = self.shards.iter().map(|&s| (s, 0)).collect();
        for key in keys {
            let shard = self.route(key);
            if let Some(entry) = load.iter_mut().find(|(s, _)| *s == shard) {
                entry.1 += 1;
            }
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::with_shards(4, 64);
        for key in 0..1_000u64 {
            let a = ring.route(key);
            let b = ring.route(key);
            assert_eq!(a, b);
            assert!(a.index() < 4);
        }
    }

    #[test]
    fn ring_is_a_pure_function_of_the_shard_set() {
        let forward = HashRing::with_shards(5, 32);
        let mut reversed = HashRing::new(32);
        for s in (0..5).rev() {
            reversed.add_shard(ShardId(s));
        }
        for key in 0..2_000u64 {
            assert_eq!(forward.route(key), reversed.route(key));
        }
    }

    #[test]
    fn removing_a_shard_only_moves_its_keys() {
        let full = HashRing::with_shards(8, 64);
        let mut reduced = full.clone();
        reduced.remove_shard(ShardId(3));
        let mut moved = 0u32;
        for key in 0..4_000u64 {
            let before = full.route(key);
            let after = reduced.route(key);
            if before == ShardId(3) {
                assert_ne!(after, ShardId(3));
                moved += 1;
            } else {
                assert_eq!(before, after, "key {key} moved without cause");
            }
        }
        assert!(moved > 0, "shard 3 owned nothing?");
    }

    #[test]
    fn add_is_idempotent() {
        let mut ring = HashRing::with_shards(3, 16);
        let baseline: Vec<_> = (0..500).map(|k| ring.route(k)).collect();
        ring.add_shard(ShardId(1));
        let after: Vec<_> = (0..500).map(|k| ring.route(k)).collect();
        assert_eq!(baseline, after);
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn empty_ring_panics() {
        HashRing::new(8).route(1);
    }
}
