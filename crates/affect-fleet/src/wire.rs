//! Fleet-wide video wire: per-tier chunked Annex-B ingest.
//!
//! `affect-rt`'s [`WireSession`] closes the traffic loop for *one*
//! session; a gateway closes it for thousands, and its QoS tiers should
//! shape the video path the same way they shape the classifier ladder.
//! This module maps each [`QosTier`] to a decode posture — power mode,
//! wire framing, resilience — and fans one encoded segment out to every
//! session's wire, aggregating the per-tier accounting.
//!
//! The tier ladder mirrors the admission ladder: `Critical` wearers get
//! full-fidelity `Standard` decode on a strict wire; `Standard` wearers
//! get `NalDeletion`; `BestEffort` wearers get the paper's `Combined`
//! mode on a lenient, resilient wire that resyncs past in-flight damage
//! instead of failing the session.

use affect_core::policy::VideoPowerMode;
use affect_rt::{WireConfig, WireReport, WireSession};
use h264::adaptive::ModeSwitchDriver;
use h264::{CodecError, ScannerConfig};

use crate::qos::QosTier;

/// Decode posture for one QoS tier's video wire.
#[derive(Debug, Clone, Copy)]
pub struct TierWirePolicy {
    /// Power mode the tier's driver starts in.
    pub mode: VideoPowerMode,
    /// Wire framing (chunk size, scanner strictness, pending bound).
    pub wire: WireConfig,
    /// Whether the tier's decoder conceals in-flight damage.
    pub resilient: bool,
}

/// How the fleet shapes each tier's video wire.
#[derive(Debug, Clone, Copy)]
pub struct WirePlan {
    /// `[best_effort, standard, critical]`, indexed by [`QosTier::index`].
    pub by_tier: [TierWirePolicy; 3],
}

impl WirePlan {
    /// The policy for one tier.
    pub fn policy(&self, tier: QosTier) -> &TierWirePolicy {
        &self.by_tier[tier.index()]
    }
}

impl Default for WirePlan {
    /// The admission ladder, translated to the decode side: quality for
    /// `Critical`, the paper's full savings ladder below it, and lenient
    /// resilient framing only where shedding is already acceptable.
    fn default() -> Self {
        let strict = WireConfig::default();
        let lenient = WireConfig {
            scanner: ScannerConfig {
                strict: false,
                ..ScannerConfig::default()
            },
            ..WireConfig::default()
        };
        Self {
            by_tier: [
                TierWirePolicy {
                    mode: VideoPowerMode::Combined,
                    wire: lenient,
                    resilient: true,
                },
                TierWirePolicy {
                    mode: VideoPowerMode::NalDeletion,
                    wire: lenient,
                    resilient: true,
                },
                TierWirePolicy {
                    mode: VideoPowerMode::Standard,
                    wire: strict,
                    resilient: false,
                },
            ],
        }
    }
}

/// Per-tier wire accounting for one fleet segment fan-out.
#[derive(Debug, Clone, Default)]
pub struct FleetWireReport {
    /// `[best_effort, standard, critical]`, indexed by [`QosTier::index`].
    pub by_tier: [WireReport; 3],
    /// Sessions whose wire segment failed outright (strict-tier decode
    /// errors); `(tier, session, error)` in fan-out order.
    pub failures: Vec<(QosTier, u64, CodecError)>,
}

impl FleetWireReport {
    /// The accounting for one tier.
    pub fn tier(&self, tier: QosTier) -> &WireReport {
        &self.by_tier[tier.index()]
    }

    /// Sum over all tiers.
    pub fn total(&self) -> WireReport {
        let mut total = WireReport::default();
        for report in &self.by_tier {
            total.merge(report);
        }
        total
    }
}

/// One fleet segment fan-out: streams `stream` over every session's wire
/// under its tier's policy.
///
/// `tap` is the in-flight seam, called per session per chunk as
/// `(session, chunk_index, bytes)` — wire `affect-fault`'s
/// `WireCorruptor` (one per session, seeded by session id) through it for
/// deterministic per-session damage. Sessions are processed in slice
/// order, so runs are reproducible.
///
/// Decode errors on a session's wire (possible on strict tiers under
/// corruption) are collected in [`FleetWireReport::failures`] rather than
/// aborting the fan-out: one wearer's broken wire must not stall the
/// fleet.
pub fn drive_wire(
    sessions: &[(u64, QosTier)],
    stream: &[u8],
    plan: &WirePlan,
    mut tap: impl FnMut(u64, u64, &mut Vec<u8>),
) -> FleetWireReport {
    let mut report = FleetWireReport::default();
    for &(session, tier) in sessions {
        let policy = plan.policy(tier);
        let mut driver = ModeSwitchDriver::new(policy.mode);
        driver.set_resilient(policy.resilient);
        let mut wire = WireSession::new(policy.wire);
        match wire.ingest_segment(&driver, stream, |chunk, buf| tap(session, chunk, buf)) {
            Ok((_, segment)) => report.by_tier[tier.index()].merge(&segment),
            Err(err) => report.failures.push((tier, session, err)),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment() -> Vec<u8> {
        let (_, stream) = h264::adaptive::paper_reference(11).expect("reference clip");
        stream
    }

    #[test]
    fn fan_out_decodes_every_tier_and_aggregates() {
        let stream = segment();
        let sessions = [
            (1u64, QosTier::Critical),
            (2, QosTier::Standard),
            (3, QosTier::BestEffort),
            (4, QosTier::BestEffort),
        ];
        let report = drive_wire(&sessions, &stream, &WirePlan::default(), |_, _, _| {});
        assert!(report.failures.is_empty(), "intact wire: no failures");
        assert_eq!(
            report.tier(QosTier::Critical).chunks,
            report.tier(QosTier::Standard).chunks
        );
        assert_eq!(
            report.tier(QosTier::BestEffort).wire_bytes,
            2 * stream.len() as u64,
            "two best-effort sessions each carry the full segment"
        );
        let total = report.total();
        assert_eq!(total.wire_bytes, 4 * stream.len() as u64);
        assert!(total.frames > 0);
        // The deletion tiers decode the same frame count as Critical:
        // concealment keeps display cadence even when units are deleted.
        assert_eq!(total.frames % 4, 0);
    }

    #[test]
    fn tier_policies_follow_the_admission_ladder() {
        let plan = WirePlan::default();
        assert_eq!(
            plan.policy(QosTier::Critical).mode,
            VideoPowerMode::Standard
        );
        assert_eq!(
            plan.policy(QosTier::Standard).mode,
            VideoPowerMode::NalDeletion
        );
        assert_eq!(
            plan.policy(QosTier::BestEffort).mode,
            VideoPowerMode::Combined
        );
        assert!(plan.policy(QosTier::Critical).wire.scanner.strict);
        assert!(!plan.policy(QosTier::BestEffort).wire.scanner.strict);
    }

    #[test]
    fn damaged_wire_fails_strict_tier_but_not_resilient_tiers() {
        let stream = segment();
        let sessions = [(10u64, QosTier::Critical), (11, QosTier::BestEffort)];
        // Small chunks so chunk 3 lands mid-stream regardless of clip size.
        let mut plan = WirePlan::default();
        for policy in &mut plan.by_tier {
            policy.wire.chunk_bytes = 64;
        }
        // Stomp one mid-stream chunk on every session's wire.
        let report = drive_wire(&sessions, &stream, &plan, |_, chunk, buf| {
            if chunk == 3 {
                buf.iter_mut().for_each(|b| *b = 0xAA);
            }
        });
        let best_effort = report.tier(QosTier::BestEffort);
        assert!(
            best_effort.frames > 0,
            "resilient lenient tier keeps playing through damage"
        );
        assert!(
            best_effort.damaged_units > 0 || best_effort.resyncs > 0,
            "damage must be visible in the tier accounting"
        );
        // Critical is strict + non-resilient: the stomped chunk either
        // fails the session (recorded, not propagated) or, if the damage
        // lands entirely inside payload bytes that still parse, decodes.
        let critical_failed = report
            .failures
            .iter()
            .any(|(t, s, _)| *t == QosTier::Critical && *s == 10);
        assert!(
            critical_failed || report.tier(QosTier::Critical).frames > 0,
            "critical session either fails visibly or decodes"
        );
    }

    #[test]
    fn fan_out_is_deterministic() {
        let stream = segment();
        let sessions = [(1u64, QosTier::Standard), (2, QosTier::BestEffort)];
        let run = |_: ()| {
            drive_wire(&sessions, &stream, &WirePlan::default(), |s, c, buf| {
                if (s + c) % 7 == 0 && !buf.is_empty() {
                    buf[0] ^= 0x40;
                }
            })
        };
        let a = run(());
        let b = run(());
        assert_eq!(a.by_tier, b.by_tier);
        assert_eq!(a.failures.len(), b.failures.len());
    }
}
