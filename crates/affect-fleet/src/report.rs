//! Fleet-level reports: per-shard runtime reports remapped onto global
//! session ids, merged into one fleet-wide view, plus the admission
//! controller's own ledger.
//!
//! Two invariants are checked here, and both must hold for
//! [`FleetReport::accounted`] to be `true`:
//!
//! 1. **Runtime accounting** — for every session on every shard,
//!    `produced == processed + dropped` (the `affect-rt` no-silent-loss
//!    invariant, preserved by [`affect_rt::RuntimeReport::merge`]).
//! 2. **Fleet accounting** — for every QoS tier,
//!    `offered == submitted + shed + evicted`: every window the load
//!    source offered the fleet either entered a shard's pipeline, was
//!    explicitly shed by QoS pressure control, or bounced off an evicted
//!    session (memory-pressure eviction refuses its windows before they
//!    are produced). Nothing disappears between the router and the
//!    runtime.

use affect_rt::RuntimeReport;

use crate::qos::{PerTier, QosTier};
use crate::router::ShardId;

/// The admission controller's ledger: sessions at registration time,
/// windows at submit time, both broken down by tier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdmissionReport {
    /// Sessions admitted per tier (across all shards).
    pub admitted: PerTier,
    /// Registrations refused per tier (shard at capacity for that tier).
    pub rejected: PerTier,
    /// Windows the load source offered per tier.
    pub offered: PerTier,
    /// Windows that entered a shard's ingest queue per tier.
    pub submitted: PerTier,
    /// Windows shed pre-submit by QoS pressure control per tier.
    pub shed: PerTier,
    /// Windows refused because their session was evicted by the
    /// memory-pressure governor (and not yet readmitted) per tier.
    pub evicted: PerTier,
    /// Sessions evicted by the memory-pressure governor per tier
    /// (cumulative; a session evicted twice counts twice).
    pub sessions_evicted: PerTier,
    /// Sessions readmitted after pressure receded per tier.
    pub sessions_readmitted: PerTier,
}

impl AdmissionReport {
    /// `true` when every offered window is accounted for per tier:
    /// `offered == submitted + shed + evicted`.
    pub fn accounted(&self) -> bool {
        QosTier::ALL.iter().all(|&t| {
            self.offered.get(t) == self.submitted.get(t) + self.shed.get(t) + self.evicted.get(t)
        })
    }

    /// Fraction of offered windows shed for one tier (0 when the tier saw
    /// no traffic).
    pub fn shed_rate(&self, tier: QosTier) -> f64 {
        let offered = self.offered.get(tier);
        if offered == 0 {
            0.0
        } else {
            self.shed.get(tier) as f64 / offered as f64
        }
    }
}

/// Everything the fleet knows about a run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-shard runtime reports with session ids remapped to the fleet's
    /// global id space, in shard order.
    pub shards: Vec<(ShardId, RuntimeReport)>,
    /// All shard reports merged into one fleet-wide runtime report.
    pub merged: RuntimeReport,
    /// The admission controller's session and window ledger.
    pub admission: AdmissionReport,
}

impl FleetReport {
    /// Builds the fleet report from already-remapped shard reports.
    /// `shards` must use globally unique session ids (the fleet remaps
    /// shard-local indices before calling this), otherwise unrelated
    /// sessions merge into one.
    pub fn new(shards: Vec<(ShardId, RuntimeReport)>, admission: AdmissionReport) -> Self {
        let mut merged: Option<RuntimeReport> = None;
        for (_, report) in &shards {
            match merged.as_mut() {
                Some(m) => m.merge(report),
                None => merged = Some(report.clone()),
            }
        }
        let merged = merged.unwrap_or(RuntimeReport {
            sessions: Vec::new(),
            stages: Vec::new(),
            classify: Default::default(),
            faults: Default::default(),
            mem: Default::default(),
        });
        Self {
            shards,
            merged,
            admission,
        }
    }

    /// `true` when both the runtime invariant (per session,
    /// `produced == processed + dropped`) and the fleet invariant (per
    /// tier, `offered == submitted + shed`) hold.
    pub fn accounted(&self) -> bool {
        self.merged.all_accounted() && self.admission.accounted()
    }

    /// Total sessions across all shards.
    pub fn sessions(&self) -> usize {
        self.merged.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_accounting_checks_per_tier() {
        let mut report = AdmissionReport::default();
        *report.offered.get_mut(QosTier::BestEffort) = 10;
        *report.submitted.get_mut(QosTier::BestEffort) = 7;
        *report.shed.get_mut(QosTier::BestEffort) = 3;
        *report.offered.get_mut(QosTier::Critical) = 5;
        *report.submitted.get_mut(QosTier::Critical) = 5;
        assert!(report.accounted());
        assert!((report.shed_rate(QosTier::BestEffort) - 0.3).abs() < 1e-12);
        assert_eq!(report.shed_rate(QosTier::Critical), 0.0);
        assert_eq!(report.shed_rate(QosTier::Standard), 0.0);

        // A lost window breaks the invariant in exactly one tier.
        *report.submitted.get_mut(QosTier::BestEffort) = 6;
        assert!(!report.accounted());
        // …and an eviction bounce explains it again.
        *report.evicted.get_mut(QosTier::BestEffort) = 1;
        assert!(report.accounted());
    }

    #[test]
    fn empty_fleet_report_is_accounted() {
        let report = FleetReport::new(Vec::new(), AdmissionReport::default());
        assert!(report.accounted());
        assert_eq!(report.sessions(), 0);
    }
}
