//! `affect-fleet`: a sharded many-session fleet runtime with QoS
//! admission control over `affect-rt`.
//!
//! One `affect-rt` runtime serves N wearers on one device. The paper's
//! end state, though, is *population* scale: an edge gateway (or a test
//! rig) running tens of thousands of concurrent affect sessions. This
//! crate is that layer:
//!
//! - **Shards** — N independent [`affect_rt::Runtime`]s (one per core is
//!   the intended shape), each owning its sessions end-to-end. The fleet
//!   touches a window once, to route it; there are no cross-shard locks
//!   on the hot path.
//! - **Router** — consistent hashing with virtual nodes
//!   ([`HashRing`]): placement is a pure function of the shard set, so
//!   rebalancing on shard add/remove is deterministic and minimal.
//! - **QoS admission** — three tiers ([`QosTier`]) mapped onto the
//!   paper's LSTM → CNN → MLP degradation ladder: a tier fixes a
//!   session's initial classifier family *and* its recovery ceiling.
//!   Registration-time reserves keep best-effort bursts from crowding
//!   out critical wearers; submit-time pressure shedding drops the low
//!   tiers first when a shard's ingest queue fills.
//! - **Aggregation** — shutdown merges every shard's report into one
//!   fleet-wide [`FleetReport`]: histograms bucket-wise, counters
//!   summed, session ids remapped to a global space, and *two*
//!   accounting invariants checked — the runtime's
//!   `produced == processed + dropped` per session, and the fleet's
//!   `offered == submitted + shed` per tier.
//! - **Observability** — the `affect_fleet_*` series (routing,
//!   admission, shedding) through `affect-obs`; shards sharing one
//!   registry aggregate the existing `affect_rt_*` series fleet-wide for
//!   free.
//! - **Chaos** — per-shard fault hooks slot into the same
//!   [`affect_rt::FaultHook`] seam; `affect-fault`'s
//!   `FaultPlan::for_shard` derives decorrelated per-shard streams from
//!   one fleet seed, so a 10k-session chaos run replays exactly.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use affect_fleet::{FleetBuilder, FleetConfig, QosTier};
//! use affect_rt::{CollectActuator, VirtualClock};
//!
//! # fn main() -> Result<(), affect_core::AffectError> {
//! let mut config = FleetConfig {
//!     shards: 2,
//!     ..FleetConfig::default()
//! };
//! config.runtime.window_samples = 256;
//! config.runtime.feature.frame_len = 128;
//! config.runtime.feature.hop = 64;
//! config.runtime.workers = 1;
//! let clock = Arc::new(VirtualClock::new());
//! let mut builder = FleetBuilder::new(config)?;
//! let session = builder
//!     .add_session(7, QosTier::Critical, Box::new(CollectActuator::default()))
//!     .expect("admission");
//! let fleet = builder.clock(clock).start()?;
//! fleet.submit(session, vec![0.25; 256]);
//! fleet.wait_idle();
//! let report = fleet.shutdown();
//! assert!(report.accounted());
//! assert_eq!(report.merged.total_produced(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod driver;
pub mod fleet;
pub mod metrics;
pub mod qos;
pub mod report;
pub mod router;
pub mod wire;

pub use driver::{drive_lockstep, synth_window, LoadOutcome, LoadPlan};
pub use fleet::{Fleet, FleetBuilder, FleetConfig, FleetSessionId, SubmitOutcome};
pub use metrics::{FleetMetrics, TierMetrics};
pub use qos::{AdmissionConfig, PerTier, QosTier, ShardOccupancy};
pub use report::{AdmissionReport, FleetReport};
pub use router::{HashRing, ShardId};
pub use wire::{drive_wire, FleetWireReport, TierWirePolicy, WirePlan};
