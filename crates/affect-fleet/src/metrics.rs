//! The `affect_fleet_*` metric family.
//!
//! Fleet metrics cover what the shards cannot see: routing, admission,
//! and tier-level shedding. The per-runtime `affect_rt_*` series need no
//! fleet counterpart — the registry is idempotent per `(name, labels)`,
//! so shards sharing one [`MetricsRegistry`] aggregate those series
//! fleet-wide automatically.
//!
//! Every series is documented in `docs/OBSERVABILITY.md`.

use std::sync::Arc;

use affect_obs::{Counter, Gauge, MetricsRegistry};

use crate::qos::QosTier;
use crate::router::ShardId;

/// Per-tier instrument set (one entry per [`QosTier`]).
#[derive(Debug)]
pub struct TierMetrics {
    /// `affect_fleet_sessions{tier}` — sessions admitted.
    pub sessions: Arc<Gauge>,
    /// `affect_fleet_sessions_rejected_total{tier}` — registrations refused.
    pub rejected: Arc<Counter>,
    /// `affect_fleet_windows_offered_total{tier}`.
    pub offered: Arc<Counter>,
    /// `affect_fleet_windows_submitted_total{tier}`.
    pub submitted: Arc<Counter>,
    /// `affect_fleet_windows_shed_total{tier}`.
    pub shed: Arc<Counter>,
    /// `affect_fleet_windows_evicted_total{tier}` — windows refused
    /// because their session was evicted by the memory-pressure governor.
    pub windows_evicted: Arc<Counter>,
    /// `affect_fleet_sessions_evicted_total{tier}` — sessions evicted by
    /// the memory-pressure governor.
    pub sessions_evicted: Arc<Counter>,
    /// `affect_fleet_sessions_readmitted_total{tier}` — evicted sessions
    /// readmitted after pressure receded.
    pub sessions_readmitted: Arc<Counter>,
}

/// All fleet-level instruments, registered once per fleet.
#[derive(Debug)]
pub struct FleetMetrics {
    /// `affect_fleet_shards` — shards in the fleet.
    pub shards: Arc<Gauge>,
    /// Per-tier instruments, indexed by [`QosTier::index`].
    pub tiers: [TierMetrics; 3],
}

impl FleetMetrics {
    /// Registers (or re-acquires) every fleet series on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        let tier = |t: QosTier| {
            let labels: &[(&str, &str)] = &[("tier", t.label())];
            TierMetrics {
                sessions: registry.gauge(
                    "affect_fleet_sessions",
                    "Sessions admitted to the fleet, by QoS tier",
                    labels,
                ),
                rejected: registry.counter(
                    "affect_fleet_sessions_rejected_total",
                    "Session registrations refused by admission control, by QoS tier",
                    labels,
                ),
                offered: registry.counter(
                    "affect_fleet_windows_offered_total",
                    "Windows offered to the fleet by load sources, by QoS tier",
                    labels,
                ),
                submitted: registry.counter(
                    "affect_fleet_windows_submitted_total",
                    "Windows that entered a shard's ingest queue, by QoS tier",
                    labels,
                ),
                shed: registry.counter(
                    "affect_fleet_windows_shed_total",
                    "Windows shed pre-submit by QoS pressure control, by QoS tier",
                    labels,
                ),
                windows_evicted: registry.counter(
                    "affect_fleet_windows_evicted_total",
                    "Windows refused because their session was evicted by the \
                     memory-pressure governor, by QoS tier",
                    labels,
                ),
                sessions_evicted: registry.counter(
                    "affect_fleet_sessions_evicted_total",
                    "Sessions evicted by the memory-pressure governor, by QoS tier",
                    labels,
                ),
                sessions_readmitted: registry.counter(
                    "affect_fleet_sessions_readmitted_total",
                    "Evicted sessions readmitted after memory pressure receded, by QoS tier",
                    labels,
                ),
            }
        };
        Self {
            shards: registry.gauge("affect_fleet_shards", "Runtime shards in the fleet", &[]),
            tiers: [
                tier(QosTier::BestEffort),
                tier(QosTier::Standard),
                tier(QosTier::Critical),
            ],
        }
    }

    /// The instrument set for one tier.
    pub fn tier(&self, tier: QosTier) -> &TierMetrics {
        &self.tiers[tier.index()]
    }

    /// Registers and sets the per-shard session gauge
    /// `affect_fleet_shard_sessions{shard}`.
    pub fn set_shard_sessions(registry: &MetricsRegistry, shard: ShardId, sessions: usize) {
        registry
            .gauge(
                "affect_fleet_shard_sessions",
                "Sessions owned by one runtime shard",
                &[("shard", &shard.index().to_string())],
            )
            .set(sessions as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_tier() {
        let registry = MetricsRegistry::new();
        let a = FleetMetrics::register(&registry);
        let b = FleetMetrics::register(&registry);
        a.tier(QosTier::Critical).offered.add(3);
        b.tier(QosTier::Critical).offered.add(2);
        // Same (name, labels) → same instrument: both handles share state.
        assert_eq!(a.tier(QosTier::Critical).offered.get(), 5);
        // Distinct tiers stay distinct.
        assert_eq!(a.tier(QosTier::Standard).offered.get(), 0);
    }

    #[test]
    fn shard_gauge_is_labelled_per_shard() {
        let registry = MetricsRegistry::new();
        FleetMetrics::set_shard_sessions(&registry, ShardId(0), 7);
        FleetMetrics::set_shard_sessions(&registry, ShardId(1), 9);
        FleetMetrics::set_shard_sessions(&registry, ShardId(0), 8);
        let g0 = registry.gauge("affect_fleet_shard_sessions", "", &[("shard", "0")]);
        let g1 = registry.gauge("affect_fleet_shard_sessions", "", &[("shard", "1")]);
        assert_eq!(g0.get(), 8);
        assert_eq!(g1.get(), 9);
    }
}
