//! A deterministic lockstep load driver.
//!
//! The bench (`fleet_throughput`), the demo (`examples/realtime_loop
//! --fleet`), and the CI smoke job all need the same thing: offer every
//! session one window per round, advance virtual time one tick, repeat.
//! Keeping that loop here means they measure the same code path instead
//! of three hand-rolled drivers drifting apart.
//!
//! Two pacing modes:
//!
//! - `drain_every: Some(k)` — wait for the fleet to go idle every `k`
//!   rounds. Backlog stays bounded; latency reflects pipeline service
//!   time. This is the demo/smoke shape.
//! - `drain_every: None` — never wait mid-run. The offered rate is
//!   whatever the producer loop can push, backlog grows at saturation,
//!   and the recorded latency (in *virtual* nanoseconds, since arrival
//!   stamps come from the shared [`VirtualClock`]) measures queueing
//!   delay in ticks. This is how the bench builds its p99-vs-load curve.

use affect_rt::VirtualClock;

use crate::fleet::{Fleet, SubmitOutcome};
use crate::qos::PerTier;

/// One lockstep load run.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Rounds to drive; each round offers every session one window.
    pub rounds: u64,
    /// Samples per offered window (must match the runtime's
    /// `window_samples`).
    pub window_samples: usize,
    /// Virtual nanoseconds the clock advances per round.
    pub tick_ns: u64,
    /// Wait for the fleet to drain every this-many rounds (`None` =
    /// free-running; drain only when the caller decides to).
    pub drain_every: Option<u64>,
}

impl Default for LoadPlan {
    fn default() -> Self {
        Self {
            rounds: 16,
            window_samples: 256,
            tick_ns: 1_000_000_000, // the paper's 1 s decision cadence
            drain_every: Some(1),
        }
    }
}

/// Tallies from one [`drive_lockstep`] run (the authoritative per-tier
/// ledger lives in the fleet's own report; these are the driver's view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Windows offered per tier.
    pub offered: PerTier,
    /// Windows shed by QoS pressure control per tier.
    pub shed: PerTier,
    /// Rounds actually driven.
    pub rounds: u64,
}

/// A deterministic, cheap-to-generate biosignal stand-in: a per-session
/// phase-shifted ramp in `[0, 0.5)`. Finite everywhere (the feature
/// stage rejects NaN/∞), varied enough that windows are not identical.
pub fn synth_window(session: usize, round: u64, window_samples: usize) -> Vec<f32> {
    let phase = (session as u64).wrapping_mul(31).wrapping_add(round) % 64;
    let base = phase as f32 / 128.0;
    let mut samples = vec![base; window_samples];
    // A little in-window structure so feature extraction has work to do.
    for (i, s) in samples.iter_mut().enumerate() {
        *s += ((i % 17) as f32) * 0.01;
    }
    samples
}

/// Drives the fleet in lockstep: every round offers one window per
/// session, then advances `clock` by one tick. See the module docs for
/// the two pacing modes.
pub fn drive_lockstep(fleet: &Fleet, clock: &VirtualClock, plan: &LoadPlan) -> LoadOutcome {
    let mut outcome = LoadOutcome::default();
    for round in 0..plan.rounds {
        for global in 0..fleet.session_count() {
            let session = fleet.session(global);
            let window = synth_window(global, round, plan.window_samples);
            *outcome.offered.get_mut(session.tier) += 1;
            if fleet.submit(session, window) == SubmitOutcome::Shed {
                *outcome.shed.get_mut(session.tier) += 1;
            }
        }
        clock.advance(plan.tick_ns);
        if let Some(k) = plan.drain_every {
            if k > 0 && (round + 1).is_multiple_of(k) {
                fleet.wait_idle();
            }
        }
        outcome.rounds = round + 1;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_windows_are_finite_and_deterministic() {
        let a = synth_window(3, 7, 256);
        let b = synth_window(3, 7, 256);
        assert_eq!(a, b);
        assert!(a.iter().all(|s| s.is_finite()));
        assert_ne!(a, synth_window(4, 7, 256), "sessions differ");
        assert_ne!(a, synth_window(3, 8, 256), "rounds differ");
    }
}
