//! Property-based tests for the NN crate's core invariants.

use nn::hdc::{HdcClassifier, HdcConfig};
use nn::kernels;
use nn::layers::{Activation, Conv1d, Dense, Flatten, Layer, Lstm, MaxPool1d};
use nn::loss::{cross_entropy, softmax};
use nn::quant::QuantizedTensor;
use nn::serialize::{load_weights, save_weights};
use nn::{Precision, Scratch, Sequential, Tensor};
use proptest::prelude::*;

/// Reference row-major matrix-vector product, the pre-kernel arithmetic
/// (per-row accumulator, ascending column order).
fn naive_gemv(a: &[f32], m: usize, n: usize, x: &[f32]) -> Vec<f32> {
    (0..m)
        .map(|r| {
            let mut acc = 0.0f32;
            for (j, &xj) in x.iter().enumerate().take(n) {
                acc += a[r * n + j] * xj;
            }
            acc
        })
        .collect()
}

proptest! {
    /// The register-blocked gemv kernel is bit-for-bit identical to the
    /// naive triple-loop for every shape, including ragged remainders.
    #[test]
    fn blocked_gemv_matches_naive_bitwise(
        m in 1usize..17,
        n in 1usize..17,
        seed in 0u64..1000,
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i32 % 1000) as f32 / 250.0
        };
        let a: Vec<f32> = (0..m * n).map(|_| next()).collect();
        let x: Vec<f32> = (0..n).map(|_| next()).collect();
        let mut y = vec![0.0f32; m];
        kernels::gemv(&a, m, n, &x, &mut y);
        let reference = naive_gemv(&a, m, n, &x);
        for (got, want) in y.iter().zip(&reference) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    /// The whole scratch-buffer forward path agrees bit-for-bit with the
    /// allocating tensor path for arbitrary MLP widths, and repeated calls
    /// through one warmed-up scratch stay byte-identical.
    #[test]
    fn forward_with_scratch_matches_forward_bitwise(
        hidden in 1usize..12,
        seed in 0u64..200,
    ) {
        let mut model = Sequential::new();
        model.push(Dense::new(6, hidden, seed).unwrap());
        model.push(Activation::relu());
        model.push(Dense::new(hidden, 4, seed + 1).unwrap());
        let input: Vec<f32> = (0..6).map(|i| ((i as f32) - 2.5) * 0.4).collect();
        let x = Tensor::from_vec(input.clone(), &[6]).unwrap();
        let reference = model.forward(&x, false).unwrap();
        let mut scratch = Scratch::new();
        for _ in 0..3 {
            let (shape, out) = model.forward_with(&input, &[6], &mut scratch).unwrap();
            prop_assert_eq!(shape.as_slice(), reference.shape());
            prop_assert_eq!(out, reference.data());
        }
    }

    /// Softmax always produces a probability distribution.
    #[test]
    fn softmax_is_distribution(logits in prop::collection::vec(-20.0f32..20.0, 1..16)) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    /// Cross-entropy loss is nonnegative and its gradient sums to zero.
    #[test]
    fn cross_entropy_invariants(
        logits in prop::collection::vec(-10.0f32..10.0, 2..10),
        label_seed in 0usize..100,
    ) {
        let label = label_seed % logits.len();
        let t = Tensor::from_vec(logits.clone(), &[logits.len()]).unwrap();
        let (loss, grad) = cross_entropy(&t, label).unwrap();
        prop_assert!(loss >= 0.0);
        prop_assert!(grad.data().iter().sum::<f32>().abs() < 1e-4);
        // Gradient of the true class is always negative (push it up).
        prop_assert!(grad.data()[label] <= 0.0);
    }

    /// int8 quantization error is bounded by half the scale, elementwise.
    #[test]
    fn quantization_error_bounded(values in prop::collection::vec(-100.0f32..100.0, 1..256)) {
        let t = Tensor::from_vec(values, &[1]).unwrap_or_else(|_| Tensor::zeros(&[1]).unwrap());
        // Build with the real length.
        let t = Tensor::from_vec(t.data().to_vec(), &[t.len()]).unwrap();
        let q = QuantizedTensor::quantize(&t);
        prop_assert!(q.max_error(&t).unwrap() <= q.scale() / 2.0 + 1e-5);
    }

    /// Dense forward is linear: f(ax) - f(0) == a (f(x) - f(0)).
    #[test]
    fn dense_is_affine(scale in -3.0f32..3.0, seed in 0u64..50) {
        let mut l = Dense::new(4, 3, seed).unwrap();
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.9, 0.5], &[4]).unwrap();
        let zero = Tensor::zeros(&[4]).unwrap();
        let fx = l.forward(&x, false).unwrap();
        let f0 = l.forward(&zero, false).unwrap();
        let mut sx = x.clone();
        sx.scale(scale);
        let fsx = l.forward(&sx, false).unwrap();
        for i in 0..3 {
            let lhs = fsx.data()[i] - f0.data()[i];
            let rhs = scale * (fx.data()[i] - f0.data()[i]);
            prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + rhs.abs()));
        }
    }

    /// Serialization round-trips bit-for-bit for arbitrary architectures.
    #[test]
    fn serialize_round_trip(seed in 0u64..64, hidden in 1usize..8) {
        let build = |s: u64| {
            let mut m = Sequential::new();
            m.push(Lstm::new(3, hidden, false, s).unwrap());
            m.push(Dense::new(hidden, 2, s + 1).unwrap());
            m
        };
        let mut a = build(seed);
        let mut b = build(seed + 1000);
        let x = Tensor::from_vec(vec![0.1, 0.2, 0.3, -0.1, -0.2, -0.3], &[2, 3]).unwrap();
        let blob = save_weights(&a);
        load_weights(&mut b, &blob).unwrap();
        prop_assert_eq!(a.forward(&x, false).unwrap(), b.forward(&x, false).unwrap());
    }

    /// Corrupting any byte of the header is detected.
    #[test]
    fn serialize_detects_header_corruption(byte in 0usize..12) {
        let mut m = Sequential::new();
        m.push(Dense::new(2, 2, 1).unwrap());
        let mut blob = save_weights(&m);
        blob[byte] ^= 0xA5;
        let mut target = Sequential::new();
        target.push(Dense::new(2, 2, 2).unwrap());
        // Either a malformed-blob error or (for the count field colliding)
        // a shape mismatch — never a silent success.
        prop_assert!(load_weights(&mut target, &blob).is_err());
    }

    /// A CNN stack maps shapes consistently for any valid input length.
    #[test]
    fn cnn_shape_algebra(t_in in 8usize..64) {
        let mut conv = Conv1d::new(2, 3, 3, 1).unwrap();
        let mut pool = MaxPool1d::new(2).unwrap();
        let mut flat = Flatten::new();
        let x = Tensor::zeros(&[2, t_in]).unwrap();
        let y = conv.forward(&x, false).unwrap();
        prop_assert_eq!(y.shape(), &[3, t_in - 2]);
        let p = pool.forward(&y, false).unwrap();
        prop_assert_eq!(p.shape(), &[3, (t_in - 2) / 2]);
        let f = flat.forward(&p, false).unwrap();
        prop_assert_eq!(f.len(), 3 * ((t_in - 2) / 2));
    }

    /// ReLU output is nonnegative and idempotent.
    #[test]
    fn relu_idempotent(values in prop::collection::vec(-5.0f32..5.0, 1..64)) {
        let n = values.len();
        let mut relu = Activation::relu();
        let x = Tensor::from_vec(values, &[n]).unwrap();
        let once = relu.forward(&x, false).unwrap();
        prop_assert!(once.data().iter().all(|&v| v >= 0.0));
        let twice = relu.forward(&once, false).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// The unrolled i8×i8→i32 dot kernel agrees exactly with the scalar
    /// accumulation for every length, including ragged tails.
    #[test]
    fn dot_i8_matches_scalar_exactly(
        a in prop::collection::vec(-128i8..=127, 0..64),
        seed in 0u64..1000,
    ) {
        let mut s = seed;
        let b: Vec<i8> = (0..a.len())
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 56) as i8
            })
            .collect();
        let reference: i32 = a.iter().zip(&b).map(|(&x, &y)| i32::from(x) * i32::from(y)).sum();
        prop_assert_eq!(kernels::dot_i8(&a, &b), reference);
    }

    /// Two HDC classifiers built from the same config are identical
    /// functions: same encodings, same predictions, same probabilities —
    /// the item memory is a pure function of the seed.
    #[test]
    fn hdc_seed_determinism(
        seed in 0u64..500,
        values in prop::collection::vec(-2.0f32..2.0, 6),
    ) {
        let config = HdcConfig::new(6, 3, seed).unwrap();
        let mut a = HdcClassifier::new(config).unwrap();
        let mut b = HdcClassifier::new(config).unwrap();
        prop_assert_eq!(a.encode(&values).unwrap(), b.encode(&values).unwrap());
        let (mut pa, mut pb) = (Vec::new(), Vec::new());
        let ca = a.classify_into(&values, &mut pa).unwrap();
        let cb = b.classify_into(&values, &mut pb).unwrap();
        prop_assert_eq!(ca, cb);
        prop_assert_eq!(pa, pb);
    }

    /// Bundling is commutative: fitting on a rotated sample order yields
    /// bit-identical prototypes, so training is order-invariant.
    #[test]
    fn hdc_fit_is_permutation_stable(seed in 0u64..200, rotate in 1usize..11) {
        let xs: Vec<Tensor> = (0..12)
            .map(|i| {
                let v: Vec<f32> = (0..5)
                    .map(|c| (((i * 5 + c) as f32) * 0.37 + seed as f32).sin())
                    .collect();
                Tensor::from_vec(v, &[5]).unwrap()
            })
            .collect();
        let ys: Vec<usize> = (0..12).map(|i| i % 3).collect();
        let mut rotated_x = xs.clone();
        let mut rotated_y = ys.clone();
        rotated_x.rotate_left(rotate);
        rotated_y.rotate_left(rotate);
        let mut a = HdcClassifier::new(HdcConfig::new(5, 3, seed).unwrap()).unwrap();
        let mut b = HdcClassifier::new(HdcConfig::new(5, 3, seed).unwrap()).unwrap();
        a.fit(&xs, &ys).unwrap();
        b.fit(&rotated_x, &rotated_y).unwrap();
        for class in 0..3 {
            prop_assert_eq!(a.prototype(class), b.prototype(class));
        }
        for x in &xs {
            prop_assert_eq!(a.predict(x.data()).unwrap(), b.predict(x.data()).unwrap());
        }
    }

    /// Switching a model to int8 perturbs the scratch-path output only
    /// within the quantization error budget, and switching back restores
    /// the f32 result bit-for-bit.
    #[test]
    fn int8_forward_stays_near_f32(hidden in 1usize..12, seed in 0u64..200) {
        let mut model = Sequential::new();
        model.push(Dense::new(6, hidden, seed).unwrap());
        model.push(Activation::relu());
        model.push(Dense::new(hidden, 4, seed + 1).unwrap());
        let input: Vec<f32> = (0..6).map(|i| ((i as f32) - 2.5) * 0.4).collect();
        let mut scratch = Scratch::new();
        let f32_out: Vec<f32> = {
            let (_, out) = model.forward_with(&input, &[6], &mut scratch).unwrap();
            out.to_vec()
        };
        model.set_precision(Precision::Int8).unwrap();
        {
            let (shape, out) = model.forward_with(&input, &[6], &mut scratch).unwrap();
            prop_assert_eq!(shape.as_slice(), &[4usize][..]);
            for (q, f) in out.iter().zip(&f32_out) {
                prop_assert!(
                    (q - f).abs() <= 0.1 * (1.0 + f.abs()),
                    "int8 {} strayed from f32 {}", q, f
                );
            }
        }
        model.set_precision(Precision::F32).unwrap();
        let (_, out) = model.forward_with(&input, &[6], &mut scratch).unwrap();
        prop_assert_eq!(out, &f32_out[..]);
    }
}
