//! Evaluation metrics: accuracy and confusion matrices.

use crate::model::Sequential;
use crate::{NnError, Tensor};
use std::fmt;

/// Fraction of samples `model` classifies correctly.
///
/// # Errors
///
/// Returns [`NnError::InvalidParameter`] on length mismatch or an empty set;
/// propagates model errors.
pub fn accuracy(
    model: &mut Sequential,
    inputs: &[Tensor],
    labels: &[usize],
) -> Result<f32, NnError> {
    if inputs.len() != labels.len() || inputs.is_empty() {
        return Err(NnError::InvalidParameter {
            name: "inputs/labels",
            reason: "must be non-empty and equal length",
        });
    }
    let mut correct = 0usize;
    for (x, &y) in inputs.iter().zip(labels) {
        if model.predict(x)? == y {
            correct += 1;
        }
    }
    Ok(correct as f32 / inputs.len() as f32)
}

/// A square confusion matrix: `counts[actual][predicted]`.
///
/// Reproduces the paper's Fig. 3(a) (LSTM on the RAVDESS-like corpus).
///
/// # Example
///
/// ```
/// use nn::metrics::ConfusionMatrix;
/// # fn main() -> Result<(), nn::NnError> {
/// let mut cm = ConfusionMatrix::new(vec!["neutral".into(), "happy".into()])?;
/// cm.record(0, 0)?;
/// cm.record(0, 1)?;
/// cm.record(1, 1)?;
/// assert!((cm.overall_accuracy() - 2.0 / 3.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    labels: Vec<String>,
    counts: Vec<Vec<u32>>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over the given class labels.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for an empty label list.
    pub fn new(labels: Vec<String>) -> Result<Self, NnError> {
        if labels.is_empty() {
            return Err(NnError::InvalidParameter {
                name: "labels",
                reason: "must be non-empty",
            });
        }
        let n = labels.len();
        Ok(Self {
            labels,
            counts: vec![vec![0; n]; n],
        })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.labels.len()
    }

    /// Class label names.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Records one `(actual, predicted)` observation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LabelOutOfRange`] when either index is out of
    /// range.
    pub fn record(&mut self, actual: usize, predicted: usize) -> Result<(), NnError> {
        let n = self.num_classes();
        for label in [actual, predicted] {
            if label >= n {
                return Err(NnError::LabelOutOfRange { label, classes: n });
            }
        }
        self.counts[actual][predicted] += 1;
        Ok(())
    }

    /// Raw count for `(actual, predicted)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LabelOutOfRange`] for out-of-range indices.
    pub fn count(&self, actual: usize, predicted: usize) -> Result<u32, NnError> {
        let n = self.num_classes();
        for label in [actual, predicted] {
            if label >= n {
                return Err(NnError::LabelOutOfRange { label, classes: n });
            }
        }
        Ok(self.counts[actual][predicted])
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u32 {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy (trace / total); `0.0` when empty.
    pub fn overall_accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let trace: u32 = (0..self.num_classes()).map(|i| self.counts[i][i]).sum();
        trace as f32 / total as f32
    }

    /// Per-class recall (`diag / row sum`); `0.0` for classes never seen.
    pub fn recall(&self) -> Vec<f32> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let total: u32 = row.iter().sum();
                if total == 0 {
                    0.0
                } else {
                    row[i] as f32 / total as f32
                }
            })
            .collect()
    }

    /// Row-normalized matrix (each row sums to 1, or stays zero when the
    /// class never occurred) — the form the paper plots.
    pub fn normalized(&self) -> Vec<Vec<f32>> {
        self.counts
            .iter()
            .map(|row| {
                let total: u32 = row.iter().sum();
                row.iter()
                    .map(|&c| {
                        if total == 0 {
                            0.0
                        } else {
                            c as f32 / total as f32
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Fills the matrix from model predictions over a labelled set.
    ///
    /// # Errors
    ///
    /// Propagates model errors and label-range errors.
    pub fn evaluate(
        &mut self,
        model: &mut Sequential,
        inputs: &[Tensor],
        labels: &[usize],
    ) -> Result<(), NnError> {
        if inputs.len() != labels.len() {
            return Err(NnError::InvalidParameter {
                name: "inputs/labels",
                reason: "must have the same length",
            });
        }
        for (x, &y) in inputs.iter().zip(labels) {
            let pred = model.predict(x)?;
            self.record(y, pred)?;
        }
        Ok(())
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .labels
            .iter()
            .map(|l| l.len())
            .max()
            .unwrap_or(4)
            .max(5);
        write!(f, "{:>width$} ", "")?;
        for l in &self.labels {
            write!(f, "{l:>width$} ")?;
        }
        writeln!(f)?;
        for (i, row) in self.normalized().iter().enumerate() {
            write!(f, "{:>width$} ", self.labels[i])?;
            for v in row {
                write!(f, "{:>width$.2} ", v)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;

    #[test]
    fn rejects_empty_labels() {
        assert!(ConfusionMatrix::new(vec![]).is_err());
    }

    #[test]
    fn record_and_count() {
        let mut cm = ConfusionMatrix::new(vec!["a".into(), "b".into()]).unwrap();
        cm.record(0, 1).unwrap();
        cm.record(0, 1).unwrap();
        assert_eq!(cm.count(0, 1).unwrap(), 2);
        assert_eq!(cm.count(1, 0).unwrap(), 0);
        assert_eq!(cm.total(), 2);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut cm = ConfusionMatrix::new(vec!["a".into()]).unwrap();
        assert!(cm.record(1, 0).is_err());
        assert!(cm.count(0, 1).is_err());
    }

    #[test]
    fn perfect_predictions_give_unit_accuracy() {
        let mut cm = ConfusionMatrix::new(vec!["a".into(), "b".into()]).unwrap();
        cm.record(0, 0).unwrap();
        cm.record(1, 1).unwrap();
        assert_eq!(cm.overall_accuracy(), 1.0);
        assert_eq!(cm.recall(), vec![1.0, 1.0]);
    }

    #[test]
    fn normalized_rows_sum_to_one() {
        let mut cm = ConfusionMatrix::new(vec!["a".into(), "b".into(), "c".into()]).unwrap();
        for (a, p) in [(0, 0), (0, 1), (0, 2), (1, 1), (2, 0)] {
            cm.record(a, p).unwrap();
        }
        for row in cm.normalized() {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_matrix_has_zero_accuracy() {
        let cm = ConfusionMatrix::new(vec!["a".into()]).unwrap();
        assert_eq!(cm.overall_accuracy(), 0.0);
        assert_eq!(cm.recall(), vec![0.0]);
    }

    #[test]
    fn display_includes_labels() {
        let mut cm = ConfusionMatrix::new(vec!["happy".into(), "sad".into()]).unwrap();
        cm.record(0, 0).unwrap();
        let s = cm.to_string();
        assert!(s.contains("happy") && s.contains("sad"));
    }

    #[test]
    fn accuracy_validates_inputs() {
        let mut m = Sequential::new();
        m.push(Dense::new(2, 2, 0).unwrap());
        assert!(accuracy(&mut m, &[], &[]).is_err());
    }

    #[test]
    fn evaluate_fills_matrix() {
        let mut m = Sequential::new();
        m.push(Dense::new(2, 2, 1).unwrap());
        let xs = vec![
            Tensor::from_vec(vec![1.0, 0.0], &[2]).unwrap(),
            Tensor::from_vec(vec![0.0, 1.0], &[2]).unwrap(),
        ];
        let ys = vec![0, 1];
        let mut cm = ConfusionMatrix::new(vec!["a".into(), "b".into()]).unwrap();
        cm.evaluate(&mut m, &xs, &ys).unwrap();
        assert_eq!(cm.total(), 2);
    }
}
