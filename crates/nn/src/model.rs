//! Sequential model composition.

use crate::layers::{Layer, Param};
use crate::loss::{cross_entropy, softmax, softmax_in_place};
use crate::quant::Precision;
use crate::scratch::{Scratch, Shape};
use crate::{NnError, Tensor};

/// A stack of layers applied in order.
///
/// # Example
///
/// ```
/// use nn::layers::{Activation, Dense};
/// use nn::{Sequential, Tensor};
/// # fn main() -> Result<(), nn::NnError> {
/// let mut model = Sequential::new();
/// model.push(Dense::new(4, 8, 1)?);
/// model.push(Activation::relu());
/// model.push(Dense::new(8, 3, 2)?);
/// let logits = model.forward(&Tensor::zeros(&[4])?, false)?;
/// assert_eq!(logits.shape(), &[3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    precision: Precision,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer to the stack.
    ///
    /// The new layer joins at the model's current [`Sequential::precision`]
    /// so late pushes cannot silently mix numeric paths.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        let mut boxed: Box<dyn Layer> = Box::new(layer);
        if self.precision != Precision::F32 {
            // Freshly constructed layers are f32; mirror the model setting.
            // Snapshotting a just-built layer cannot fail.
            let _ = boxed.set_precision(self.precision);
        }
        self.layers.push(boxed);
    }

    /// Switches the inference precision of the scratch path
    /// ([`Sequential::forward_with`] / [`Sequential::predict_proba_with`]).
    ///
    /// [`Precision::Int8`] makes every weighted layer snapshot a per-tensor
    /// int8 copy of its weights and run `i8×i8→i32` dot products with one
    /// f32 rescale per output; [`Precision::F32`] drops the snapshots and
    /// restores the bit-exact float path. Training and the tensor-path
    /// `forward` always run in f32 — re-call this after `fit`/optimizer
    /// steps to refresh stale snapshots.
    ///
    /// # Errors
    ///
    /// Propagates layer errors; on error the model is left in f32.
    pub fn set_precision(&mut self, precision: Precision) -> Result<(), NnError> {
        for layer in &mut self.layers {
            if let Err(e) = layer.set_precision(precision) {
                for l in &mut self.layers {
                    let _ = l.set_precision(Precision::F32);
                }
                self.precision = Precision::F32;
                return Err(e);
            }
        }
        self.precision = precision;
        Ok(())
    }

    /// Current inference precision of the scratch path.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Runs the full forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidState`] for an empty model and propagates
    /// layer shape errors.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidState("model has no layers"));
        }
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train)?;
        }
        Ok(x)
    }

    /// Inference-only forward pass that reuses buffers from `scratch`
    /// instead of allocating per layer. Returns the output shape and a view
    /// of the output living inside the workspace; the data stays valid in
    /// [`Scratch::out`] until the next scratch-based call.
    ///
    /// Results are bit-for-bit identical to [`Sequential::forward`] in
    /// inference mode. After a few warm-up calls on a fixed architecture the
    /// pass performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidState`] for an empty model and propagates
    /// layer shape errors.
    pub fn forward_with<'s>(
        &mut self,
        input: &[f32],
        shape: &[usize],
        scratch: &'s mut Scratch,
    ) -> Result<(Shape, &'s [f32]), NnError> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidState("model has no layers"));
        }
        let mut s = Shape::from_slice(shape)?;
        if s.len() != input.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} elements for shape {shape:?}", s.len()),
                actual: vec![input.len()],
            });
        }
        let mut cur = scratch.acquire(input.len());
        cur.copy_from_slice(input);
        let mut next = scratch.acquire(0);
        let mut result = Ok(());
        for layer in &mut self.layers {
            match layer.forward_scratch(&cur, s, &mut next, scratch) {
                Ok(out_shape) => s = out_shape,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        scratch.release(next);
        match result {
            Ok(()) => Ok((s, scratch.install_out(cur))),
            Err(e) => {
                scratch.release(cur);
                Err(e)
            }
        }
    }

    /// Class probabilities via the scratch path: [`Sequential::forward_with`]
    /// followed by an in-place softmax. Bit-for-bit identical to
    /// [`Sequential::predict_proba`], without its per-call allocations.
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn predict_proba_with<'s>(
        &mut self,
        input: &[f32],
        shape: &[usize],
        scratch: &'s mut Scratch,
    ) -> Result<&'s [f32], NnError> {
        self.forward_with(input, shape, &mut *scratch)?;
        softmax_in_place(scratch.out_mut());
        Ok(scratch.out())
    }

    /// Back-propagates a gradient of the loss w.r.t. the model output.
    ///
    /// # Errors
    ///
    /// Propagates layer errors; in particular `backward` must follow a
    /// `forward` call.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidState("model has no layers"));
        }
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// One training step for one labelled sample: forward, softmax
    /// cross-entropy, backward. Gradients accumulate into the parameters
    /// (call an optimizer step + [`Sequential::zero_grad`] per minibatch).
    ///
    /// Returns the sample loss.
    ///
    /// # Errors
    ///
    /// Propagates forward/backward and loss errors.
    pub fn train_step(&mut self, input: &Tensor, label: usize) -> Result<f32, NnError> {
        let logits = self.forward(input, true)?;
        let (loss, grad) = cross_entropy(&logits, label)?;
        self.backward(&grad)?;
        Ok(loss)
    }

    /// Class probabilities for an input (inference mode).
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn predict_proba(&mut self, input: &Tensor) -> Result<Vec<f32>, NnError> {
        let logits = self.forward(input, false)?;
        Ok(softmax(logits.data()))
    }

    /// Most likely class index for an input (inference mode).
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn predict(&mut self, input: &Tensor) -> Result<usize, NnError> {
        let probs = self.predict_proba(input)?;
        Ok(probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    /// Mutable access to every parameter in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Read-only access to every parameter in layer order.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Zeroes every accumulated gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// One-line-per-layer summary (name and parameter count).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, l) in self.layers.iter().enumerate() {
            out.push_str(&format!(
                "{i:>2}  {:<10} params={}\n",
                l.name(),
                l.param_count()
            ));
        }
        out.push_str(&format!("total params: {}\n", self.param_count()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Dense, Flatten, Lstm};

    fn tiny_model() -> Sequential {
        let mut m = Sequential::new();
        m.push(Dense::new(3, 4, 1).unwrap());
        m.push(Activation::tanh());
        m.push(Dense::new(4, 2, 2).unwrap());
        m
    }

    #[test]
    fn empty_model_errors() {
        let mut m = Sequential::new();
        assert!(m.forward(&Tensor::zeros(&[1]).unwrap(), false).is_err());
        assert!(m.backward(&Tensor::zeros(&[1]).unwrap()).is_err());
        assert!(m.is_empty());
    }

    #[test]
    fn forward_chains_layers() {
        let mut m = tiny_model();
        let y = m.forward(&Tensor::zeros(&[3]).unwrap(), false).unwrap();
        assert_eq!(y.shape(), &[2]);
    }

    #[test]
    fn predict_proba_is_distribution() {
        let mut m = tiny_model();
        let p = m.predict_proba(&Tensor::zeros(&[3]).unwrap()).unwrap();
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn train_step_reduces_loss() {
        let mut m = tiny_model();
        let x = Tensor::from_vec(vec![0.5, -0.5, 1.0], &[3]).unwrap();
        let mut last = f32::INFINITY;
        for _ in 0..50 {
            let loss = m.train_step(&x, 1).unwrap();
            // Manual SGD step.
            for p in m.params_mut() {
                let grads: Vec<f32> = p.grad.data().to_vec();
                for (v, g) in p.value.data_mut().iter_mut().zip(grads) {
                    *v -= 0.5 * g;
                }
                p.zero_grad();
            }
            last = loss;
        }
        assert!(last < 0.1, "loss did not converge: {last}");
        assert_eq!(m.predict(&x).unwrap(), 1);
    }

    #[test]
    fn param_count_sums_layers() {
        let m = tiny_model();
        assert_eq!(m.param_count(), (3 * 4 + 4) + (4 * 2 + 2));
    }

    #[test]
    fn mixed_sequence_model_shapes() {
        // LSTM(seq) -> LSTM(last) -> Dense, like the paper's classifier.
        let mut m = Sequential::new();
        m.push(Lstm::new(6, 8, true, 1).unwrap());
        m.push(Lstm::new(8, 8, false, 2).unwrap());
        m.push(Dense::new(8, 5, 3).unwrap());
        let y = m.forward(&Tensor::zeros(&[12, 6]).unwrap(), false).unwrap();
        assert_eq!(y.shape(), &[5]);
    }

    #[test]
    fn forward_with_matches_forward_bitwise() {
        let mut m = tiny_model();
        let x = Tensor::from_vec(vec![0.5, -0.5, 1.0], &[3]).unwrap();
        let expected = m.forward(&x, false).unwrap();
        let probs_expected = m.predict_proba(&x).unwrap();
        let mut scratch = Scratch::new();
        for _ in 0..3 {
            let (shape, out) = m.forward_with(x.data(), x.shape(), &mut scratch).unwrap();
            assert_eq!(shape.as_slice(), expected.shape());
            assert_eq!(out, expected.data());
        }
        let probs = m
            .predict_proba_with(x.data(), x.shape(), &mut scratch)
            .unwrap();
        assert_eq!(probs, probs_expected.as_slice());
    }

    #[test]
    fn forward_with_matches_on_sequence_model() {
        let mut m = Sequential::new();
        m.push(Lstm::new(6, 8, true, 1).unwrap());
        m.push(Lstm::new(8, 8, false, 2).unwrap());
        m.push(Dense::new(8, 5, 3).unwrap());
        let x =
            Tensor::from_vec((0..72).map(|i| (i as f32 * 0.13).sin()).collect(), &[12, 6]).unwrap();
        let expected = m.forward(&x, false).unwrap();
        let mut scratch = Scratch::new();
        let (shape, out) = m.forward_with(x.data(), x.shape(), &mut scratch).unwrap();
        assert_eq!(shape.as_slice(), expected.shape());
        assert_eq!(out, expected.data());
    }

    #[test]
    fn set_precision_switches_scratch_path_and_back() {
        use crate::quant::Precision;
        let mut m = tiny_model();
        let x = [0.5f32, -0.5, 1.0];
        let mut scratch = Scratch::new();
        let f32_out = {
            let (_, out) = m.forward_with(&x, &[3], &mut scratch).unwrap();
            out.to_vec()
        };
        m.set_precision(Precision::Int8).unwrap();
        assert_eq!(m.precision(), Precision::Int8);
        let i8_out = {
            let (_, out) = m.forward_with(&x, &[3], &mut scratch).unwrap();
            out.to_vec()
        };
        for (a, b) in f32_out.iter().zip(&i8_out) {
            assert!((a - b).abs() < 0.1, "{a} vs {b}");
        }
        m.set_precision(Precision::F32).unwrap();
        let (_, back) = m.forward_with(&x, &[3], &mut scratch).unwrap();
        assert_eq!(back, f32_out.as_slice());
    }

    #[test]
    fn push_after_set_precision_quantizes_new_layer() {
        use crate::quant::Precision;
        let mut m = Sequential::new();
        m.push(Dense::new(3, 4, 1).unwrap());
        m.set_precision(Precision::Int8).unwrap();
        m.push(Dense::new(4, 2, 2).unwrap());
        // A reference model quantized after both pushes must agree exactly:
        // both snapshots come from identical (untrained) weights.
        let mut r = Sequential::new();
        r.push(Dense::new(3, 4, 1).unwrap());
        r.push(Dense::new(4, 2, 2).unwrap());
        r.set_precision(Precision::Int8).unwrap();
        let x = [0.5f32, -0.5, 1.0];
        let mut scratch = Scratch::new();
        let a = m.forward_with(&x, &[3], &mut scratch).unwrap().1.to_vec();
        let b = r.forward_with(&x, &[3], &mut scratch).unwrap().1.to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn forward_with_rejects_bad_input() {
        let mut m = tiny_model();
        let mut scratch = Scratch::new();
        assert!(m.forward_with(&[0.0; 2], &[3], &mut scratch).is_err());
        assert!(m.forward_with(&[0.0; 4], &[4], &mut scratch).is_err());
        let mut empty = Sequential::new();
        assert!(empty.forward_with(&[0.0], &[1], &mut scratch).is_err());
    }

    #[test]
    fn summary_mentions_layers() {
        let mut m = tiny_model();
        m.push(Flatten::new());
        let s = m.summary();
        assert!(s.contains("dense") && s.contains("tanh") && s.contains("total params"));
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut m = tiny_model();
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]).unwrap();
        m.train_step(&x, 0).unwrap();
        assert!(m.params().iter().any(|p| p.grad.norm() > 0.0));
        m.zero_grad();
        assert!(m.params().iter().all(|p| p.grad.norm() == 0.0));
    }
}
