//! Post-training 8-bit weight quantization.
//!
//! The paper's Fig. 3(c)/(d) compare the weight footprint and accuracy of the
//! three classifiers in float32 versus 8-bit quantization, reporting under 3%
//! accuracy loss. This module implements per-tensor *symmetric affine* int8
//! quantization (`w ≈ scale · q`, `q ∈ [-127, 127]`): weights are snapshotted
//! to int8 and inference runs on the dequantized values, so the accuracy
//! impact of the rounding is exactly what an int8 deployment would see.

use crate::kernels;
use crate::model::Sequential;
use crate::{NnError, Tensor};

/// Numeric precision of the scratch-path forward pass.
///
/// [`crate::Sequential::set_precision`] switches every weighted layer
/// (`Dense`, `Conv1d`, `Lstm`) between the float path and the fully
/// quantized int8 path; parameter-free layers (activations, pooling,
/// flatten) always operate on the f32 activations between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full float32 inference (the default).
    #[default]
    F32,
    /// Fully quantized int8 inference: weights snapshotted per-tensor
    /// symmetric (`scale = max|w| / 127`), activations quantized per
    /// vector on the fly, every multiply-accumulate in i8×i8→i32 via
    /// [`kernels::dot_i8`].
    Int8,
}

impl Precision {
    /// Short lowercase label (`"f32"` / `"i8"`), used in bench tables and
    /// metric labels.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "i8",
        }
    }
}

/// An int8-quantized tensor with its per-tensor scale.
///
/// # Example
///
/// ```
/// use nn::quant::QuantizedTensor;
/// use nn::Tensor;
/// # fn main() -> Result<(), nn::NnError> {
/// let t = Tensor::from_vec(vec![-1.0, 0.5, 1.0], &[3])?;
/// let q = QuantizedTensor::quantize(&t);
/// let back = q.dequantize()?;
/// for (a, b) in t.data().iter().zip(back.data()) {
///     assert!((a - b).abs() <= q.scale());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    values: Vec<i8>,
    scale: f32,
    shape: Vec<usize>,
}

impl QuantizedTensor {
    /// Quantizes a float tensor with per-tensor symmetric scaling
    /// (`scale = max|w| / 127`). An all-zero tensor quantizes to scale 1.0
    /// with all-zero values.
    pub fn quantize(tensor: &Tensor) -> Self {
        let max_abs = tensor.data().iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        let values = tensor
            .data()
            .iter()
            .map(|&w| (w / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Self {
            values,
            scale,
            shape: tensor.shape().to_vec(),
        }
    }

    /// Reconstructs the float tensor (`scale · q`).
    ///
    /// # Errors
    ///
    /// Returns a shape error only if the internal state was corrupted
    /// (cannot happen through the public API).
    pub fn dequantize(&self) -> Result<Tensor, NnError> {
        Tensor::from_vec(
            self.values
                .iter()
                .map(|&q| f32::from(q) * self.scale)
                .collect(),
            &self.shape,
        )
    }

    /// The per-tensor scale factor.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The raw int8 values.
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// Fully quantized matrix–vector product for a 2-D `[m, n]` quantized
    /// weight tensor and an int8 activation vector: every multiply-accumulate
    /// runs in i8×i8→i32 via the fused [`kernels::dot_i8`] kernel, and only
    /// the final per-row accumulator is rescaled to float
    /// (`out[r] = w_scale · x_scale · Σ qw[r,j] · qx[j]`). Writes into a
    /// caller-provided buffer, allocation-free once it has capacity.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the tensor is not 2-D or the
    /// activation length differs from `n`.
    pub fn matvec_i8_into(
        &self,
        x: &[i8],
        x_scale: f32,
        out: &mut Vec<f32>,
    ) -> Result<(), NnError> {
        if self.shape.len() != 2 || self.shape[1] != x.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("[m, {}] quantized matrix", x.len()),
                actual: self.shape.clone(),
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let combined = self.scale * x_scale;
        out.clear();
        out.resize(m, 0.0);
        for (r, yr) in out.iter_mut().enumerate() {
            *yr = kernels::dot_i8(&self.values[r * n..r * n + n], x) as f32 * combined;
        }
        Ok(())
    }

    /// Storage footprint in bytes: one byte per value plus the 4-byte scale.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() + std::mem::size_of::<f32>()
    }

    /// Largest absolute reconstruction error over all elements.
    pub fn max_error(&self, original: &Tensor) -> Result<f32, NnError> {
        let deq = self.dequantize()?;
        if original.shape() != deq.shape() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{:?}", deq.shape()),
                actual: original.shape().to_vec(),
            });
        }
        Ok(original
            .data()
            .iter()
            .zip(deq.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }
}

/// Report produced by [`quantize_weights_in_place`]: the Fig. 3(c) numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantReport {
    /// Number of quantized parameter tensors.
    pub tensors: usize,
    /// Total trainable scalars.
    pub params: usize,
    /// float32 weight footprint in bytes.
    pub float_bytes: usize,
    /// int8 weight footprint in bytes (values + per-tensor scales).
    pub int8_bytes: usize,
}

impl QuantReport {
    /// Compression ratio (float bytes / int8 bytes); `0.0` for an empty
    /// model.
    pub fn compression_ratio(&self) -> f32 {
        if self.int8_bytes == 0 {
            0.0
        } else {
            self.float_bytes as f32 / self.int8_bytes as f32
        }
    }
}

/// Quantizes every parameter of `model` to int8 and writes the *dequantized*
/// values back in place, so subsequent inference reflects int8 rounding.
/// Returns the storage accounting.
///
/// # Errors
///
/// Propagates tensor shape errors (cannot occur for well-formed models).
///
/// # Example
///
/// ```
/// use nn::layers::Dense;
/// use nn::quant::quantize_weights_in_place;
/// use nn::Sequential;
/// # fn main() -> Result<(), nn::NnError> {
/// let mut model = Sequential::new();
/// model.push(Dense::new(10, 4, 1)?);
/// let report = quantize_weights_in_place(&mut model)?;
/// assert_eq!(report.params, 44);
/// assert!(report.compression_ratio() > 3.0);
/// # Ok(())
/// # }
/// ```
pub fn quantize_weights_in_place(model: &mut Sequential) -> Result<QuantReport, NnError> {
    let mut report = QuantReport::default();
    for param in model.params_mut() {
        let q = QuantizedTensor::quantize(&param.value);
        report.tensors += 1;
        report.params += param.value.len();
        report.float_bytes += param.value.len() * std::mem::size_of::<f32>();
        report.int8_bytes += q.storage_bytes();
        param.value = q.dequantize()?;
    }
    Ok(report)
}

/// Quantizes an activation vector symmetrically into a caller-provided int8
/// buffer (resized to `x.len()`), returning the per-vector scale.
/// Allocation-free once the buffer has capacity — the runtime counterpart of
/// [`QuantizedTensor::quantize`] for the fully quantized inference path.
pub fn quantize_activations_into(x: &[f32], out: &mut Vec<i8>) -> f32 {
    let max_abs = x.iter().fold(0.0f32, |a, &b| a.max(b.abs()));
    let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
    out.clear();
    out.extend(
        x.iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8),
    );
    scale
}

/// float32 weight footprint in bytes for a given parameter count.
pub fn float_weight_bytes(params: usize) -> usize {
    params * std::mem::size_of::<f32>()
}

/// int8 weight footprint in bytes for `params` scalars split across
/// `tensors` parameter tensors (each tensor stores one 4-byte scale).
pub fn int8_weight_bytes(params: usize, tensors: usize) -> usize {
    params + tensors * std::mem::size_of::<f32>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Dense};

    #[test]
    fn quantize_bounds_error_by_scale() {
        let t = Tensor::from_vec(vec![0.013, -0.97, 0.5, 0.0001, -0.2], &[5]).unwrap();
        let q = QuantizedTensor::quantize(&t);
        assert!(q.max_error(&t).unwrap() <= q.scale() / 2.0 + 1e-7);
    }

    #[test]
    fn zero_tensor_round_trips_exactly() {
        let t = Tensor::zeros(&[7]).unwrap();
        let q = QuantizedTensor::quantize(&t);
        assert_eq!(q.dequantize().unwrap().data(), t.data());
    }

    #[test]
    fn extreme_values_clamped() {
        let t = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let q = QuantizedTensor::quantize(&t);
        assert_eq!(q.values(), &[127, -127]);
    }

    #[test]
    fn storage_is_quarter_plus_scale() {
        let t = Tensor::zeros(&[100]).unwrap();
        let q = QuantizedTensor::quantize(&t);
        assert_eq!(q.storage_bytes(), 104);
    }

    #[test]
    fn in_place_quantization_reports_sizes() {
        let mut m = Sequential::new();
        m.push(Dense::new(8, 4, 1).unwrap());
        m.push(Activation::relu());
        m.push(Dense::new(4, 2, 2).unwrap());
        let report = quantize_weights_in_place(&mut m).unwrap();
        assert_eq!(report.tensors, 4); // two weight + two bias tensors
        assert_eq!(report.params, (8 * 4 + 4) + (4 * 2 + 2));
        assert_eq!(report.float_bytes, report.params * 4);
        assert_eq!(report.int8_bytes, report.params + 4 * 4);
        // Tiny model: per-tensor scale overhead keeps the ratio below the
        // asymptotic 4×.
        assert!(report.compression_ratio() > 2.5);
    }

    #[test]
    fn quantized_model_stays_close_in_output() {
        let mut m = Sequential::new();
        m.push(Dense::new(6, 12, 3).unwrap());
        m.push(Activation::tanh());
        m.push(Dense::new(12, 4, 4).unwrap());
        let x = Tensor::from_vec((0..6).map(|i| (i as f32 * 0.7).sin()).collect(), &[6]).unwrap();
        let before = m.forward(&x, false).unwrap();
        quantize_weights_in_place(&mut m).unwrap();
        let after = m.forward(&x, false).unwrap();
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn fused_i8_matvec_tracks_float_matvec() {
        let w = Tensor::from_vec(
            (0..48).map(|i| (i as f32 * 0.37).sin() * 0.8).collect(),
            &[6, 8],
        )
        .unwrap();
        let x: Vec<f32> = (0..8).map(|i| (i as f32 * 0.91).cos() * 1.5).collect();
        let qw = QuantizedTensor::quantize(&w);
        let mut qx = Vec::new();
        let x_scale = quantize_activations_into(&x, &mut qx);
        let mut fused = Vec::new();
        qw.matvec_i8_into(&qx, x_scale, &mut fused).unwrap();
        let float = w.matvec(&x).unwrap();
        // Per-element error is bounded by the two quantization steps; the
        // accumulation itself is exact in i32.
        let bound = 8.0 * (qw.scale() * 1.5 + x_scale * 0.8 + qw.scale() * x_scale);
        for (f, q) in float.iter().zip(&fused) {
            assert!((f - q).abs() <= bound, "{f} vs {q} (bound {bound})");
        }
    }

    #[test]
    fn fused_i8_matvec_shape_checked() {
        let w = Tensor::zeros(&[2, 3]).unwrap();
        let qw = QuantizedTensor::quantize(&w);
        let mut out = Vec::new();
        assert!(qw.matvec_i8_into(&[1, 2], 1.0, &mut out).is_err());
        let flat = QuantizedTensor::quantize(&Tensor::zeros(&[6]).unwrap());
        assert!(flat.matvec_i8_into(&[1; 6], 1.0, &mut out).is_err());
    }

    #[test]
    fn activation_quantization_round_trips_within_scale() {
        let x = vec![0.4f32, -1.2, 0.0, 0.77];
        let mut q = Vec::new();
        let scale = quantize_activations_into(&x, &mut q);
        for (orig, &qi) in x.iter().zip(&q) {
            assert!((orig - f32::from(qi) * scale).abs() <= scale / 2.0 + 1e-7);
        }
        let mut qz = Vec::new();
        assert_eq!(quantize_activations_into(&[0.0; 3], &mut qz), 1.0);
        assert_eq!(qz, vec![0, 0, 0]);
    }

    #[test]
    fn size_helpers_consistent() {
        assert_eq!(float_weight_bytes(1000), 4000);
        assert_eq!(int8_weight_bytes(1000, 6), 1024);
    }
}
