//! A minimal dense tensor.
//!
//! Row-major, `f32`, one to three dimensions — exactly what the classifier
//! layers need. Operations validate shapes and return [`NnError`] instead of
//! panicking so a malformed pipeline fails loudly but recoverably.

use crate::kernels;
use crate::NnError;

/// A dense row-major tensor of `f32` values.
///
/// # Example
///
/// ```
/// use nn::Tensor;
/// # fn main() -> Result<(), nn::NnError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.at2(1, 2)?, 6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor with the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for an empty shape or any
    /// zero-length dimension.
    pub fn zeros(shape: &[usize]) -> Result<Self, NnError> {
        Self::validate_shape(shape)?;
        Ok(Self {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        })
    }

    /// Wraps an existing buffer as a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the buffer length does not
    /// equal the product of dimensions, or [`NnError::InvalidParameter`] for
    /// an invalid shape.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, NnError> {
        Self::validate_shape(shape)?;
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(NnError::ShapeMismatch {
                expected: format!("{expected} elements for shape {shape:?}"),
                actual: vec![data.len()],
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    fn validate_shape(shape: &[usize]) -> Result<(), NnError> {
        if shape.is_empty() {
            return Err(NnError::InvalidParameter {
                name: "shape",
                reason: "must have at least one dimension",
            });
        }
        if shape.contains(&0) {
            return Err(NnError::InvalidParameter {
                name: "shape",
                reason: "dimensions must be non-zero",
            });
        }
        Ok(())
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements (never, for tensors
    /// built via the validated constructors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(row, col)` of a 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the tensor is not 2-D or the
    /// index is out of bounds.
    pub fn at2(&self, row: usize, col: usize) -> Result<f32, NnError> {
        if self.shape.len() != 2 || row >= self.shape[0] || col >= self.shape[1] {
            return Err(NnError::ShapeMismatch {
                expected: format!("2-d index ({row}, {col}) in bounds"),
                actual: self.shape.clone(),
            });
        }
        Ok(self.data[row * self.shape[1] + col])
    }

    /// Reshapes in place without moving data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the element count differs.
    pub fn reshape(&mut self, shape: &[usize]) -> Result<(), NnError> {
        Self::validate_shape(shape)?;
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} elements", self.data.len()),
                actual: shape.to_vec(),
            });
        }
        self.shape = shape.to_vec();
        Ok(())
    }

    /// Returns a flattened (1-D) copy of this tensor.
    pub fn to_flat(&self) -> Tensor {
        Tensor {
            shape: vec![self.data.len()],
            data: self.data.clone(),
        }
    }

    /// Matrix–vector product `self @ v` for a 2-D tensor `[m, n]` and a
    /// vector of length `n`; returns a vector of length `m`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on rank or size mismatch.
    pub fn matvec(&self, v: &[f32]) -> Result<Vec<f32>, NnError> {
        let mut out = Vec::new();
        self.matvec_into(v, &mut out)?;
        Ok(out)
    }

    /// [`Tensor::matvec`] writing into a caller-provided buffer (resized to
    /// `m`), allocation-free once the buffer has capacity. Results are
    /// bit-for-bit identical to `matvec`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on rank or size mismatch.
    pub fn matvec_into(&self, v: &[f32], out: &mut Vec<f32>) -> Result<(), NnError> {
        if self.shape.len() != 2 || self.shape[1] != v.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("[m, {}] matrix", v.len()),
                actual: self.shape.clone(),
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        out.clear();
        out.resize(m, 0.0);
        kernels::gemv(&self.data, m, n, v, out);
        Ok(())
    }

    /// Transposed matrix–vector product `selfᵀ @ v` for a 2-D tensor
    /// `[m, n]` and a vector of length `m`; returns a vector of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on rank or size mismatch.
    pub fn matvec_t(&self, v: &[f32]) -> Result<Vec<f32>, NnError> {
        let mut out = Vec::new();
        self.matvec_t_into(v, &mut out)?;
        Ok(out)
    }

    /// [`Tensor::matvec_t`] writing into a caller-provided buffer (resized
    /// to `n`), allocation-free once the buffer has capacity. Results are
    /// bit-for-bit identical to `matvec_t`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on rank or size mismatch.
    pub fn matvec_t_into(&self, v: &[f32], out: &mut Vec<f32>) -> Result<(), NnError> {
        if self.shape.len() != 2 || self.shape[0] != v.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("[{}, n] matrix", v.len()),
                actual: self.shape.clone(),
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        out.clear();
        out.resize(n, 0.0);
        kernels::gemv_t(&self.data, m, n, v, out);
        Ok(())
    }

    /// Elementwise in-place addition.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn add_assign(&mut self, rhs: &Tensor) -> Result<(), NnError> {
        if self.shape != rhs.shape {
            return Err(NnError::ShapeMismatch {
                expected: format!("{:?}", self.shape),
                actual: rhs.shape.clone(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        Ok(())
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale(&mut self, scale: f32) {
        for x in &mut self.data {
            *x *= scale;
        }
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_len() {
        let t = Tensor::zeros(&[3, 4]).unwrap();
        assert_eq!(t.len(), 12);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Tensor::zeros(&[]).is_err());
        assert!(Tensor::zeros(&[3, 0]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn at2_bounds_checked() {
        let t = Tensor::zeros(&[2, 2]).unwrap();
        assert!(t.at2(2, 0).is_err());
        assert!(t.at2(0, 2).is_err());
        let flat = Tensor::zeros(&[4]).unwrap();
        assert!(flat.at2(0, 0).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        t.reshape(&[2, 2]).unwrap();
        assert_eq!(t.at2(1, 0).unwrap(), 3.0);
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn matvec_identity() {
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(eye.matvec(&[3.0, 7.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn matvec_known_product() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![6.0, 15.0]);
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        // mᵀ is [[1,4],[2,5],[3,6]]; mᵀ @ [1, 2] = [9, 12, 15].
        assert_eq!(m.matvec_t(&[1.0, 2.0]).unwrap(), vec![9.0, 12.0, 15.0]);
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let m =
            Tensor::from_vec((0..35).map(|i| (i as f32 * 0.31).sin()).collect(), &[5, 7]).unwrap();
        let v: Vec<f32> = (0..7).map(|i| (i as f32 * 0.77).cos()).collect();
        let mut out = Vec::new();
        m.matvec_into(&v, &mut out).unwrap();
        assert_eq!(out, m.matvec(&v).unwrap());
        let vt: Vec<f32> = (0..5).map(|i| (i as f32 * 0.53).cos()).collect();
        m.matvec_t_into(&vt, &mut out).unwrap();
        assert_eq!(out, m.matvec_t(&vt).unwrap());
    }

    #[test]
    fn matvec_shape_errors() {
        let m = Tensor::zeros(&[2, 3]).unwrap();
        assert!(m.matvec(&[1.0, 2.0]).is_err());
        assert!(m.matvec_t(&[1.0, 2.0, 3.0]).is_err());
        let flat = Tensor::zeros(&[6]).unwrap();
        assert!(flat.matvec(&[1.0; 6]).is_err());
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        a.add_assign(&b).unwrap();
        assert_eq!(a.data(), &[4.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[2.0, 3.0]);
        let wrong = Tensor::zeros(&[3]).unwrap();
        assert!(a.add_assign(&wrong).is_err());
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }

    #[test]
    fn norm_of_3_4_is_5() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert!((t.norm() - 5.0).abs() < 1e-6);
    }
}
