//! Trainable parameter: a value tensor paired with its gradient accumulator.

use crate::{NnError, Tensor};

/// A trainable parameter tensor with an accumulated gradient of the same
/// shape.
///
/// # Example
///
/// ```
/// use nn::layers::Param;
/// use nn::Tensor;
/// # fn main() -> Result<(), nn::NnError> {
/// let mut p = Param::new(Tensor::zeros(&[2, 2])?);
/// assert_eq!(p.grad.data(), &[0.0; 4]);
/// p.grad.data_mut()[0] = 1.0;
/// p.zero_grad();
/// assert_eq!(p.grad.data(), &[0.0; 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape()).expect("value tensor has a valid shape");
        Self { value, grad }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }

    /// Accumulates `delta` into the gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn accumulate(&mut self, delta: &Tensor) -> Result<(), NnError> {
        self.grad.add_assign(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
        assert_eq!(p.value.data(), &[1.0, 2.0]);
    }

    #[test]
    fn accumulate_adds() {
        let mut p = Param::new(Tensor::zeros(&[2]).unwrap());
        let d = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        p.accumulate(&d).unwrap();
        p.accumulate(&d).unwrap();
        assert_eq!(p.grad.data(), &[1.0, -1.0]);
    }

    #[test]
    fn accumulate_rejects_shape_mismatch() {
        let mut p = Param::new(Tensor::zeros(&[2]).unwrap());
        let d = Tensor::zeros(&[3]).unwrap();
        assert!(p.accumulate(&d).is_err());
    }
}
