//! Neural-network layers with hand-written backward passes.
//!
//! Every layer implements [`Layer`]: a stateful `forward` that caches what
//! the matching `backward` needs, and `params` exposing trainable parameters
//! to the optimizer. Gradients *accumulate* across `backward` calls so a
//! minibatch is processed sample-by-sample and stepped once.

mod activation;
mod conv;
mod dense;
mod dropout;
mod flatten;
mod gru;
mod lstm;
mod param;
mod pool;

pub use activation::Activation;
pub use conv::Conv1d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use gru::Gru;
pub use lstm::Lstm;
pub use param::Param;
pub use pool::MaxPool1d;

use crate::quant::Precision;
use crate::scratch::{Scratch, Shape};
use crate::{NnError, Tensor};

/// A differentiable layer.
///
/// Implementations cache forward activations internally; `backward` must be
/// called after `forward` with a gradient of the same shape as the forward
/// output, and returns the gradient with respect to the layer input.
pub trait Layer: std::fmt::Debug + Send {
    /// Computes the layer output for `input`. `train` enables train-only
    /// behaviour (dropout masks).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the input shape is
    /// incompatible with the layer configuration.
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError>;

    /// Back-propagates `grad_out` (gradient of the loss w.r.t. this layer's
    /// output) and returns the gradient w.r.t. the input. Parameter
    /// gradients are *accumulated* into the layer's [`Param`]s.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidState`] when called before `forward`, and
    /// [`NnError::ShapeMismatch`] for a wrong gradient shape.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError>;

    /// Inference-only forward pass over raw slices, writing the output into
    /// `out` and drawing any temporaries from `scratch`. Returns the output
    /// shape. Unlike [`Layer::forward`] this path caches nothing, so a
    /// subsequent `backward` is not supported — it exists so the per-window
    /// classify path can run without steady-state allocations.
    ///
    /// The default implementation falls back to the tensor path (and thus
    /// allocates); hot layers override it.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the input shape is
    /// incompatible with the layer configuration.
    fn forward_scratch(
        &mut self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        scratch: &mut Scratch,
    ) -> Result<Shape, NnError> {
        let _ = scratch;
        let x = Tensor::from_vec(input.to_vec(), shape.as_slice())?;
        let y = self.forward(&x, false)?;
        let out_shape = Shape::from_slice(y.shape())?;
        out.clear();
        out.extend_from_slice(y.data());
        Ok(out_shape)
    }

    /// Switches the numeric precision of [`Layer::forward_scratch`].
    /// Weighted layers (`Dense`, `Conv1d`, `Lstm`) snapshot per-tensor
    /// int8 copies of their weights on [`Precision::Int8`] (and drop them
    /// on [`Precision::F32`]); the snapshot reflects the weights at call
    /// time, so re-call after mutating parameters. Parameter-free layers
    /// ignore the call — activations between quantized layers stay f32.
    /// The tensor-path `forward`/`backward` always run in f32.
    ///
    /// # Errors
    ///
    /// The default implementation is infallible; implementations may
    /// propagate shape errors from weight snapshotting.
    fn set_precision(&mut self, precision: Precision) -> Result<(), NnError> {
        let _ = precision;
        Ok(())
    }

    /// Mutable access to the trainable parameters (empty for stateless
    /// layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Read-only access to the trainable parameters.
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Number of trainable scalars in this layer.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.value.len()).sum()
    }

    /// Short layer name for summaries (`"dense"`, `"lstm"`, …).
    fn name(&self) -> &'static str;
}
