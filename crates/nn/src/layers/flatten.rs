//! Flatten layer: reshapes any tensor to 1-D.

use crate::layers::Layer;
use crate::scratch::{Scratch, Shape};
use crate::{NnError, Tensor};

/// Flattens its input to a 1-D tensor; the backward pass restores the
/// original shape.
///
/// # Example
///
/// ```
/// use nn::layers::{Flatten, Layer};
/// use nn::Tensor;
/// # fn main() -> Result<(), nn::NnError> {
/// let mut f = Flatten::new();
/// let y = f.forward(&Tensor::zeros(&[2, 3])?, false)?;
/// assert_eq!(y.shape(), &[6]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor, NnError> {
        self.input_shape = Some(input.shape().to_vec());
        Ok(input.to_flat())
    }

    fn forward_scratch(
        &mut self,
        input: &[f32],
        _shape: Shape,
        out: &mut Vec<f32>,
        _scratch: &mut Scratch,
    ) -> Result<Shape, NnError> {
        out.clear();
        out.extend_from_slice(input);
        Ok(Shape::d1(input.len()))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let shape = self
            .input_shape
            .as_ref()
            .ok_or(NnError::InvalidState("flatten backward before forward"))?;
        let expected: usize = shape.iter().product();
        if grad_out.len() != expected {
            return Err(NnError::ShapeMismatch {
                expected: format!("{expected} elements"),
                actual: grad_out.shape().to_vec(),
            });
        }
        Tensor::from_vec(grad_out.data().to_vec(), shape)
    }

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_shape() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let y = f.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[6]);
        let dx = f.backward(&y).unwrap();
        assert_eq!(dx.shape(), &[2, 3]);
        assert_eq!(dx.data(), x.data());
    }

    #[test]
    fn backward_before_forward_fails() {
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::zeros(&[4]).unwrap()).is_err());
    }

    #[test]
    fn backward_rejects_wrong_count() {
        let mut f = Flatten::new();
        f.forward(&Tensor::zeros(&[2, 2]).unwrap(), false).unwrap();
        assert!(f.backward(&Tensor::zeros(&[5]).unwrap()).is_err());
    }
}
