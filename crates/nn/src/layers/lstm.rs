//! Long short-term memory layer with full backpropagation through time.

use crate::init::{seeded_rng, xavier_uniform};
use crate::kernels;
use crate::layers::{Layer, Param};
use crate::quant::{quantize_activations_into, Precision, QuantizedTensor};
use crate::scratch::{Scratch, Shape};
use crate::{NnError, Tensor};

/// Gate pre-activations/activations per time step, cached for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// A single-direction LSTM over `[time, features]` inputs.
///
/// Gate layout in the stacked weight matrices is `[input, forget, candidate,
/// output]`. With `return_sequences` the layer outputs `[time, hidden]`
/// (for stacking, as in the paper's two-layer LSTM classifier); otherwise it
/// outputs the final hidden state `[hidden]`.
///
/// # Example
///
/// ```
/// use nn::layers::{Layer, Lstm};
/// use nn::Tensor;
/// # fn main() -> Result<(), nn::NnError> {
/// let mut lstm = Lstm::new(4, 8, false, 3)?;
/// let x = Tensor::zeros(&[10, 4])?; // 10 time steps of 4 features
/// let h = lstm.forward(&x, false)?;
/// assert_eq!(h.shape(), &[8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Lstm {
    wx: Param,   // [4H, F]
    wh: Param,   // [4H, H]
    bias: Param, // [4H]
    /// Int8 snapshots of `wx`/`wh`; present iff the layer runs the
    /// quantized scratch path (see [`Layer::set_precision`]). The gate
    /// nonlinearities and cell state stay f32.
    qwx: Option<QuantizedTensor>,
    qwh: Option<QuantizedTensor>,
    input_dim: usize,
    hidden: usize,
    return_sequences: bool,
    steps: Vec<StepCache>,
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Lstm {
    /// Creates an LSTM with `input_dim` features and `hidden` units,
    /// Xavier-initialized from `seed`. The forget-gate bias starts at 1.0
    /// (the standard trick that stabilizes early training).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] when either size is zero.
    pub fn new(
        input_dim: usize,
        hidden: usize,
        return_sequences: bool,
        seed: u64,
    ) -> Result<Self, NnError> {
        if input_dim == 0 || hidden == 0 {
            return Err(NnError::InvalidParameter {
                name: "input_dim/hidden",
                reason: "must be non-zero",
            });
        }
        let mut rng = seeded_rng(seed);
        let wx = xavier_uniform(&mut rng, input_dim, hidden, 4 * hidden * input_dim);
        let wh = xavier_uniform(&mut rng, hidden, hidden, 4 * hidden * hidden);
        let mut bias = vec![0.0f32; 4 * hidden];
        for b in bias.iter_mut().skip(hidden).take(hidden) {
            *b = 1.0; // forget gate
        }
        Ok(Self {
            wx: Param::new(Tensor::from_vec(wx, &[4 * hidden, input_dim])?),
            wh: Param::new(Tensor::from_vec(wh, &[4 * hidden, hidden])?),
            bias: Param::new(Tensor::from_vec(bias, &[4 * hidden])?),
            qwx: None,
            qwh: None,
            input_dim,
            hidden,
            return_sequences,
            steps: Vec::new(),
        })
    }

    /// Number of hidden units.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Whether the layer emits the full hidden sequence.
    pub fn return_sequences(&self) -> bool {
        self.return_sequences
    }
}

impl Layer for Lstm {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.len() != 2 || shape[1] != self.input_dim || shape[0] == 0 {
            return Err(NnError::ShapeMismatch {
                expected: format!("[t >= 1, {}]", self.input_dim),
                actual: shape.to_vec(),
            });
        }
        let (t_len, h) = (shape[0], self.hidden);
        self.steps.clear();
        self.steps.reserve(t_len);

        let mut h_prev = vec![0.0f32; h];
        let mut c_prev = vec![0.0f32; h];
        let mut seq_out = Vec::with_capacity(if self.return_sequences { t_len * h } else { 0 });

        for t in 0..t_len {
            let x = &input.data()[t * self.input_dim..(t + 1) * self.input_dim];
            // z = Wx·x + Wh·h_prev + b, laid out as [i | f | g | o].
            let mut z = self.wx.value.matvec(x)?;
            let zh = self.wh.value.matvec(&h_prev)?;
            for ((zi, &zhi), &bi) in z.iter_mut().zip(&zh).zip(self.bias.value.data()) {
                *zi += zhi + bi;
            }
            let mut i_gate = vec![0.0f32; h];
            let mut f_gate = vec![0.0f32; h];
            let mut g_gate = vec![0.0f32; h];
            let mut o_gate = vec![0.0f32; h];
            let mut c = vec![0.0f32; h];
            let mut tanh_c = vec![0.0f32; h];
            let mut h_new = vec![0.0f32; h];
            for j in 0..h {
                i_gate[j] = sigmoid(z[j]);
                f_gate[j] = sigmoid(z[h + j]);
                g_gate[j] = z[2 * h + j].tanh();
                o_gate[j] = sigmoid(z[3 * h + j]);
                c[j] = f_gate[j] * c_prev[j] + i_gate[j] * g_gate[j];
                tanh_c[j] = c[j].tanh();
                h_new[j] = o_gate[j] * tanh_c[j];
            }
            if self.return_sequences {
                seq_out.extend_from_slice(&h_new);
            }
            self.steps.push(StepCache {
                x: x.to_vec(),
                h_prev: h_prev.clone(),
                c_prev: c_prev.clone(),
                i: i_gate,
                f: f_gate,
                g: g_gate,
                o: o_gate,
                tanh_c,
            });
            h_prev = h_new;
            c_prev = c;
        }

        if self.return_sequences {
            Tensor::from_vec(seq_out, &[t_len, h])
        } else {
            Tensor::from_vec(h_prev, &[h])
        }
    }

    fn forward_scratch(
        &mut self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        scratch: &mut Scratch,
    ) -> Result<Shape, NnError> {
        let dims = shape.as_slice();
        if dims.len() != 2 || dims[1] != self.input_dim || dims[0] == 0 {
            return Err(NnError::ShapeMismatch {
                expected: format!("[t >= 1, {}]", self.input_dim),
                actual: dims.to_vec(),
            });
        }
        let (t_len, h, f_dim) = (dims[0], self.hidden, self.input_dim);
        let quantized = self.qwx.is_some();
        let mut z = scratch.acquire(4 * h);
        let mut zh = scratch.acquire(4 * h);
        let mut h_prev = scratch.acquire(h);
        let mut c_prev = scratch.acquire(h);
        // Int8 temporaries live in the separate i8 pool so they never
        // steal the f32 buffers above; the f32 path touches neither.
        let (mut qx, mut qh) = if quantized {
            (scratch.acquire_i8(f_dim), scratch.acquire_i8(h))
        } else {
            (Vec::new(), Vec::new())
        };
        out.clear();
        out.resize(if self.return_sequences { t_len * h } else { h }, 0.0);

        for t in 0..t_len {
            let x = &input[t * f_dim..(t + 1) * f_dim];
            if let (Some(qwx), Some(qwh)) = (&self.qwx, &self.qwh) {
                // Quantized gate pre-activations: x_t and h_{t-1} each
                // quantize per step (their own scale), gates accumulate
                // in i32 and rescale once per row.
                let x_scale = quantize_activations_into(x, &mut qx);
                let h_scale = quantize_activations_into(&h_prev, &mut qh);
                let cx = qwx.scale() * x_scale;
                let ch = qwh.scale() * h_scale;
                let (vx, vh) = (qwx.values(), qwh.values());
                for (r, zr) in z.iter_mut().enumerate() {
                    let dot_x = kernels::dot_i8(&vx[r * f_dim..(r + 1) * f_dim], &qx);
                    let dot_h = kernels::dot_i8(&vh[r * h..(r + 1) * h], &qh);
                    *zr = dot_x as f32 * cx + dot_h as f32 * ch;
                }
                for (zi, &bi) in z.iter_mut().zip(self.bias.value.data()) {
                    *zi += bi;
                }
            } else {
                kernels::gemv(self.wx.value.data(), 4 * h, f_dim, x, &mut z);
                kernels::gemv(self.wh.value.data(), 4 * h, h, &h_prev, &mut zh);
                for ((zi, &zhi), &bi) in z.iter_mut().zip(zh.iter()).zip(self.bias.value.data()) {
                    *zi += zhi + bi;
                }
            }
            for j in 0..h {
                let i_gate = sigmoid(z[j]);
                let f_gate = sigmoid(z[h + j]);
                let g_gate = z[2 * h + j].tanh();
                let o_gate = sigmoid(z[3 * h + j]);
                let c = f_gate * c_prev[j] + i_gate * g_gate;
                c_prev[j] = c;
                h_prev[j] = o_gate * c.tanh();
            }
            if self.return_sequences {
                out[t * h..(t + 1) * h].copy_from_slice(&h_prev);
            }
        }
        if !self.return_sequences {
            out.copy_from_slice(&h_prev);
        }
        if quantized {
            scratch.release_i8(qx);
            scratch.release_i8(qh);
        }
        scratch.release(z);
        scratch.release(zh);
        scratch.release(h_prev);
        scratch.release(c_prev);
        Ok(if self.return_sequences {
            Shape::d2(t_len, h)
        } else {
            Shape::d1(h)
        })
    }

    fn set_precision(&mut self, precision: Precision) -> Result<(), NnError> {
        match precision {
            Precision::F32 => {
                self.qwx = None;
                self.qwh = None;
            }
            Precision::Int8 => {
                self.qwx = Some(QuantizedTensor::quantize(&self.wx.value));
                self.qwh = Some(QuantizedTensor::quantize(&self.wh.value));
            }
        }
        Ok(())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        if self.steps.is_empty() {
            return Err(NnError::InvalidState("lstm backward before forward"));
        }
        let t_len = self.steps.len();
        let h = self.hidden;
        let expected: &[usize] = if self.return_sequences {
            &[t_len, h]
        } else {
            &[h]
        };
        if grad_out.shape() != expected {
            return Err(NnError::ShapeMismatch {
                expected: format!("{expected:?}"),
                actual: grad_out.shape().to_vec(),
            });
        }

        let mut dx_all = vec![0.0f32; t_len * self.input_dim];
        let mut dh_next = vec![0.0f32; h];
        let mut dc_next = vec![0.0f32; h];

        for t in (0..t_len).rev() {
            let step = &self.steps[t];
            // Gradient flowing into h_t: from the output plus from t+1.
            let mut dh = dh_next.clone();
            if self.return_sequences {
                for (j, dhj) in dh.iter_mut().enumerate() {
                    *dhj += grad_out.data()[t * h + j];
                }
            } else if t == t_len - 1 {
                for (dhj, &g) in dh.iter_mut().zip(grad_out.data()) {
                    *dhj += g;
                }
            }

            let mut dz = vec![0.0f32; 4 * h];
            let mut dc_prev = vec![0.0f32; h];
            for j in 0..h {
                let do_ = dh[j] * step.tanh_c[j];
                let mut dc = dc_next[j] + dh[j] * step.o[j] * (1.0 - step.tanh_c[j].powi(2));
                let di = dc * step.g[j];
                let df = dc * step.c_prev[j];
                let dg = dc * step.i[j];
                dc *= step.f[j];
                dc_prev[j] = dc;
                dz[j] = di * step.i[j] * (1.0 - step.i[j]);
                dz[h + j] = df * step.f[j] * (1.0 - step.f[j]);
                dz[2 * h + j] = dg * (1.0 - step.g[j].powi(2));
                dz[3 * h + j] = do_ * step.o[j] * (1.0 - step.o[j]);
            }

            // Accumulate parameter gradients: dWx += dz ⊗ x, dWh += dz ⊗ h_prev.
            {
                let dwx = self.wx.grad.data_mut();
                for (r, &dzr) in dz.iter().enumerate() {
                    let base = r * self.input_dim;
                    for (cidx, &xv) in step.x.iter().enumerate() {
                        dwx[base + cidx] += dzr * xv;
                    }
                }
            }
            {
                let dwh = self.wh.grad.data_mut();
                for (r, &dzr) in dz.iter().enumerate() {
                    let base = r * h;
                    for (cidx, &hv) in step.h_prev.iter().enumerate() {
                        dwh[base + cidx] += dzr * hv;
                    }
                }
            }
            for (db, &dzr) in self.bias.grad.data_mut().iter_mut().zip(&dz) {
                *db += dzr;
            }

            // dx_t = Wxᵀ dz; dh_prev = Whᵀ dz.
            let dx = self.wx.value.matvec_t(&dz)?;
            dx_all[t * self.input_dim..(t + 1) * self.input_dim].copy_from_slice(&dx);
            dh_next = self.wh.value.matvec_t(&dz)?;
            dc_next = dc_prev;
        }

        Tensor::from_vec(dx_all, &[t_len, self.input_dim])
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.wx, &self.wh, &self.bias]
    }

    fn name(&self) -> &'static str {
        "lstm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_sizes() {
        assert!(Lstm::new(0, 4, false, 0).is_err());
        assert!(Lstm::new(4, 0, false, 0).is_err());
    }

    #[test]
    fn output_shapes() {
        let mut last = Lstm::new(3, 5, false, 1).unwrap();
        let mut seq = Lstm::new(3, 5, true, 1).unwrap();
        let x = Tensor::zeros(&[7, 3]).unwrap();
        assert_eq!(last.forward(&x, false).unwrap().shape(), &[5]);
        assert_eq!(seq.forward(&x, false).unwrap().shape(), &[7, 5]);
    }

    #[test]
    fn rejects_wrong_feature_dim() {
        let mut l = Lstm::new(3, 5, false, 1).unwrap();
        assert!(l.forward(&Tensor::zeros(&[7, 4]).unwrap(), false).is_err());
    }

    #[test]
    fn param_count_matches_keras_formula() {
        // Keras: 4 * (H * (F + H) + H)
        let l = Lstm::new(10, 16, false, 0).unwrap();
        assert_eq!(l.param_count(), 4 * (16 * (10 + 16) + 16));
    }

    #[test]
    fn hidden_states_bounded() {
        // h = o * tanh(c) with o in (0,1) so |h| < 1.
        let mut l = Lstm::new(2, 4, true, 5).unwrap();
        let x = Tensor::from_vec(vec![10.0; 12], &[6, 2]).unwrap();
        let y = l.forward(&x, false).unwrap();
        assert!(y.data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn forward_scratch_matches_forward_bitwise() {
        for return_sequences in [false, true] {
            let mut l = Lstm::new(3, 4, return_sequences, 23).unwrap();
            let x = Tensor::from_vec((0..15).map(|i| (i as f32 * 0.29).sin()).collect(), &[5, 3])
                .unwrap();
            let y = l.forward(&x, false).unwrap();
            let mut scratch = Scratch::new();
            let mut out = Vec::new();
            let shape = l
                .forward_scratch(x.data(), Shape::d2(5, 3), &mut out, &mut scratch)
                .unwrap();
            assert_eq!(shape.as_slice(), y.shape());
            assert_eq!(out, y.data(), "seq={return_sequences}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Lstm::new(2, 3, false, 9).unwrap();
        let mut b = Lstm::new(2, 3, false, 9).unwrap();
        let x = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4], &[2, 2]).unwrap();
        assert_eq!(a.forward(&x, false).unwrap(), b.forward(&x, false).unwrap());
    }

    fn sum_forward(l: &mut Lstm, x: &Tensor) -> f32 {
        l.forward(x, true).unwrap().data().iter().sum()
    }

    #[test]
    fn gradient_check_input_last_state() {
        let mut l = Lstm::new(2, 3, false, 11).unwrap();
        let x = Tensor::from_vec(vec![0.5, -0.3, 0.2, 0.8, -0.1, 0.4], &[3, 2]).unwrap();
        let y = l.forward(&x, true).unwrap();
        let ones = Tensor::from_vec(vec![1.0; y.len()], y.shape()).unwrap();
        let dx = l.backward(&ones).unwrap();

        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let numeric = (sum_forward(&mut l, &xp) - sum_forward(&mut l, &xm)) / (2.0 * eps);
            assert!(
                (dx.data()[idx] - numeric).abs() < 2e-2,
                "dx[{idx}]: {} vs {numeric}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn gradient_check_weights_sequence_mode() {
        let mut l = Lstm::new(2, 2, true, 13).unwrap();
        let x = Tensor::from_vec(vec![0.3, 0.7, -0.4, 0.1], &[2, 2]).unwrap();
        let y = l.forward(&x, true).unwrap();
        let ones = Tensor::from_vec(vec![1.0; y.len()], y.shape()).unwrap();
        l.backward(&ones).unwrap();

        let eps = 1e-3;
        // Spot-check a few weights in each parameter tensor.
        for (pname, pidx) in [("wx", 3usize), ("wh", 5), ("bias", 1)] {
            let analytic = match pname {
                "wx" => l.wx.grad.data()[pidx],
                "wh" => l.wh.grad.data()[pidx],
                _ => l.bias.grad.data()[pidx],
            };
            let value = |l: &Lstm| match pname {
                "wx" => l.wx.value.data()[pidx],
                "wh" => l.wh.value.data()[pidx],
                _ => l.bias.value.data()[pidx],
            };
            let set = |l: &mut Lstm, v: f32| match pname {
                "wx" => l.wx.value.data_mut()[pidx] = v,
                "wh" => l.wh.value.data_mut()[pidx] = v,
                _ => l.bias.value.data_mut()[pidx] = v,
            };
            let base = value(&l);
            set(&mut l, base + eps);
            let yp = sum_forward(&mut l, &x);
            set(&mut l, base - eps);
            let ym = sum_forward(&mut l, &x);
            set(&mut l, base);
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "{pname}[{pidx}]: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn backward_before_forward_fails() {
        let mut l = Lstm::new(2, 3, false, 1).unwrap();
        assert!(l.backward(&Tensor::zeros(&[3]).unwrap()).is_err());
    }

    #[test]
    fn backward_rejects_wrong_grad_shape() {
        let mut l = Lstm::new(2, 3, false, 1).unwrap();
        l.forward(&Tensor::zeros(&[4, 2]).unwrap(), true).unwrap();
        assert!(l.backward(&Tensor::zeros(&[4]).unwrap()).is_err());
    }
}
