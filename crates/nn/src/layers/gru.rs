//! Gated recurrent unit with full backpropagation through time.
//!
//! An extension beyond the paper's MLP/CNN/LSTM study: the GRU reaches
//! LSTM-class accuracy with 25% fewer parameters per unit, which matters on
//! the wearable power budget the paper targets. Included so the
//! model-choice guidance of Sec. 2 can be extended.

use crate::init::{seeded_rng, xavier_uniform};
use crate::layers::{Layer, Param};
use crate::{NnError, Tensor};

/// Per-step cache for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    z: Vec<f32>,
    r: Vec<f32>,
    n: Vec<f32>,
    /// `U_n · h_prev` before the reset gate is applied.
    un_h: Vec<f32>,
}

/// A single-direction GRU over `[time, features]` inputs.
///
/// Gate layout in the stacked matrices is `[update (z), reset (r),
/// candidate (n)]`; the candidate uses the convention
/// `n = tanh(Wn·x + r ⊙ (Un·h) + bn)`. With `return_sequences` the layer
/// outputs `[time, hidden]`, otherwise the final hidden state `[hidden]`.
///
/// # Example
///
/// ```
/// use nn::layers::{Gru, Layer};
/// use nn::Tensor;
/// # fn main() -> Result<(), nn::NnError> {
/// let mut gru = Gru::new(4, 8, false, 3)?;
/// let x = Tensor::zeros(&[10, 4])?;
/// assert_eq!(gru.forward(&x, false)?.shape(), &[8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Gru {
    wx: Param,   // [3H, F]
    wh: Param,   // [3H, H]
    bias: Param, // [3H]
    input_dim: usize,
    hidden: usize,
    return_sequences: bool,
    steps: Vec<StepCache>,
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Gru {
    /// Creates a GRU with `input_dim` features and `hidden` units,
    /// Xavier-initialized from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] when either size is zero.
    pub fn new(
        input_dim: usize,
        hidden: usize,
        return_sequences: bool,
        seed: u64,
    ) -> Result<Self, NnError> {
        if input_dim == 0 || hidden == 0 {
            return Err(NnError::InvalidParameter {
                name: "input_dim/hidden",
                reason: "must be non-zero",
            });
        }
        let mut rng = seeded_rng(seed);
        let wx = xavier_uniform(&mut rng, input_dim, hidden, 3 * hidden * input_dim);
        let wh = xavier_uniform(&mut rng, hidden, hidden, 3 * hidden * hidden);
        Ok(Self {
            wx: Param::new(Tensor::from_vec(wx, &[3 * hidden, input_dim])?),
            wh: Param::new(Tensor::from_vec(wh, &[3 * hidden, hidden])?),
            bias: Param::new(Tensor::zeros(&[3 * hidden])?),
            input_dim,
            hidden,
            return_sequences,
            steps: Vec::new(),
        })
    }

    /// Number of hidden units.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }
}

impl Layer for Gru {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.len() != 2 || shape[1] != self.input_dim || shape[0] == 0 {
            return Err(NnError::ShapeMismatch {
                expected: format!("[t >= 1, {}]", self.input_dim),
                actual: shape.to_vec(),
            });
        }
        let (t_len, h) = (shape[0], self.hidden);
        self.steps.clear();
        self.steps.reserve(t_len);

        let mut h_prev = vec![0.0f32; h];
        let mut seq_out = Vec::with_capacity(if self.return_sequences { t_len * h } else { 0 });
        for t in 0..t_len {
            let x = &input.data()[t * self.input_dim..(t + 1) * self.input_dim];
            let zx = self.wx.value.matvec(x)?;
            let zh = self.wh.value.matvec(&h_prev)?;
            let b = self.bias.value.data();

            let mut z = vec![0.0f32; h];
            let mut r = vec![0.0f32; h];
            let mut n = vec![0.0f32; h];
            let mut un_h = vec![0.0f32; h];
            let mut h_new = vec![0.0f32; h];
            for j in 0..h {
                z[j] = sigmoid(zx[j] + zh[j] + b[j]);
                r[j] = sigmoid(zx[h + j] + zh[h + j] + b[h + j]);
                un_h[j] = zh[2 * h + j];
                n[j] = (zx[2 * h + j] + r[j] * un_h[j] + b[2 * h + j]).tanh();
                h_new[j] = (1.0 - z[j]) * n[j] + z[j] * h_prev[j];
            }
            if self.return_sequences {
                seq_out.extend_from_slice(&h_new);
            }
            self.steps.push(StepCache {
                x: x.to_vec(),
                h_prev: h_prev.clone(),
                z,
                r,
                n,
                un_h,
            });
            h_prev = h_new;
        }
        if self.return_sequences {
            Tensor::from_vec(seq_out, &[t_len, h])
        } else {
            Tensor::from_vec(h_prev, &[h])
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        if self.steps.is_empty() {
            return Err(NnError::InvalidState("gru backward before forward"));
        }
        let t_len = self.steps.len();
        let h = self.hidden;
        let expected: &[usize] = if self.return_sequences {
            &[t_len, h]
        } else {
            &[h]
        };
        if grad_out.shape() != expected {
            return Err(NnError::ShapeMismatch {
                expected: format!("{expected:?}"),
                actual: grad_out.shape().to_vec(),
            });
        }

        let mut dx_all = vec![0.0f32; t_len * self.input_dim];
        let mut dh_next = vec![0.0f32; h];

        for t in (0..t_len).rev() {
            let step = &self.steps[t];
            let mut dh = dh_next.clone();
            if self.return_sequences {
                for (j, dhj) in dh.iter_mut().enumerate() {
                    *dhj += grad_out.data()[t * h + j];
                }
            } else if t == t_len - 1 {
                for (dhj, &g) in dh.iter_mut().zip(grad_out.data()) {
                    *dhj += g;
                }
            }

            // Pre-activation gradients laid out [z | r | n].
            let mut d_pre = vec![0.0f32; 3 * h];
            let mut dh_prev = vec![0.0f32; h];
            for j in 0..h {
                let (z, r, n) = (step.z[j], step.r[j], step.n[j]);
                // h = (1 - z) n + z h_prev
                dh_prev[j] += dh[j] * z;
                let dz = dh[j] * (step.h_prev[j] - n);
                let dn = dh[j] * (1.0 - z);
                let dn_pre = dn * (1.0 - n * n);
                let dr = dn_pre * step.un_h[j];
                d_pre[j] = dz * z * (1.0 - z);
                d_pre[h + j] = dr * r * (1.0 - r);
                d_pre[2 * h + j] = dn_pre;
            }

            // Parameter gradients. The recurrent matrix sees h_prev through
            // three different paths: plain for z/r, reset-gated for n.
            {
                let dwx = self.wx.grad.data_mut();
                for (row, &g) in d_pre.iter().enumerate() {
                    let base = row * self.input_dim;
                    for (c, &xv) in step.x.iter().enumerate() {
                        dwx[base + c] += g * xv;
                    }
                }
            }
            {
                let dwh = self.wh.grad.data_mut();
                for j in 0..h {
                    // z and r rows: gradient flows to Uz/Ur · h_prev.
                    for (c, &hv) in step.h_prev.iter().enumerate() {
                        dwh[j * h + c] += d_pre[j] * hv;
                        dwh[(h + j) * h + c] += d_pre[h + j] * hv;
                        // n row: gradient through r ⊙ (Un h_prev).
                        dwh[(2 * h + j) * h + c] += d_pre[2 * h + j] * step.r[j] * hv;
                    }
                }
            }
            for (db, &g) in self.bias.grad.data_mut().iter_mut().zip(&d_pre) {
                *db += g;
            }

            // dx and dh_prev contributions through the matrices.
            let dx = self.wx.value.matvec_t(&d_pre)?;
            dx_all[t * self.input_dim..(t + 1) * self.input_dim].copy_from_slice(&dx);
            // For dh_prev we must gate the candidate row by r before the
            // transpose-multiply.
            let mut d_pre_gated = d_pre.clone();
            for j in 0..h {
                d_pre_gated[2 * h + j] *= step.r[j];
            }
            let via_wh = self.wh.value.matvec_t(&d_pre_gated)?;
            for (d, &v) in dh_prev.iter_mut().zip(&via_wh) {
                *d += v;
            }
            dh_next = dh_prev;
        }
        Tensor::from_vec(dx_all, &[t_len, self.input_dim])
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.wx, &self.wh, &self.bias]
    }

    fn name(&self) -> &'static str {
        "gru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_sizes() {
        assert!(Gru::new(0, 4, false, 0).is_err());
        assert!(Gru::new(4, 0, false, 0).is_err());
    }

    #[test]
    fn output_shapes() {
        let mut last = Gru::new(3, 5, false, 1).unwrap();
        let mut seq = Gru::new(3, 5, true, 1).unwrap();
        let x = Tensor::zeros(&[7, 3]).unwrap();
        assert_eq!(last.forward(&x, false).unwrap().shape(), &[5]);
        assert_eq!(seq.forward(&x, false).unwrap().shape(), &[7, 5]);
    }

    #[test]
    fn param_count_is_three_quarters_of_lstm() {
        let gru = Gru::new(10, 16, false, 0).unwrap();
        let lstm = crate::layers::Lstm::new(10, 16, false, 0).unwrap();
        assert_eq!(gru.param_count() * 4, lstm.param_count() * 3);
    }

    #[test]
    fn hidden_states_bounded() {
        let mut g = Gru::new(2, 4, true, 5).unwrap();
        let x = Tensor::from_vec(vec![10.0; 12], &[6, 2]).unwrap();
        let y = g.forward(&x, false).unwrap();
        assert!(y.data().iter().all(|&v| v.abs() <= 1.0));
    }

    fn sum_forward(g: &mut Gru, x: &Tensor) -> f32 {
        g.forward(x, true).unwrap().data().iter().sum()
    }

    #[test]
    fn gradient_check_input() {
        let mut g = Gru::new(2, 3, false, 11).unwrap();
        let x = Tensor::from_vec(vec![0.5, -0.3, 0.2, 0.8, -0.1, 0.4], &[3, 2]).unwrap();
        let y = g.forward(&x, true).unwrap();
        let ones = Tensor::from_vec(vec![1.0; y.len()], y.shape()).unwrap();
        let dx = g.backward(&ones).unwrap();
        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let numeric = (sum_forward(&mut g, &xp) - sum_forward(&mut g, &xm)) / (2.0 * eps);
            assert!(
                (dx.data()[idx] - numeric).abs() < 2e-2,
                "dx[{idx}]: {} vs {numeric}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn gradient_check_weights_sequence_mode() {
        let mut g = Gru::new(2, 2, true, 13).unwrap();
        let x = Tensor::from_vec(vec![0.3, 0.7, -0.4, 0.1], &[2, 2]).unwrap();
        let y = g.forward(&x, true).unwrap();
        let ones = Tensor::from_vec(vec![1.0; y.len()], y.shape()).unwrap();
        g.backward(&ones).unwrap();
        let eps = 1e-3;
        // Spot-check entries in all three parameter tensors, including a
        // candidate-row recurrent weight (the reset-gated path).
        for (which, idx) in [(0usize, 3usize), (1, 2 * 2 * 2 + 1), (2, 4)] {
            let analytic = match which {
                0 => g.wx.grad.data()[idx],
                1 => g.wh.grad.data()[idx],
                _ => g.bias.grad.data()[idx],
            };
            let get = |g: &Gru| match which {
                0 => g.wx.value.data()[idx],
                1 => g.wh.value.data()[idx],
                _ => g.bias.value.data()[idx],
            };
            let set = |g: &mut Gru, v: f32| match which {
                0 => g.wx.value.data_mut()[idx] = v,
                1 => g.wh.value.data_mut()[idx] = v,
                _ => g.bias.value.data_mut()[idx] = v,
            };
            let base = get(&g);
            set(&mut g, base + eps);
            let yp = sum_forward(&mut g, &x);
            set(&mut g, base - eps);
            let ym = sum_forward(&mut g, &x);
            set(&mut g, base);
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "tensor {which}[{idx}]: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn backward_before_forward_fails() {
        let mut g = Gru::new(2, 3, false, 1).unwrap();
        assert!(g.backward(&Tensor::zeros(&[3]).unwrap()).is_err());
    }

    #[test]
    fn trains_on_a_sequence_task() {
        // Classify whether the sequence trend is rising or falling.
        use crate::layers::Dense;
        use crate::optim::Adam;
        use crate::train::{fit, FitConfig};
        use crate::Sequential;

        let mut model = Sequential::new();
        model.push(Gru::new(1, 8, false, 3).unwrap());
        model.push(Dense::new(8, 2, 4).unwrap());

        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for k in 0..40 {
            let rising = k % 2 == 0;
            let seq: Vec<f32> = (0..8)
                .map(|t| {
                    let base = t as f32 / 8.0;
                    let v = if rising { base } else { 1.0 - base };
                    v + 0.05 * ((k * 7 + t) as f32).sin()
                })
                .collect();
            xs.push(Tensor::from_vec(seq, &[8, 1]).unwrap());
            ys.push(usize::from(rising));
        }
        let mut opt = Adam::new(0.02);
        fit(
            &mut model,
            &xs,
            &ys,
            &mut opt,
            &FitConfig {
                epochs: 60,
                batch_size: 8,
                seed: 5,
                verbose: false,
            },
        )
        .unwrap();
        let acc = crate::metrics::accuracy(&mut model, &xs, &ys).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
