//! Max pooling over the time axis.

use crate::layers::Layer;
use crate::scratch::{Scratch, Shape};
use crate::{NnError, Tensor};

/// Non-overlapping 1-D max pooling over `[channels, time]` inputs.
///
/// Pool size equals the stride (Keras `MaxPooling1D` default). Trailing
/// samples that do not fill a whole pool window are dropped.
///
/// # Example
///
/// ```
/// use nn::layers::{Layer, MaxPool1d};
/// use nn::Tensor;
/// # fn main() -> Result<(), nn::NnError> {
/// let mut pool = MaxPool1d::new(2)?;
/// let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], &[1, 4])?;
/// assert_eq!(pool.forward(&x, false)?.data(), &[5.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MaxPool1d {
    pool: usize,
    /// Cached `(input_shape, argmax flat indices)` from the last forward.
    cache: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool1d {
    /// Creates a pooling layer with window/stride `pool`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] when `pool` is zero.
    pub fn new(pool: usize) -> Result<Self, NnError> {
        if pool == 0 {
            return Err(NnError::InvalidParameter {
                name: "pool",
                reason: "must be non-zero",
            });
        }
        Ok(Self { pool, cache: None })
    }

    /// The pool window size.
    pub fn pool(&self) -> usize {
        self.pool
    }
}

impl Layer for MaxPool1d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.len() != 2 || shape[1] < self.pool {
            return Err(NnError::ShapeMismatch {
                expected: format!("[c, t >= {}]", self.pool),
                actual: shape.to_vec(),
            });
        }
        let (ch, t_in) = (shape[0], shape[1]);
        let t_out = t_in / self.pool;
        let mut out = vec![0.0f32; ch * t_out];
        let mut argmax = vec![0usize; ch * t_out];
        for c in 0..ch {
            for t in 0..t_out {
                let start = c * t_in + t * self.pool;
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = start;
                for i in start..start + self.pool {
                    if input.data()[i] > best {
                        best = input.data()[i];
                        best_idx = i;
                    }
                }
                out[c * t_out + t] = best;
                argmax[c * t_out + t] = best_idx;
            }
        }
        self.cache = Some((shape.to_vec(), argmax));
        Tensor::from_vec(out, &[ch, t_out])
    }

    fn forward_scratch(
        &mut self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        _scratch: &mut Scratch,
    ) -> Result<Shape, NnError> {
        let dims = shape.as_slice();
        if dims.len() != 2 || dims[1] < self.pool {
            return Err(NnError::ShapeMismatch {
                expected: format!("[c, t >= {}]", self.pool),
                actual: dims.to_vec(),
            });
        }
        let (ch, t_in) = (dims[0], dims[1]);
        let t_out = t_in / self.pool;
        out.clear();
        out.resize(ch * t_out, 0.0);
        for c in 0..ch {
            for t in 0..t_out {
                let start = c * t_in + t * self.pool;
                let mut best = f32::NEG_INFINITY;
                for &v in &input[start..start + self.pool] {
                    if v > best {
                        best = v;
                    }
                }
                out[c * t_out + t] = best;
            }
        }
        Ok(Shape::d2(ch, t_out))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let (in_shape, argmax) = self
            .cache
            .as_ref()
            .ok_or(NnError::InvalidState("pool backward before forward"))?;
        if grad_out.len() != argmax.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} elements", argmax.len()),
                actual: grad_out.shape().to_vec(),
            });
        }
        let mut dx = vec![0.0f32; in_shape.iter().product()];
        for (g, &idx) in grad_out.data().iter().zip(argmax) {
            dx[idx] += g;
        }
        Tensor::from_vec(dx, in_shape)
    }

    fn name(&self) -> &'static str {
        "maxpool1d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_pool() {
        assert!(MaxPool1d::new(0).is_err());
    }

    #[test]
    fn drops_trailing_partial_window() {
        let mut p = MaxPool1d::new(3).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 9.0, 9.0], &[1, 5]).unwrap();
        let y = p.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[1, 1]);
        assert_eq!(y.data(), &[3.0]);
    }

    #[test]
    fn multi_channel() {
        let mut p = MaxPool1d::new(2).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0], &[2, 4]).unwrap();
        let y = p.forward(&x, false).unwrap();
        assert_eq!(y.data(), &[2.0, 4.0, 8.0, 6.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut p = MaxPool1d::new(2).unwrap();
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], &[1, 4]).unwrap();
        p.forward(&x, true).unwrap();
        let g = Tensor::from_vec(vec![10.0, 20.0], &[1, 2]).unwrap();
        let dx = p.backward(&g).unwrap();
        assert_eq!(dx.data(), &[0.0, 10.0, 0.0, 20.0]);
    }

    #[test]
    fn backward_before_forward_fails() {
        let mut p = MaxPool1d::new(2).unwrap();
        assert!(p.backward(&Tensor::zeros(&[1, 1]).unwrap()).is_err());
    }

    #[test]
    fn rejects_input_shorter_than_pool() {
        let mut p = MaxPool1d::new(4).unwrap();
        assert!(p.forward(&Tensor::zeros(&[1, 3]).unwrap(), false).is_err());
    }
}
