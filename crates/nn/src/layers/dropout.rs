//! Inverted dropout.

use crate::layers::Layer;
use crate::scratch::{Scratch, Shape};
use crate::{NnError, Tensor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and survivors are scaled by `1 / (1 - rate)` so the
/// expected activation is unchanged; at inference the layer is the identity.
///
/// # Example
///
/// ```
/// use nn::layers::{Dropout, Layer};
/// use nn::Tensor;
/// # fn main() -> Result<(), nn::NnError> {
/// let mut d = Dropout::new(0.5, 1)?;
/// let x = Tensor::from_vec(vec![1.0; 8], &[8])?;
/// // Inference: identity.
/// assert_eq!(d.forward(&x, false)?.data(), x.data());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Dropout {
    rate: f32,
    rng: StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `rate` and a
    /// deterministic mask RNG seeded by `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] unless `0.0 <= rate < 1.0`.
    pub fn new(rate: f32, seed: u64) -> Result<Self, NnError> {
        if !(0.0..1.0).contains(&rate) {
            return Err(NnError::InvalidParameter {
                name: "rate",
                reason: "must be in [0, 1)",
            });
        }
        Ok(Self {
            rate,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        })
    }

    /// The configured drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if !train || self.rate == 0.0 {
            self.mask = None;
            return Ok(input.clone());
        }
        let keep = 1.0 - self.rate;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| {
                if self.rng.random::<f32>() < self.rate {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();
        let data: Vec<f32> = input
            .data()
            .iter()
            .zip(&mask)
            .map(|(&x, &m)| x * m)
            .collect();
        self.mask = Some(mask);
        Tensor::from_vec(data, input.shape())
    }

    fn forward_scratch(
        &mut self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        _scratch: &mut Scratch,
    ) -> Result<Shape, NnError> {
        // Inference-only path: dropout is the identity.
        out.clear();
        out.extend_from_slice(input);
        Ok(shape)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        match &self.mask {
            None => Ok(grad_out.clone()),
            Some(mask) => {
                if grad_out.len() != mask.len() {
                    return Err(NnError::ShapeMismatch {
                        expected: format!("{} elements", mask.len()),
                        actual: grad_out.shape().to_vec(),
                    });
                }
                let data: Vec<f32> = grad_out
                    .data()
                    .iter()
                    .zip(mask)
                    .map(|(&g, &m)| g * m)
                    .collect();
                Tensor::from_vec(data, grad_out.shape())
            }
        }
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_rate() {
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(-0.1, 0).is_err());
    }

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.9, 0).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        assert_eq!(d.forward(&x, false).unwrap().data(), x.data());
    }

    #[test]
    fn training_zeroes_roughly_rate_fraction() {
        let mut d = Dropout::new(0.5, 42).unwrap();
        let x = Tensor::from_vec(vec![1.0; 10_000], &[10_000]).unwrap();
        let y = d.forward(&x, true).unwrap();
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((4_000..6_000).contains(&zeros), "zeros = {zeros}");
    }

    #[test]
    fn survivors_scaled_to_preserve_expectation() {
        let mut d = Dropout::new(0.25, 7).unwrap();
        let x = Tensor::from_vec(vec![1.0; 10_000], &[10_000]).unwrap();
        let y = d.forward(&x, true).unwrap();
        let mean: f32 = y.data().iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3).unwrap();
        let x = Tensor::from_vec(vec![1.0; 64], &[64]).unwrap();
        let y = d.forward(&x, true).unwrap();
        let g = Tensor::from_vec(vec![1.0; 64], &[64]).unwrap();
        let dg = d.backward(&g).unwrap();
        // Gradient must be zero exactly where the output was zeroed.
        for (yo, go) in y.data().iter().zip(dg.data()) {
            assert_eq!(*yo == 0.0, *go == 0.0);
        }
    }

    #[test]
    fn zero_rate_is_identity_even_in_training() {
        let mut d = Dropout::new(0.0, 3).unwrap();
        let x = Tensor::from_vec(vec![5.0; 4], &[4]).unwrap();
        assert_eq!(d.forward(&x, true).unwrap().data(), x.data());
    }
}
