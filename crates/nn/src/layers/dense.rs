//! Fully connected layer.

use crate::init::{he_uniform, seeded_rng};
use crate::kernels;
use crate::layers::{Layer, Param};
use crate::quant::{quantize_activations_into, Precision, QuantizedTensor};
use crate::scratch::{Scratch, Shape};
use crate::{NnError, Tensor};

/// A fully connected (dense) layer: `y = W·x + b`.
///
/// # Example
///
/// ```
/// use nn::layers::{Dense, Layer};
/// use nn::Tensor;
/// # fn main() -> Result<(), nn::NnError> {
/// let mut layer = Dense::new(3, 2, 42)?;
/// let x = Tensor::from_vec(vec![1.0, 0.5, -0.5], &[3])?;
/// let y = layer.forward(&x, false)?;
/// assert_eq!(y.shape(), &[2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Dense {
    weight: Param, // [out, in]
    bias: Param,   // [out]
    /// Int8 weight snapshot; present iff the layer runs the quantized
    /// scratch path (see [`Layer::set_precision`]).
    qweight: Option<QuantizedTensor>,
    input_cache: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer mapping `in_dim` features to `out_dim`, with
    /// He-uniform weights drawn from a deterministic RNG seeded by `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] when either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Result<Self, NnError> {
        if in_dim == 0 || out_dim == 0 {
            return Err(NnError::InvalidParameter {
                name: "in_dim/out_dim",
                reason: "must be non-zero",
            });
        }
        let mut rng = seeded_rng(seed);
        let w = he_uniform(&mut rng, in_dim, in_dim * out_dim);
        Ok(Self {
            weight: Param::new(Tensor::from_vec(w, &[out_dim, in_dim])?),
            bias: Param::new(Tensor::zeros(&[out_dim])?),
            qweight: None,
            input_cache: None,
        })
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.value.shape()[1]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.value.shape()[0]
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor, NnError> {
        if input.shape() != [self.in_dim()] {
            return Err(NnError::ShapeMismatch {
                expected: format!("[{}]", self.in_dim()),
                actual: input.shape().to_vec(),
            });
        }
        let mut y = self.weight.value.matvec(input.data())?;
        for (yi, bi) in y.iter_mut().zip(self.bias.value.data()) {
            *yi += bi;
        }
        self.input_cache = Some(input.clone());
        Tensor::from_vec(y, &[self.out_dim()])
    }

    fn forward_scratch(
        &mut self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        scratch: &mut Scratch,
    ) -> Result<Shape, NnError> {
        if shape.as_slice() != [self.in_dim()] {
            return Err(NnError::ShapeMismatch {
                expected: format!("[{}]", self.in_dim()),
                actual: shape.as_slice().to_vec(),
            });
        }
        let (out_dim, in_dim) = (self.out_dim(), self.in_dim());
        out.clear();
        out.resize(out_dim, 0.0);
        if let Some(qw) = &self.qweight {
            // Fully quantized path: i8 activations, i8×i8→i32 dots, one
            // rescale per output row. The i8 temporary comes from the
            // scratch pool, so the pass stays allocation-free once warm.
            let mut qx = scratch.acquire_i8(in_dim);
            let x_scale = quantize_activations_into(input, &mut qx);
            let combined = qw.scale() * x_scale;
            let values = qw.values();
            for (r, (yr, &br)) in out.iter_mut().zip(self.bias.value.data()).enumerate() {
                let row = &values[r * in_dim..(r + 1) * in_dim];
                *yr = kernels::dot_i8(row, &qx) as f32 * combined + br;
            }
            scratch.release_i8(qx);
        } else {
            kernels::gemv(self.weight.value.data(), out_dim, in_dim, input, out);
            for (yi, bi) in out.iter_mut().zip(self.bias.value.data()) {
                *yi += bi;
            }
        }
        Ok(Shape::d1(out_dim))
    }

    fn set_precision(&mut self, precision: Precision) -> Result<(), NnError> {
        self.qweight = match precision {
            Precision::F32 => None,
            Precision::Int8 => Some(QuantizedTensor::quantize(&self.weight.value)),
        };
        Ok(())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .input_cache
            .as_ref()
            .ok_or(NnError::InvalidState("dense backward before forward"))?;
        if grad_out.shape() != [self.out_dim()] {
            return Err(NnError::ShapeMismatch {
                expected: format!("[{}]", self.out_dim()),
                actual: grad_out.shape().to_vec(),
            });
        }
        let (out_dim, in_dim) = (self.out_dim(), self.in_dim());
        // dW[o][i] += g[o] * x[i]
        {
            let dw = self.weight.grad.data_mut();
            for o in 0..out_dim {
                let g = grad_out.data()[o];
                let base = o * in_dim;
                for i in 0..in_dim {
                    dw[base + i] += g * input.data()[i];
                }
            }
        }
        for (db, g) in self.bias.grad.data_mut().iter_mut().zip(grad_out.data()) {
            *db += g;
        }
        // dx = Wᵀ g
        let dx = self.weight.value.matvec_t(grad_out.data())?;
        Tensor::from_vec(dx, &[in_dim])
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dims() {
        assert!(Dense::new(0, 3, 1).is_err());
        assert!(Dense::new(3, 0, 1).is_err());
    }

    #[test]
    fn forward_shape_and_determinism() {
        let mut a = Dense::new(4, 3, 9).unwrap();
        let mut b = Dense::new(4, 3, 9).unwrap();
        let x = Tensor::from_vec(vec![1.0, -1.0, 0.5, 2.0], &[4]).unwrap();
        assert_eq!(a.forward(&x, false).unwrap(), b.forward(&x, false).unwrap());
    }

    #[test]
    fn forward_scratch_matches_forward_bitwise() {
        let mut l = Dense::new(5, 3, 21).unwrap();
        let x = Tensor::from_vec(vec![0.2, -1.3, 0.8, 2.1, -0.4], &[5]).unwrap();
        let y = l.forward(&x, false).unwrap();
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        let shape = l
            .forward_scratch(x.data(), Shape::d1(5), &mut out, &mut scratch)
            .unwrap();
        assert_eq!(shape.as_slice(), y.shape());
        assert_eq!(out, y.data());
    }

    #[test]
    fn int8_scratch_path_tracks_f32_within_quant_error() {
        let mut l = Dense::new(16, 6, 33).unwrap();
        let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.61).sin() * 1.4).collect();
        let mut scratch = Scratch::new();
        let mut f32_out = Vec::new();
        l.forward_scratch(&x, Shape::d1(16), &mut f32_out, &mut scratch)
            .unwrap();
        l.set_precision(Precision::Int8).unwrap();
        let mut i8_out = Vec::new();
        l.forward_scratch(&x, Shape::d1(16), &mut i8_out, &mut scratch)
            .unwrap();
        for (a, b) in f32_out.iter().zip(&i8_out) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
        // Back to f32 restores the exact float result.
        l.set_precision(Precision::F32).unwrap();
        let mut back = Vec::new();
        l.forward_scratch(&x, Shape::d1(16), &mut back, &mut scratch)
            .unwrap();
        assert_eq!(back, f32_out);
    }

    #[test]
    fn forward_scratch_rejects_wrong_shape() {
        let mut l = Dense::new(4, 3, 9).unwrap();
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        assert!(l
            .forward_scratch(&[0.0; 5], Shape::d1(5), &mut out, &mut scratch)
            .is_err());
    }

    #[test]
    fn forward_rejects_wrong_input() {
        let mut l = Dense::new(4, 3, 9).unwrap();
        let x = Tensor::zeros(&[5]).unwrap();
        assert!(l.forward(&x, false).is_err());
    }

    #[test]
    fn backward_before_forward_fails() {
        let mut l = Dense::new(4, 3, 9).unwrap();
        let g = Tensor::zeros(&[3]).unwrap();
        assert!(l.backward(&g).is_err());
    }

    #[test]
    fn param_count() {
        let l = Dense::new(10, 5, 0).unwrap();
        assert_eq!(l.param_count(), 10 * 5 + 5);
    }

    #[test]
    fn gradient_check_weights() {
        // Finite-difference check on a random weight entry.
        let mut l = Dense::new(3, 2, 7).unwrap();
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.1], &[3]).unwrap();
        // Loss = sum(y); dL/dy = ones.
        let ones = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        l.forward(&x, true).unwrap();
        l.backward(&ones).unwrap();
        let analytic = l.weight.grad.data()[1]; // dW[0][1]

        let eps = 1e-3;
        let base = l.weight.value.data()[1];
        l.weight.value.data_mut()[1] = base + eps;
        let y_plus: f32 = l.forward(&x, true).unwrap().data().iter().sum();
        l.weight.value.data_mut()[1] = base - eps;
        let y_minus: f32 = l.forward(&x, true).unwrap().data().iter().sum();
        let numeric = (y_plus - y_minus) / (2.0 * eps);
        assert!((analytic - numeric).abs() < 1e-2, "{analytic} vs {numeric}");
    }

    #[test]
    fn gradient_check_input() {
        let mut l = Dense::new(3, 2, 7).unwrap();
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.1], &[3]).unwrap();
        let ones = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        l.forward(&x, true).unwrap();
        let dx = l.backward(&ones).unwrap();

        let eps = 1e-3;
        let mut xp = x.clone();
        xp.data_mut()[2] += eps;
        let mut xm = x.clone();
        xm.data_mut()[2] -= eps;
        let y_plus: f32 = l.forward(&xp, true).unwrap().data().iter().sum();
        let y_minus: f32 = l.forward(&xm, true).unwrap().data().iter().sum();
        let numeric = (y_plus - y_minus) / (2.0 * eps);
        assert!((dx.data()[2] - numeric).abs() < 1e-2);
    }

    #[test]
    fn gradients_accumulate_across_samples() {
        let mut l = Dense::new(2, 1, 3).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        l.forward(&x, true).unwrap();
        l.backward(&g).unwrap();
        let first = l.bias.grad.data()[0];
        l.forward(&x, true).unwrap();
        l.backward(&g).unwrap();
        assert!((l.bias.grad.data()[0] - 2.0 * first).abs() < 1e-6);
    }
}
