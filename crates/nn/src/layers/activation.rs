//! Elementwise activation layers.

use crate::layers::Layer;
use crate::scratch::{Scratch, Shape};
use crate::{NnError, Tensor};

/// The activation function applied by an [`Activation`] layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ActivationKind {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// An elementwise activation layer.
///
/// # Example
///
/// ```
/// use nn::layers::{Activation, Layer};
/// use nn::Tensor;
/// # fn main() -> Result<(), nn::NnError> {
/// let mut relu = Activation::relu();
/// let x = Tensor::from_vec(vec![-1.0, 2.0], &[2])?;
/// assert_eq!(relu.forward(&x, false)?.data(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Activation {
    kind: ActivationKind,
    /// Cached forward *output* (enough to differentiate all three kinds).
    output_cache: Option<Tensor>,
    /// Cached input sign mask for ReLU.
    input_cache: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Self {
            kind,
            output_cache: None,
            input_cache: None,
        }
    }

    /// Shorthand for `Activation::new(ActivationKind::Relu)`.
    pub fn relu() -> Self {
        Self::new(ActivationKind::Relu)
    }

    /// Shorthand for `Activation::new(ActivationKind::Tanh)`.
    pub fn tanh() -> Self {
        Self::new(ActivationKind::Tanh)
    }

    /// Shorthand for `Activation::new(ActivationKind::Sigmoid)`.
    pub fn sigmoid() -> Self {
        Self::new(ActivationKind::Sigmoid)
    }

    /// The activation kind.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Layer for Activation {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor, NnError> {
        let data: Vec<f32> = match self.kind {
            ActivationKind::Relu => input.data().iter().map(|&x| x.max(0.0)).collect(),
            ActivationKind::Tanh => input.data().iter().map(|&x| x.tanh()).collect(),
            ActivationKind::Sigmoid => input.data().iter().map(|&x| sigmoid(x)).collect(),
        };
        let out = Tensor::from_vec(data, input.shape())?;
        self.output_cache = Some(out.clone());
        if self.kind == ActivationKind::Relu {
            self.input_cache = Some(input.clone());
        }
        Ok(out)
    }

    fn forward_scratch(
        &mut self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        _scratch: &mut Scratch,
    ) -> Result<Shape, NnError> {
        out.clear();
        out.resize(input.len(), 0.0);
        match self.kind {
            ActivationKind::Relu => {
                for (y, &x) in out.iter_mut().zip(input) {
                    *y = x.max(0.0);
                }
            }
            ActivationKind::Tanh => {
                for (y, &x) in out.iter_mut().zip(input) {
                    *y = x.tanh();
                }
            }
            ActivationKind::Sigmoid => {
                for (y, &x) in out.iter_mut().zip(input) {
                    *y = sigmoid(x);
                }
            }
        }
        Ok(shape)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let out = self
            .output_cache
            .as_ref()
            .ok_or(NnError::InvalidState("activation backward before forward"))?;
        if grad_out.shape() != out.shape() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{:?}", out.shape()),
                actual: grad_out.shape().to_vec(),
            });
        }
        let data: Vec<f32> = match self.kind {
            ActivationKind::Relu => {
                let input = self
                    .input_cache
                    .as_ref()
                    .ok_or(NnError::InvalidState("relu input cache missing"))?;
                grad_out
                    .data()
                    .iter()
                    .zip(input.data())
                    .map(|(&g, &x)| if x > 0.0 { g } else { 0.0 })
                    .collect()
            }
            ActivationKind::Tanh => grad_out
                .data()
                .iter()
                .zip(out.data())
                .map(|(&g, &y)| g * (1.0 - y * y))
                .collect(),
            ActivationKind::Sigmoid => grad_out
                .data()
                .iter()
                .zip(out.data())
                .map(|(&g, &y)| g * y * (1.0 - y))
                .collect(),
        };
        Tensor::from_vec(data, grad_out.shape())
    }

    fn name(&self) -> &'static str {
        match self.kind {
            ActivationKind::Relu => "relu",
            ActivationKind::Tanh => "tanh",
            ActivationKind::Sigmoid => "sigmoid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_check(kind: ActivationKind) {
        let mut layer = Activation::new(kind);
        let x = Tensor::from_vec(vec![0.4, -0.3, 1.2, -2.0], &[4]).unwrap();
        let ones = Tensor::from_vec(vec![1.0; 4], &[4]).unwrap();
        layer.forward(&x, true).unwrap();
        let dx = layer.backward(&ones).unwrap();
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp: f32 = layer.forward(&xp, true).unwrap().data().iter().sum();
            let ym: f32 = layer.forward(&xm, true).unwrap().data().iter().sum();
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (dx.data()[i] - numeric).abs() < 1e-2,
                "{kind:?}[{i}]: {} vs {numeric}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn gradient_check_all_kinds() {
        grad_check(ActivationKind::Relu);
        grad_check(ActivationKind::Tanh);
        grad_check(ActivationKind::Sigmoid);
    }

    #[test]
    fn relu_zeroes_negatives() {
        let mut l = Activation::relu();
        let y = l
            .forward(
                &Tensor::from_vec(vec![-3.0, 0.0, 3.0], &[3]).unwrap(),
                false,
            )
            .unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn sigmoid_bounded() {
        let mut l = Activation::sigmoid();
        let y = l
            .forward(
                &Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]).unwrap(),
                false,
            )
            .unwrap();
        assert!(y.data()[0] >= 0.0 && y.data()[2] <= 1.0);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn backward_before_forward_fails() {
        let mut l = Activation::tanh();
        assert!(l.backward(&Tensor::zeros(&[2]).unwrap()).is_err());
    }

    #[test]
    fn backward_shape_checked() {
        let mut l = Activation::tanh();
        l.forward(&Tensor::zeros(&[3]).unwrap(), false).unwrap();
        assert!(l.backward(&Tensor::zeros(&[2]).unwrap()).is_err());
    }

    #[test]
    fn activations_have_no_params() {
        let l = Activation::relu();
        assert_eq!(l.param_count(), 0);
    }
}
