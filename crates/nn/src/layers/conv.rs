//! 1-D convolution over `[channels, time]` inputs.

use crate::init::{he_uniform, seeded_rng};
use crate::kernels;
use crate::layers::{Layer, Param};
use crate::quant::{quantize_activations_into, Precision, QuantizedTensor};
use crate::scratch::{Scratch, Shape};
use crate::{NnError, Tensor};

/// A 1-D convolution layer with stride 1 and "valid" padding, matching the
/// Keras `Conv1D` defaults the paper's CNN classifier uses.
///
/// Input shape `[in_channels, time]`, output `[out_channels, time - k + 1]`.
///
/// # Example
///
/// ```
/// use nn::layers::{Conv1d, Layer};
/// use nn::Tensor;
/// # fn main() -> Result<(), nn::NnError> {
/// let mut conv = Conv1d::new(2, 4, 3, 11)?;
/// let x = Tensor::zeros(&[2, 10])?;
/// let y = conv.forward(&x, false)?;
/// assert_eq!(y.shape(), &[4, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Conv1d {
    weight: Param, // [out_ch, in_ch * k]
    bias: Param,   // [out_ch]
    /// Int8 weight snapshot; present iff the layer runs the quantized
    /// scratch path (see [`Layer::set_precision`]).
    qweight: Option<QuantizedTensor>,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    input_cache: Option<Tensor>,
}

impl Conv1d {
    /// Creates a conv layer with `out_ch` filters of width `kernel` over
    /// `in_ch` channels, He-initialized from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] when any size is zero.
    pub fn new(in_ch: usize, out_ch: usize, kernel: usize, seed: u64) -> Result<Self, NnError> {
        if in_ch == 0 || out_ch == 0 || kernel == 0 {
            return Err(NnError::InvalidParameter {
                name: "in_ch/out_ch/kernel",
                reason: "must be non-zero",
            });
        }
        let fan_in = in_ch * kernel;
        let mut rng = seeded_rng(seed);
        let w = he_uniform(&mut rng, fan_in, out_ch * fan_in);
        Ok(Self {
            weight: Param::new(Tensor::from_vec(w, &[out_ch, fan_in])?),
            bias: Param::new(Tensor::zeros(&[out_ch])?),
            qweight: None,
            in_ch,
            out_ch,
            kernel,
            input_cache: None,
        })
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    /// Number of output channels (filters).
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    #[inline]
    fn w(&self, o: usize, c: usize, k: usize) -> f32 {
        self.weight.value.data()[o * self.in_ch * self.kernel + c * self.kernel + k]
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.len() != 2 || shape[0] != self.in_ch || shape[1] < self.kernel {
            return Err(NnError::ShapeMismatch {
                expected: format!("[{}, t >= {}]", self.in_ch, self.kernel),
                actual: shape.to_vec(),
            });
        }
        let t_in = shape[1];
        let t_out = t_in - self.kernel + 1;
        let mut out = vec![0.0f32; self.out_ch * t_out];
        kernels::conv1d_forward(
            self.weight.value.data(),
            self.bias.value.data(),
            input.data(),
            self.in_ch,
            self.out_ch,
            self.kernel,
            t_in,
            &mut out,
        );
        self.input_cache = Some(input.clone());
        Tensor::from_vec(out, &[self.out_ch, t_out])
    }

    fn forward_scratch(
        &mut self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        scratch: &mut Scratch,
    ) -> Result<Shape, NnError> {
        let dims = shape.as_slice();
        if dims.len() != 2 || dims[0] != self.in_ch || dims[1] < self.kernel {
            return Err(NnError::ShapeMismatch {
                expected: format!("[{}, t >= {}]", self.in_ch, self.kernel),
                actual: dims.to_vec(),
            });
        }
        let t_in = dims[1];
        let t_out = t_in - self.kernel + 1;
        out.clear();
        out.resize(self.out_ch * t_out, 0.0);
        if let Some(qw) = &self.qweight {
            // Fully quantized path: the whole strip quantizes once (one
            // per-tensor activation scale), then each output position
            // gathers its [in_ch × k] window contiguously so every filter
            // reduces to one fused i8 dot.
            let ick = self.in_ch * self.kernel;
            let mut qx = scratch.acquire_i8(self.in_ch * t_in);
            let x_scale = quantize_activations_into(input, &mut qx);
            let mut window = scratch.acquire_i8(ick);
            let combined = qw.scale() * x_scale;
            let values = qw.values();
            let bias = self.bias.value.data();
            for t in 0..t_out {
                for c in 0..self.in_ch {
                    window[c * self.kernel..(c + 1) * self.kernel]
                        .copy_from_slice(&qx[c * t_in + t..c * t_in + t + self.kernel]);
                }
                for o in 0..self.out_ch {
                    let row = &values[o * ick..(o + 1) * ick];
                    out[o * t_out + t] = kernels::dot_i8(row, &window) as f32 * combined + bias[o];
                }
            }
            scratch.release_i8(window);
            scratch.release_i8(qx);
        } else {
            kernels::conv1d_forward(
                self.weight.value.data(),
                self.bias.value.data(),
                input,
                self.in_ch,
                self.out_ch,
                self.kernel,
                t_in,
                out,
            );
        }
        Ok(Shape::d2(self.out_ch, t_out))
    }

    fn set_precision(&mut self, precision: Precision) -> Result<(), NnError> {
        self.qweight = match precision {
            Precision::F32 => None,
            Precision::Int8 => Some(QuantizedTensor::quantize(&self.weight.value)),
        };
        Ok(())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .input_cache
            .as_ref()
            .ok_or(NnError::InvalidState("conv backward before forward"))?
            .clone();
        let t_in = input.shape()[1];
        let t_out = t_in - self.kernel + 1;
        if grad_out.shape() != [self.out_ch, t_out] {
            return Err(NnError::ShapeMismatch {
                expected: format!("[{}, {t_out}]", self.out_ch),
                actual: grad_out.shape().to_vec(),
            });
        }

        let mut dx = vec![0.0f32; self.in_ch * t_in];
        {
            let (in_ch, kernel) = (self.in_ch, self.kernel);
            let dw = self.weight.grad.data_mut();
            let db = self.bias.grad.data_mut();
            for (o, db_o) in db.iter_mut().enumerate().take(self.out_ch) {
                for t in 0..t_out {
                    let g = grad_out.data()[o * t_out + t];
                    *db_o += g;
                    for c in 0..in_ch {
                        let in_base = c * t_in + t;
                        let w_base = o * in_ch * kernel + c * kernel;
                        for k in 0..kernel {
                            dw[w_base + k] += g * input.data()[in_base + k];
                        }
                    }
                }
            }
        }
        for o in 0..self.out_ch {
            for t in 0..t_out {
                let g = grad_out.data()[o * t_out + t];
                for c in 0..self.in_ch {
                    for k in 0..self.kernel {
                        dx[c * t_in + t + k] += g * self.w(o, c, k);
                    }
                }
            }
        }
        Tensor::from_vec(dx, &[self.in_ch, t_in])
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn name(&self) -> &'static str {
        "conv1d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_sizes() {
        assert!(Conv1d::new(0, 1, 3, 0).is_err());
        assert!(Conv1d::new(1, 0, 3, 0).is_err());
        assert!(Conv1d::new(1, 1, 0, 0).is_err());
    }

    #[test]
    fn output_time_shrinks_by_kernel_minus_one() {
        let mut c = Conv1d::new(1, 1, 4, 5).unwrap();
        let x = Tensor::zeros(&[1, 10]).unwrap();
        assert_eq!(c.forward(&x, false).unwrap().shape(), &[1, 7]);
    }

    #[test]
    fn rejects_too_short_input() {
        let mut c = Conv1d::new(1, 1, 4, 5).unwrap();
        let x = Tensor::zeros(&[1, 3]).unwrap();
        assert!(c.forward(&x, false).is_err());
    }

    #[test]
    fn identity_kernel_passes_signal_through() {
        let mut c = Conv1d::new(1, 1, 1, 5).unwrap();
        c.weight.value.data_mut()[0] = 1.0;
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y = c.forward(&x, false).unwrap();
        assert_eq!(y.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_convolution() {
        // kernel [1, -1] over [1, 2, 4] -> [1*1 + 2*(-1), 2*1 + 4*(-1)] = [-1, -2]
        let mut c = Conv1d::new(1, 1, 2, 5).unwrap();
        c.weight.value.data_mut().copy_from_slice(&[1.0, -1.0]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 4.0], &[1, 3]).unwrap();
        let y = c.forward(&x, false).unwrap();
        assert_eq!(y.data(), &[-1.0, -2.0]);
    }

    #[test]
    fn forward_scratch_matches_forward_bitwise() {
        let mut c = Conv1d::new(2, 3, 3, 17).unwrap();
        let x =
            Tensor::from_vec((0..22).map(|i| (i as f32 * 0.41).sin()).collect(), &[2, 11]).unwrap();
        let y = c.forward(&x, false).unwrap();
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        let shape = c
            .forward_scratch(x.data(), Shape::d2(2, 11), &mut out, &mut scratch)
            .unwrap();
        assert_eq!(shape.as_slice(), y.shape());
        assert_eq!(out, y.data());
    }

    #[test]
    fn int8_scratch_path_tracks_f32_within_quant_error() {
        let mut c = Conv1d::new(2, 3, 3, 17).unwrap();
        let x: Vec<f32> = (0..22).map(|i| (i as f32 * 0.41).sin()).collect();
        let mut scratch = Scratch::new();
        let mut f32_out = Vec::new();
        c.forward_scratch(&x, Shape::d2(2, 11), &mut f32_out, &mut scratch)
            .unwrap();
        c.set_precision(Precision::Int8).unwrap();
        let mut i8_out = Vec::new();
        let shape = c
            .forward_scratch(&x, Shape::d2(2, 11), &mut i8_out, &mut scratch)
            .unwrap();
        assert_eq!(shape.as_slice(), &[3, 9]);
        for (a, b) in f32_out.iter().zip(&i8_out) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn param_count_matches_formula() {
        let c = Conv1d::new(3, 8, 5, 0).unwrap();
        assert_eq!(c.param_count(), 8 * 3 * 5 + 8);
    }

    #[test]
    fn gradient_check() {
        let mut c = Conv1d::new(2, 3, 3, 17).unwrap();
        let x =
            Tensor::from_vec((0..12).map(|i| (i as f32 * 0.37).sin()).collect(), &[2, 6]).unwrap();
        let y = c.forward(&x, true).unwrap();
        let ones = Tensor::from_vec(vec![1.0; y.len()], y.shape()).unwrap();
        let dx = c.backward(&ones).unwrap();
        let eps = 1e-3;

        // Check one weight and one input gradient by finite differences.
        let widx = 7;
        let analytic_w = c.weight.grad.data()[widx];
        let wv = c.weight.value.data()[widx];
        c.weight.value.data_mut()[widx] = wv + eps;
        let yp: f32 = c.forward(&x, true).unwrap().data().iter().sum();
        c.weight.value.data_mut()[widx] = wv - eps;
        let ym: f32 = c.forward(&x, true).unwrap().data().iter().sum();
        c.weight.value.data_mut()[widx] = wv;
        let numeric_w = (yp - ym) / (2.0 * eps);
        assert!(
            (analytic_w - numeric_w).abs() < 1e-2,
            "{analytic_w} vs {numeric_w}"
        );

        let xidx = 4;
        let mut xp = x.clone();
        xp.data_mut()[xidx] += eps;
        let mut xm = x.clone();
        xm.data_mut()[xidx] -= eps;
        let yp: f32 = c.forward(&xp, true).unwrap().data().iter().sum();
        let ym: f32 = c.forward(&xm, true).unwrap().data().iter().sum();
        let numeric_x = (yp - ym) / (2.0 * eps);
        assert!((dx.data()[xidx] - numeric_x).abs() < 1e-2);
    }

    #[test]
    fn backward_shape_checked() {
        let mut c = Conv1d::new(1, 2, 2, 1).unwrap();
        c.forward(&Tensor::zeros(&[1, 5]).unwrap(), true).unwrap();
        assert!(c.backward(&Tensor::zeros(&[2, 5]).unwrap()).is_err());
    }
}
