//! Reusable inference workspace.
//!
//! [`Scratch`] is a small buffer pool threaded through the scratch-based
//! forward path ([`crate::model::Sequential::forward_with`]). Layers acquire
//! temporaries from the pool and release them when done; once every buffer in
//! rotation has grown to the largest size the model needs, a steady-state
//! forward pass performs **zero heap allocations** (verified by the counting
//! allocator tests in `crates/alloc-counter`).
//!
//! [`Shape`] is a `Copy` stand-in for the `Vec<usize>` shapes the tensor API
//! uses, so shape bookkeeping along the scratch path is allocation-free too.

use crate::NnError;

/// Maximum rank the scratch path supports (the classifier models use 1-D
/// vectors and 2-D `[channels/time, ...]` maps).
const MAX_RANK: usize = 3;

/// A copyable tensor shape of rank 1..=3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Rank-1 shape `[n]`.
    pub fn d1(n: usize) -> Self {
        Self {
            dims: [n, 0, 0],
            rank: 1,
        }
    }

    /// Rank-2 shape `[a, b]`.
    pub fn d2(a: usize, b: usize) -> Self {
        Self {
            dims: [a, b, 0],
            rank: 2,
        }
    }

    /// Builds a shape from a slice.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for an empty slice or rank
    /// above 3.
    pub fn from_slice(shape: &[usize]) -> Result<Self, NnError> {
        if shape.is_empty() || shape.len() > MAX_RANK {
            return Err(NnError::InvalidParameter {
                name: "shape",
                reason: "scratch shapes must have rank 1..=3",
            });
        }
        let mut dims = [0usize; MAX_RANK];
        dims[..shape.len()].copy_from_slice(shape);
        Ok(Self {
            dims,
            rank: shape.len() as u8,
        })
    }

    /// The dimensions as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.as_slice().iter().product()
    }

    /// `true` when any dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A pool of reusable `f32` buffers plus the model-output slot.
///
/// `acquire` hands out the smallest pooled buffer whose capacity fits the
/// request (growing it in place when none fits), `release` returns a buffer
/// to the pool. Buffer capacities only ever grow, so after a few warm-up
/// passes through a fixed model the pool reaches a fixed point and no call
/// allocates.
///
/// Int8 inference temporaries live in a **separate** `i8` pool
/// ([`Scratch::acquire_i8`]/[`Scratch::release_i8`]): quantized activation
/// buffers are typically much smaller than the f32 activations, and letting
/// them compete in one best-fit pool would steal the tight-fitting f32
/// buffers and re-grow them every window. Keeping the element types apart
/// makes mixed f32/i8 sessions reach the same zero-allocation fixed point
/// as pure-f32 ones (verified by `crates/alloc-counter`).
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
    pool_i8: Vec<Vec<i8>>,
    out: Vec<f32>,
    alloc_events: u64,
    reuse_events: u64,
}

impl Scratch {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrows a zeroed buffer of exactly `len` elements from the pool,
    /// preferring the smallest pooled buffer that already has the capacity.
    pub fn acquire(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<usize> = None;
        for (i, b) in self.pool.iter().enumerate() {
            if b.capacity() >= len && best.is_none_or(|j| b.capacity() < self.pool[j].capacity()) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                self.reuse_events += 1;
                let mut v = self.pool.swap_remove(i);
                v.clear();
                v.resize(len, 0.0);
                v
            }
            None => {
                self.alloc_events += 1;
                vec![0.0; len]
            }
        }
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn release(&mut self, buf: Vec<f32>) {
        self.pool.push(buf);
    }

    /// Borrows a zeroed `i8` buffer of exactly `len` elements from the
    /// int8 pool, preferring the smallest pooled buffer that already has
    /// the capacity. Same best-fit discipline (and the same alloc/reuse
    /// counters) as [`Scratch::acquire`], but over a pool that never mixes
    /// with the f32 buffers.
    pub fn acquire_i8(&mut self, len: usize) -> Vec<i8> {
        let mut best: Option<usize> = None;
        for (i, b) in self.pool_i8.iter().enumerate() {
            if b.capacity() >= len && best.is_none_or(|j| b.capacity() < self.pool_i8[j].capacity())
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                self.reuse_events += 1;
                let mut v = self.pool_i8.swap_remove(i);
                v.clear();
                v.resize(len, 0);
                v
            }
            None => {
                self.alloc_events += 1;
                vec![0; len]
            }
        }
    }

    /// Returns an `i8` buffer to the int8 pool for later reuse.
    pub fn release_i8(&mut self, buf: Vec<i8>) {
        self.pool_i8.push(buf);
    }

    /// Installs `v` as the output slot, recycling the previous output into
    /// the pool, and returns a view of it.
    pub(crate) fn install_out(&mut self, v: Vec<f32>) -> &[f32] {
        let old = std::mem::replace(&mut self.out, v);
        self.pool.push(old);
        &self.out
    }

    /// The most recent model output written by `forward_with`.
    pub fn out(&self) -> &[f32] {
        &self.out
    }

    /// Mutable view of the output slot (softmax-in-place).
    pub(crate) fn out_mut(&mut self) -> &mut [f32] {
        &mut self.out
    }

    /// Number of `acquire` calls that had to allocate a fresh buffer.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// Number of `acquire` calls satisfied from the pool.
    pub fn reuse_events(&self) -> u64 {
        self.reuse_events
    }

    /// Resets both counters (e.g. after warm-up).
    pub fn reset_counters(&mut self) {
        self.alloc_events = 0;
        self.reuse_events = 0;
    }

    /// Bytes currently held by the pools and the output slot (capacity, not
    /// length — this is what the allocator actually retains). Memory-budget
    /// accounting samples this only when [`Scratch::alloc_events`] changed,
    /// so a steady-state window never pays for the walk.
    pub fn pooled_bytes(&self) -> usize {
        let f32_bytes: usize = self
            .pool
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<f32>())
            .sum();
        let i8_bytes: usize = self.pool_i8.iter().map(|b| b.capacity()).sum();
        f32_bytes + i8_bytes + self.out.capacity() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_round_trips() {
        let s = Shape::from_slice(&[3, 4]).unwrap();
        assert_eq!(s.as_slice(), &[3, 4]);
        assert_eq!(s.len(), 12);
        assert_eq!(s, Shape::d2(3, 4));
        assert_eq!(Shape::d1(5).as_slice(), &[5]);
        assert!(Shape::from_slice(&[]).is_err());
        assert!(Shape::from_slice(&[1, 2, 3, 4]).is_err());
    }

    #[test]
    fn acquire_reuses_released_buffers() {
        let mut s = Scratch::new();
        let a = s.acquire(16);
        assert_eq!(s.alloc_events(), 1);
        s.release(a);
        let b = s.acquire(8);
        assert_eq!(s.reuse_events(), 1);
        assert_eq!(s.alloc_events(), 1);
        assert_eq!(b.len(), 8);
        assert!(b.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn acquire_prefers_tightest_fit() {
        let mut s = Scratch::new();
        let big = s.acquire(64);
        let small = s.acquire(8);
        s.release(big);
        s.release(small);
        let got = s.acquire(8);
        assert!(got.capacity() < 64, "should pick the 8-cap buffer");
        s.release(got);
        let got = s.acquire(32);
        assert!(got.capacity() >= 64, "only the big buffer fits");
    }

    #[test]
    fn i8_pool_is_disjoint_from_f32_pool() {
        let mut s = Scratch::new();
        // Seed the f32 pool with a tight-fitting buffer.
        let f = s.acquire(64);
        s.release(f);
        s.reset_counters();
        // i8 acquires must not consume (or re-grow) the f32 buffer.
        let q = s.acquire_i8(64);
        assert_eq!(s.alloc_events(), 1, "first i8 acquire is a fresh buffer");
        s.release_i8(q);
        let q = s.acquire_i8(32);
        assert_eq!(s.reuse_events(), 1, "second i8 acquire reuses the i8 pool");
        assert!(q.iter().all(|&x| x == 0));
        s.release_i8(q);
        // The f32 buffer is still there, untouched by the i8 traffic.
        s.reset_counters();
        let f = s.acquire(64);
        assert_eq!(s.alloc_events(), 0);
        assert_eq!(s.reuse_events(), 1);
        s.release(f);
    }

    #[test]
    fn mixed_f32_i8_reaches_alloc_free_fixed_point() {
        let mut s = Scratch::new();
        for _ in 0..3 {
            let a = s.acquire(48);
            let q = s.acquire_i8(48);
            let b = s.acquire(26);
            s.release(a);
            s.release_i8(q);
            s.release(b);
        }
        s.reset_counters();
        for _ in 0..10 {
            let a = s.acquire(48);
            let q = s.acquire_i8(48);
            let b = s.acquire(26);
            s.release(a);
            s.release_i8(q);
            s.release(b);
        }
        assert_eq!(s.alloc_events(), 0);
        assert_eq!(s.reuse_events(), 30);
    }

    #[test]
    fn pool_reaches_alloc_free_fixed_point() {
        let mut s = Scratch::new();
        for _ in 0..3 {
            let a = s.acquire(26);
            let b = s.acquire(48);
            s.release(a);
            s.release(b);
        }
        s.reset_counters();
        for _ in 0..10 {
            let a = s.acquire(26);
            let b = s.acquire(48);
            s.release(a);
            s.release(b);
        }
        assert_eq!(s.alloc_events(), 0);
        assert_eq!(s.reuse_events(), 20);
    }
}
