//! Loss functions.

use crate::{NnError, Tensor};

/// Numerically stable softmax of a logit vector.
///
/// # Example
///
/// ```
/// use nn::loss::softmax;
/// let p = softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = logits.to_vec();
    softmax_in_place(&mut out);
    out
}

/// [`softmax`] applied in place, allocation-free; bit-for-bit identical to
/// the allocating variant.
pub fn softmax_in_place(logits: &mut [f32]) {
    let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    for x in logits.iter_mut() {
        *x = (*x - max).exp();
    }
    let sum: f32 = logits.iter().sum();
    for x in logits.iter_mut() {
        *x /= sum;
    }
}

/// [`softmax`] writing into a caller-provided buffer (resized to
/// `logits.len()`), allocation-free once the buffer has capacity.
pub fn softmax_into(logits: &[f32], out: &mut Vec<f32>) {
    out.clear();
    out.extend_from_slice(logits);
    softmax_in_place(out);
}

/// Softmax cross-entropy loss against an integer class label.
///
/// Returns `(loss, grad_logits)` — the gradient is with respect to the raw
/// logits (the standard fused form `softmax(z) - onehot(y)`), ready to feed
/// into the last layer's `backward`.
///
/// # Errors
///
/// Returns [`NnError::LabelOutOfRange`] when `label >= logits.len()` and
/// [`NnError::ShapeMismatch`] when `logits` is not 1-D.
///
/// # Example
///
/// ```
/// use nn::loss::cross_entropy;
/// use nn::Tensor;
/// # fn main() -> Result<(), nn::NnError> {
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0], &[3])?;
/// let (loss, grad) = cross_entropy(&logits, 0)?;
/// assert!(loss < 0.5); // correct class already dominant
/// assert!(grad.data()[0] < 0.0); // push class 0 up
/// # Ok(())
/// # }
/// ```
pub fn cross_entropy(logits: &Tensor, label: usize) -> Result<(f32, Tensor), NnError> {
    if logits.shape().len() != 1 {
        return Err(NnError::ShapeMismatch {
            expected: "1-d logits".into(),
            actual: logits.shape().to_vec(),
        });
    }
    let n = logits.len();
    if label >= n {
        return Err(NnError::LabelOutOfRange { label, classes: n });
    }
    let probs = softmax(logits.data());
    let loss = -(probs[label].max(1e-12)).ln();
    let mut grad = probs;
    grad[label] -= 1.0;
    Ok((loss, Tensor::from_vec(grad, &[n])?))
}

/// Mean squared error between prediction and target vectors.
///
/// Returns `(loss, grad_pred)` with `loss = mean((p - t)^2)` and
/// `grad = 2 (p - t) / n`.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] when the shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor), NnError> {
    if pred.shape() != target.shape() {
        return Err(NnError::ShapeMismatch {
            expected: format!("{:?}", pred.shape()),
            actual: target.shape().to_vec(),
        });
    }
    let n = pred.len() as f32;
    let mut grad = vec![0.0f32; pred.len()];
    let mut loss = 0.0f32;
    for (i, (&p, &t)) in pred.data().iter().zip(target.data()).enumerate() {
        let d = p - t;
        loss += d * d;
        grad[i] = 2.0 * d / n;
    }
    Ok((loss / n, Tensor::from_vec(grad, pred.shape())?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[0.1, -2.0, 3.5, 1.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn softmax_variants_agree_bitwise() {
        let logits = [0.1f32, -2.0, 3.5, 1.0];
        let reference = softmax(&logits);
        let mut in_place = logits;
        softmax_in_place(&mut in_place);
        assert_eq!(reference, in_place);
        let mut into = Vec::new();
        softmax_into(&logits, &mut into);
        assert_eq!(reference, into);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-5);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn cross_entropy_of_uniform_is_log_n() {
        let logits = Tensor::from_vec(vec![0.0; 4], &[4]).unwrap();
        let (loss, _) = cross_entropy(&logits, 2).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_sums_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]).unwrap();
        let (_, grad) = cross_entropy(&logits, 1).unwrap();
        assert!(grad.data().iter().sum::<f32>().abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_rejects_bad_label() {
        let logits = Tensor::from_vec(vec![0.0; 3], &[3]).unwrap();
        assert_eq!(
            cross_entropy(&logits, 3),
            Err(NnError::LabelOutOfRange {
                label: 3,
                classes: 3
            })
        );
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let logits = Tensor::from_vec(vec![0.4, -0.9, 1.2], &[3]).unwrap();
        let (_, grad) = cross_entropy(&logits, 0).unwrap();
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (loss_p, _) = cross_entropy(&lp, 0).unwrap();
            let (loss_m, _) = cross_entropy(&lm, 0).unwrap();
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!((grad.data()[i] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn mse_zero_for_equal_inputs() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let (loss, grad) = mse(&a, &a.clone()).unwrap();
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_known_value() {
        let p = Tensor::from_vec(vec![1.0, 3.0], &[2]).unwrap();
        let t = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let (loss, _) = mse(&p, &t).unwrap();
        assert!((loss - 5.0).abs() < 1e-6);
    }

    #[test]
    fn mse_rejects_shape_mismatch() {
        let p = Tensor::zeros(&[2]).unwrap();
        let t = Tensor::zeros(&[3]).unwrap();
        assert!(mse(&p, &t).is_err());
    }
}
