//! Weight initialization schemes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic RNG used by all layer initializers, seeded per layer so a
/// model built with the same seeds is bit-for-bit reproducible.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Glorot/Xavier uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suits tanh/sigmoid layers (LSTM).
pub fn xavier_uniform(rng: &mut StdRng, fan_in: usize, fan_out: usize, n: usize) -> Vec<f32> {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    (0..n).map(|_| rng.random_range(-a..a)).collect()
}

/// He/Kaiming uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / fan_in)`. Suits ReLU layers (dense, conv).
pub fn he_uniform(rng: &mut StdRng, fan_in: usize, n: usize) -> Vec<f32> {
    let a = (6.0 / fan_in as f32).sqrt();
    (0..n).map(|_| rng.random_range(-a..a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let a = xavier_uniform(&mut seeded_rng(42), 10, 10, 32);
        let b = xavier_uniform(&mut seeded_rng(42), 10, 10, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_weights() {
        let a = he_uniform(&mut seeded_rng(1), 10, 32);
        let b = he_uniform(&mut seeded_rng(2), 10, 32);
        assert_ne!(a, b);
    }

    #[test]
    fn xavier_bounded() {
        let a = (6.0f32 / 20.0).sqrt();
        for w in xavier_uniform(&mut seeded_rng(3), 10, 10, 1000) {
            assert!(w.abs() <= a);
        }
    }

    #[test]
    fn he_bounded() {
        let a = (6.0f32 / 10.0).sqrt();
        for w in he_uniform(&mut seeded_rng(4), 10, 1000) {
            assert!(w.abs() <= a);
        }
    }

    #[test]
    fn initialization_is_roughly_zero_mean() {
        let ws = he_uniform(&mut seeded_rng(5), 16, 10_000);
        let mean: f32 = ws.iter().sum::<f32>() / ws.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }
}
