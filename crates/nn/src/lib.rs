//! A small from-scratch neural-network library powering the affect
//! classifiers of the `affectsys` reproduction (DAC 2022).
//!
//! The paper compares three classifier families on emotional-speech corpora:
//! a multi-layer perceptron ("NN"), a 1-D convolutional network ("CNN"), and
//! a long short-term memory network ("LSTM"), each small enough to deploy on
//! a wearable, plus an 8-bit post-training quantization study. This crate
//! implements everything those experiments need:
//!
//! * [`tensor::Tensor`] — a dense row-major tensor with the handful of ops
//!   the layers require,
//! * [`kernels`] — register-blocked matrix–vector and convolution kernels
//!   (bit-for-bit equal to the naive loops) plus a fused i8×i8→i32 path,
//! * [`scratch`] — a reusable inference workspace so the steady-state
//!   forward pass allocates nothing,
//! * [`layers`] — `Dense`, `Conv1d`, `MaxPool1d`, `Lstm`, activations,
//!   `Dropout`, `Flatten`, all with hand-written backward passes,
//! * [`model::Sequential`] — layer composition, forward/backward, prediction,
//! * [`loss`] — softmax cross-entropy (and MSE),
//! * [`optim`] — SGD with momentum and Adam,
//! * [`train`] — a minibatch training loop with shuffling,
//! * [`quant`] — per-tensor affine int8 weight quantization and a quantized
//!   inference path (for the Fig. 3(c)/(d) experiments), selectable at run
//!   time per model via [`Sequential::set_precision`],
//! * [`hdc`] — a hyperdimensional-computing affect classifier (binary
//!   hypervectors, XOR bind / majority bundle, Hamming lookup) that forms
//!   the integer-only bottom rung of the runtime degradation ladder,
//! * [`metrics`] — accuracy and confusion matrices (Fig. 3(a)).
//!
//! # Example
//!
//! Train a tiny MLP on a linearly separable toy problem:
//!
//! ```
//! use nn::layers::{Activation, Dense};
//! use nn::model::Sequential;
//! use nn::optim::Sgd;
//! use nn::tensor::Tensor;
//! use nn::train::{fit, FitConfig};
//!
//! # fn main() -> Result<(), nn::NnError> {
//! let mut model = Sequential::new();
//! model.push(Dense::new(2, 8, 1)?);
//! model.push(Activation::relu());
//! model.push(Dense::new(8, 2, 2)?);
//!
//! // Class 0 below the diagonal, class 1 above it.
//! let xs: Vec<Tensor> = (0..40)
//!     .map(|i| {
//!         let a = (i % 10) as f32 / 10.0;
//!         let b = (i / 10) as f32 / 4.0;
//!         Tensor::from_vec(vec![a, b], &[2]).unwrap()
//!     })
//!     .collect();
//! let ys: Vec<usize> = xs
//!     .iter()
//!     .map(|x| usize::from(x.data()[1] > x.data()[0]))
//!     .collect();
//!
//! let mut opt = Sgd::new(0.5, 0.9);
//! let cfg = FitConfig { epochs: 60, batch_size: 8, seed: 7, verbose: false };
//! fit(&mut model, &xs, &ys, &mut opt, &cfg)?;
//! let acc = nn::metrics::accuracy(&mut model, &xs, &ys)?;
//! assert!(acc >= 0.85, "accuracy {acc}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod hdc;
pub mod init;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod quant;
pub mod scratch;
pub mod serialize;
pub mod tensor;
pub mod train;

pub use error::NnError;
pub use model::Sequential;
pub use quant::Precision;
pub use scratch::{Scratch, Shape};
pub use tensor::Tensor;
