//! Cache-blocked matrix kernels for the inference hot path.
//!
//! The classifier forward passes reduce to matrix–vector products (`Dense`,
//! the LSTM gate pre-activations) and a sliding dot product (`Conv1d`). The
//! naive loops touch the input vector once per output row, so for an
//! `[m, n]` weight matrix the vector is streamed from cache `m` times. The
//! kernels here register-block four rows (or four output positions for the
//! convolution) per pass: the vector is loaded once per *panel*, quartering
//! the load traffic, and the four independent accumulator chains keep the
//! FPU pipeline full.
//!
//! Every kernel preserves the naive loop's per-output accumulation order —
//! a single accumulator per output, summed over the reduction index in
//! ascending order — so results are **bit-for-bit identical** to the
//! straightforward triple loop (property-tested in `tests/proptests.rs`).
//! That keeps the blocked kernels drop-in replacements under the exact
//! equality assertions sprinkled through the layer tests.

/// Number of output rows processed per register-blocked panel.
const PANEL: usize = 4;

/// `y = A · x` for a row-major `[m, n]` matrix.
///
/// # Panics
///
/// Debug-asserts the slice lengths; callers validate shapes beforehand.
pub fn gemv(a: &[f32], m: usize, n: usize, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(y.len(), m);
    let mut row = 0;
    while row + PANEL <= m {
        let r0 = &a[row * n..row * n + n];
        let r1 = &a[(row + 1) * n..(row + 1) * n + n];
        let r2 = &a[(row + 2) * n..(row + 2) * n + n];
        let r3 = &a[(row + 3) * n..(row + 3) * n + n];
        let (mut acc0, mut acc1, mut acc2, mut acc3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for (j, &xj) in x.iter().enumerate() {
            acc0 += r0[j] * xj;
            acc1 += r1[j] * xj;
            acc2 += r2[j] * xj;
            acc3 += r3[j] * xj;
        }
        y[row] = acc0;
        y[row + 1] = acc1;
        y[row + 2] = acc2;
        y[row + 3] = acc3;
        row += PANEL;
    }
    for r in row..m {
        let a_row = &a[r * n..r * n + n];
        let mut acc = 0.0f32;
        for (j, &xj) in x.iter().enumerate() {
            acc += a_row[j] * xj;
        }
        y[r] = acc;
    }
}

/// `y = Aᵀ · x` for a row-major `[m, n]` matrix (`x` has length `m`, `y`
/// length `n`).
///
/// Processes four source rows per pass so each output column's partial sums
/// stay in registers; the per-output add order over `i` is ascending,
/// matching the naive loop exactly.
pub fn gemv_t(a: &[f32], m: usize, n: usize, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(x.len(), m);
    debug_assert_eq!(y.len(), n);
    y.fill(0.0);
    let mut row = 0;
    while row + PANEL <= m {
        let r0 = &a[row * n..row * n + n];
        let r1 = &a[(row + 1) * n..(row + 1) * n + n];
        let r2 = &a[(row + 2) * n..(row + 2) * n + n];
        let r3 = &a[(row + 3) * n..(row + 3) * n + n];
        let (x0, x1, x2, x3) = (x[row], x[row + 1], x[row + 2], x[row + 3]);
        for (j, yj) in y.iter_mut().enumerate() {
            let mut t = *yj;
            t += r0[j] * x0;
            t += r1[j] * x1;
            t += r2[j] * x2;
            t += r3[j] * x3;
            *yj = t;
        }
        row += PANEL;
    }
    for r in row..m {
        let a_row = &a[r * n..r * n + n];
        let xr = x[r];
        for (j, yj) in y.iter_mut().enumerate() {
            *yj += a_row[j] * xr;
        }
    }
}

/// Valid 1-D convolution over `[in_ch, t_in]` input with `[out_ch,
/// in_ch · kernel]` weights, writing `[out_ch, t_out]` where
/// `t_out = t_in - kernel + 1`.
///
/// Broadcast-axpy form, register-blocked over four output channels: for
/// each `(c, k)` tap the four weight scalars sweep their whole output rows
/// against one shared contiguous input window, so the innermost loops
/// vectorize and the per-tap slice overhead is amortized 4×. Every output
/// element still accumulates in the naive order (bias first, then channels
/// ascending, taps ascending), so results match the triple loop
/// bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn conv1d_forward(
    w: &[f32],
    bias: &[f32],
    input: &[f32],
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    t_in: usize,
    out: &mut [f32],
) {
    let t_out = t_in - kernel + 1;
    let ick = in_ch * kernel;
    debug_assert_eq!(w.len(), out_ch * ick);
    debug_assert_eq!(bias.len(), out_ch);
    debug_assert_eq!(input.len(), in_ch * t_in);
    debug_assert_eq!(out.len(), out_ch * t_out);

    let quads = out_ch / PANEL;
    let mut quad_rows = out.chunks_exact_mut(PANEL * t_out);
    for (q, quad) in quad_rows.by_ref().enumerate() {
        let o = q * PANEL;
        let (r0, rest) = quad.split_at_mut(t_out);
        let (r1, rest) = rest.split_at_mut(t_out);
        let (r2, r3) = rest.split_at_mut(t_out);
        r0.fill(bias[o]);
        r1.fill(bias[o + 1]);
        r2.fill(bias[o + 2]);
        r3.fill(bias[o + 3]);
        for c in 0..in_ch {
            let x_c = &input[c * t_in..(c + 1) * t_in];
            for k in 0..kernel {
                let wi = o * ick + c * kernel + k;
                let (w0, w1, w2, w3) = (w[wi], w[wi + ick], w[wi + 2 * ick], w[wi + 3 * ick]);
                let window = &x_c[k..k + t_out];
                for t in 0..t_out {
                    let xv = window[t];
                    r0[t] += w0 * xv;
                    r1[t] += w1 * xv;
                    r2[t] += w2 * xv;
                    r3[t] += w3 * xv;
                }
            }
        }
    }
    for o in quads * PANEL..out_ch {
        let w_o = &w[o * ick..(o + 1) * ick];
        let out_o = &mut out[o * t_out..(o + 1) * t_out];
        out_o.fill(bias[o]);
        for c in 0..in_ch {
            let x_c = &input[c * t_in..(c + 1) * t_in];
            let w_c = &w_o[c * kernel..(c + 1) * kernel];
            for (k, &wv) in w_c.iter().enumerate() {
                for (ov, &xv) in out_o.iter_mut().zip(&x_c[k..k + t_out]) {
                    *ov += wv * xv;
                }
            }
        }
    }
}

/// Fused i8×i8→i32 dot product with four-way unrolled accumulation.
///
/// Integer addition is associative, so the unroll is exact; the widening to
/// `i32` happens per product, which cannot overflow for any `len` below
/// `2^16` (each product is at most `127 · 127`).
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0i32, 0i32, 0i32, 0i32);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        s0 += i32::from(ca[0]) * i32::from(cb[0]);
        s1 += i32::from(ca[1]) * i32::from(cb[1]);
        s2 += i32::from(ca[2]) * i32::from(cb[2]);
        s3 += i32::from(ca[3]) * i32::from(cb[3]);
    }
    let mut tail = 0i32;
    for (&xa, &xb) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += i32::from(xa) * i32::from(xb);
    }
    s0 + s1 + s2 + s3 + tail
}

/// Quantized `y = Wq · xq` for a row-major `[m, n]` int8 matrix, producing
/// raw `i32` accumulators (callers apply the combined scale).
pub fn gemv_i8(w: &[i8], m: usize, n: usize, x: &[i8], y: &mut [i32]) {
    debug_assert_eq!(w.len(), m * n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(y.len(), m);
    for (r, yr) in y.iter_mut().enumerate() {
        *yr = dot_i8(&w[r * n..r * n + n], x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemv(a: &[f32], m: usize, n: usize, x: &[f32]) -> Vec<f32> {
        (0..m)
            .map(|r| {
                let mut acc = 0.0f32;
                for j in 0..n {
                    acc += a[r * n + j] * x[j];
                }
                acc
            })
            .collect()
    }

    fn naive_gemv_t(a: &[f32], m: usize, n: usize, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; n];
        for i in 0..m {
            for (j, yj) in y.iter_mut().enumerate() {
                *yj += a[i * n + j] * x[i];
            }
        }
        y
    }

    fn ramp(len: usize, scale: f32) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 37 % 23) as f32 - 11.0) * scale)
            .collect()
    }

    #[test]
    fn gemv_matches_naive_bitwise() {
        for (m, n) in [(1, 1), (3, 5), (4, 4), (7, 9), (16, 33), (33, 16)] {
            let a = ramp(m * n, 0.037);
            let x = ramp(n, 0.11);
            let mut y = vec![0.0f32; m];
            gemv(&a, m, n, &x, &mut y);
            assert_eq!(y, naive_gemv(&a, m, n, &x), "{m}x{n}");
        }
    }

    #[test]
    fn gemv_t_matches_naive_bitwise() {
        for (m, n) in [(1, 1), (3, 5), (4, 4), (7, 9), (16, 33), (33, 16)] {
            let a = ramp(m * n, 0.037);
            let x = ramp(m, 0.11);
            let mut y = vec![0.0f32; n];
            gemv_t(&a, m, n, &x, &mut y);
            assert_eq!(y, naive_gemv_t(&a, m, n, &x), "{m}x{n}");
        }
    }

    #[test]
    fn conv_matches_naive_bitwise() {
        let (in_ch, out_ch, kernel, t_in) = (3, 5, 4, 21);
        let t_out = t_in - kernel + 1;
        let w = ramp(out_ch * in_ch * kernel, 0.09);
        let bias = ramp(out_ch, 0.5);
        let input = ramp(in_ch * t_in, 0.21);
        let mut out = vec![0.0f32; out_ch * t_out];
        conv1d_forward(&w, &bias, &input, in_ch, out_ch, kernel, t_in, &mut out);

        let mut naive = vec![0.0f32; out_ch * t_out];
        for o in 0..out_ch {
            for t in 0..t_out {
                let mut acc = bias[o];
                for c in 0..in_ch {
                    for k in 0..kernel {
                        acc += w[o * in_ch * kernel + c * kernel + k] * input[c * t_in + t + k];
                    }
                }
                naive[o * t_out + t] = acc;
            }
        }
        assert_eq!(out, naive);
    }

    #[test]
    fn dot_i8_exact() {
        let a: Vec<i8> = (0..13).map(|i| (i * 17 % 255) as i8).collect();
        let b: Vec<i8> = (0..13).map(|i| (i * 29 % 255) as i8).collect();
        let expected: i32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        assert_eq!(dot_i8(&a, &b), expected);
    }

    #[test]
    fn gemv_i8_rows_are_dots() {
        let w: Vec<i8> = (0..12).map(|i| (i as i8) - 6).collect();
        let x: Vec<i8> = vec![1, -2, 3, -4];
        let mut y = vec![0i32; 3];
        gemv_i8(&w, 3, 4, &x, &mut y);
        for r in 0..3 {
            assert_eq!(y[r], dot_i8(&w[r * 4..(r + 1) * 4], &x));
        }
    }
}
