//! Minibatch training loop.

use crate::model::Sequential;
use crate::optim::Optimizer;
use crate::{NnError, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for [`fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitConfig {
    /// Number of full passes over the training set.
    pub epochs: usize,
    /// Samples per optimizer step.
    pub batch_size: usize,
    /// Shuffle seed (training is fully deterministic given the seed).
    pub seed: u64,
    /// Print a loss line per epoch to stderr.
    pub verbose: bool,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self {
            epochs: 20,
            batch_size: 16,
            seed: 0,
            verbose: false,
        }
    }
}

/// Per-epoch training history returned by [`fit`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FitHistory {
    /// Mean training loss per epoch.
    pub epoch_loss: Vec<f32>,
}

impl FitHistory {
    /// Final epoch's mean loss, or `None` before any training.
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_loss.last().copied()
    }
}

/// Trains `model` on `(inputs, labels)` with softmax cross-entropy.
///
/// Shuffles each epoch with a deterministic RNG, accumulates gradients over
/// `batch_size` samples, and applies one averaged optimizer step per batch.
///
/// # Errors
///
/// Returns [`NnError::InvalidParameter`] when `inputs` and `labels` differ in
/// length, the dataset is empty, or `batch_size`/`epochs` is zero; propagates
/// model and optimizer errors.
///
/// # Example
///
/// See the crate-level example in [`crate`].
pub fn fit(
    model: &mut Sequential,
    inputs: &[Tensor],
    labels: &[usize],
    optimizer: &mut dyn Optimizer,
    config: &FitConfig,
) -> Result<FitHistory, NnError> {
    if inputs.len() != labels.len() {
        return Err(NnError::InvalidParameter {
            name: "inputs/labels",
            reason: "must have the same length",
        });
    }
    if inputs.is_empty() {
        return Err(NnError::InvalidParameter {
            name: "inputs",
            reason: "training set is empty",
        });
    }
    if config.batch_size == 0 || config.epochs == 0 {
        return Err(NnError::InvalidParameter {
            name: "batch_size/epochs",
            reason: "must be non-zero",
        });
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    let mut history = FitHistory::default();

    for epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        for batch in order.chunks(config.batch_size) {
            model.zero_grad();
            for &idx in batch {
                epoch_loss += f64::from(model.train_step(&inputs[idx], labels[idx])?);
            }
            let scale = 1.0 / batch.len() as f32;
            optimizer.step(&mut model.params_mut(), scale)?;
        }
        let mean = (epoch_loss / inputs.len() as f64) as f32;
        history.epoch_loss.push(mean);
        if config.verbose {
            eprintln!("epoch {epoch:>3}: loss {mean:.4}");
        }
    }
    Ok(history)
}

/// A held-out validation set for [`fit_with_early_stopping`].
#[derive(Debug, Clone, Copy)]
pub struct ValidationSet<'a> {
    /// Validation inputs.
    pub inputs: &'a [Tensor],
    /// Validation labels.
    pub labels: &'a [usize],
}

/// Trains with a held-out validation set and early stopping: training halts
/// when validation accuracy has not improved for `patience` consecutive
/// epochs, and the best-epoch weights are restored.
///
/// Returns `(history, best_validation_accuracy)`.
///
/// # Errors
///
/// Same conditions as [`fit`], plus [`NnError::InvalidParameter`] for an
/// empty validation set or zero `patience`.
pub fn fit_with_early_stopping(
    model: &mut Sequential,
    inputs: &[Tensor],
    labels: &[usize],
    validation: ValidationSet<'_>,
    optimizer: &mut dyn Optimizer,
    config: &FitConfig,
    patience: usize,
) -> Result<(FitHistory, f32), NnError> {
    let (val_inputs, val_labels) = (validation.inputs, validation.labels);
    if val_inputs.is_empty() || val_inputs.len() != val_labels.len() {
        return Err(NnError::InvalidParameter {
            name: "validation",
            reason: "validation set must be non-empty and equal length",
        });
    }
    if patience == 0 {
        return Err(NnError::InvalidParameter {
            name: "patience",
            reason: "must be non-zero",
        });
    }

    let mut history = FitHistory::default();
    let mut best_accuracy = -1.0f32;
    let mut best_weights: Vec<u8> = Vec::new();
    let mut since_best = 0usize;
    let per_epoch = FitConfig {
        epochs: 1,
        ..config.clone()
    };
    for epoch in 0..config.epochs {
        // Derive a fresh shuffle seed per epoch so single-epoch calls do
        // not repeat the same order.
        let epoch_config = FitConfig {
            seed: config.seed.wrapping_add(epoch as u64),
            ..per_epoch.clone()
        };
        let h = fit(model, inputs, labels, optimizer, &epoch_config)?;
        history.epoch_loss.extend(h.epoch_loss);

        let accuracy = crate::metrics::accuracy(model, val_inputs, val_labels)?;
        if accuracy > best_accuracy {
            best_accuracy = accuracy;
            best_weights = crate::serialize::save_weights(model);
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= patience {
                break;
            }
        }
    }
    if !best_weights.is_empty() {
        crate::serialize::load_weights(model, &best_weights)?;
    }
    Ok((history, best_accuracy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Dense};
    use crate::optim::{Adam, Sgd};

    fn xor_data() -> (Vec<Tensor>, Vec<usize>) {
        let pts = [
            ([0.0f32, 0.0], 0usize),
            ([0.0, 1.0], 1),
            ([1.0, 0.0], 1),
            ([1.0, 1.0], 0),
        ];
        let xs = pts
            .iter()
            .map(|(p, _)| Tensor::from_vec(p.to_vec(), &[2]).unwrap())
            .collect();
        let ys = pts.iter().map(|&(_, y)| y).collect();
        (xs, ys)
    }

    fn xor_model(seed: u64) -> Sequential {
        let mut m = Sequential::new();
        m.push(Dense::new(2, 8, seed).unwrap());
        m.push(Activation::tanh());
        m.push(Dense::new(8, 2, seed + 1).unwrap());
        m
    }

    #[test]
    fn validates_arguments() {
        let (xs, mut ys) = xor_data();
        let mut m = xor_model(0);
        let mut opt = Sgd::new(0.1, 0.0);
        ys.pop();
        assert!(fit(&mut m, &xs, &ys, &mut opt, &FitConfig::default()).is_err());
        let cfg = FitConfig {
            batch_size: 0,
            ..FitConfig::default()
        };
        let (xs, ys) = xor_data();
        assert!(fit(&mut m, &xs, &ys, &mut opt, &cfg).is_err());
        assert!(fit(&mut m, &[], &[], &mut opt, &FitConfig::default()).is_err());
    }

    #[test]
    fn learns_xor_with_adam() {
        let (xs, ys) = xor_data();
        let mut m = xor_model(5);
        let mut opt = Adam::new(0.05);
        let cfg = FitConfig {
            epochs: 300,
            batch_size: 4,
            seed: 1,
            verbose: false,
        };
        let hist = fit(&mut m, &xs, &ys, &mut opt, &cfg).unwrap();
        assert!(hist.final_loss().unwrap() < 0.1);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(m.predict(x).unwrap(), y);
        }
    }

    #[test]
    fn loss_decreases_over_training() {
        let (xs, ys) = xor_data();
        let mut m = xor_model(3);
        let mut opt = Adam::new(0.02);
        let cfg = FitConfig {
            epochs: 100,
            batch_size: 2,
            seed: 2,
            verbose: false,
        };
        let hist = fit(&mut m, &xs, &ys, &mut opt, &cfg).unwrap();
        let first = hist.epoch_loss[0];
        let last = hist.final_loss().unwrap();
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn early_stopping_validates_arguments() {
        let (xs, ys) = xor_data();
        let mut m = xor_model(1);
        let mut opt = Adam::new(0.01);
        let cfg = FitConfig::default();
        let empty = ValidationSet {
            inputs: &[],
            labels: &[],
        };
        assert!(fit_with_early_stopping(&mut m, &xs, &ys, empty, &mut opt, &cfg, 3).is_err());
        let val = ValidationSet {
            inputs: &xs,
            labels: &ys,
        };
        assert!(fit_with_early_stopping(&mut m, &xs, &ys, val, &mut opt, &cfg, 0).is_err());
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let (xs, ys) = xor_data();
        let mut m = xor_model(9);
        let mut opt = Adam::new(0.05);
        let cfg = FitConfig {
            epochs: 200,
            batch_size: 4,
            seed: 2,
            verbose: false,
        };
        let val = ValidationSet {
            inputs: &xs,
            labels: &ys,
        };
        let (history, best) =
            fit_with_early_stopping(&mut m, &xs, &ys, val, &mut opt, &cfg, 10).unwrap();
        // Restored model must score exactly the reported best accuracy.
        let acc = crate::metrics::accuracy(&mut m, &xs, &ys).unwrap();
        assert_eq!(acc, best);
        assert!(best >= 0.75, "best {best}");
        // Early stopping must actually stop before the epoch budget when
        // the task saturates.
        assert!(history.epoch_loss.len() <= 200);
    }

    #[test]
    fn early_stopping_halts_on_plateau() {
        // With zero learning rate nothing improves after the first epoch,
        // so training stops after exactly 1 + patience epochs.
        let (xs, ys) = xor_data();
        let mut m = xor_model(3);
        let mut opt = Sgd::new(0.0, 0.0);
        let cfg = FitConfig {
            epochs: 50,
            batch_size: 4,
            seed: 1,
            verbose: false,
        };
        let val = ValidationSet {
            inputs: &xs,
            labels: &ys,
        };
        let (history, _) =
            fit_with_early_stopping(&mut m, &xs, &ys, val, &mut opt, &cfg, 3).unwrap();
        assert_eq!(history.epoch_loss.len(), 4);
    }

    #[test]
    fn deterministic_given_seeds() {
        let (xs, ys) = xor_data();
        let run = || {
            let mut m = xor_model(7);
            let mut opt = Sgd::new(0.1, 0.9);
            let cfg = FitConfig {
                epochs: 10,
                batch_size: 2,
                seed: 3,
                verbose: false,
            };
            fit(&mut m, &xs, &ys, &mut opt, &cfg).unwrap().epoch_loss
        };
        assert_eq!(run(), run());
    }
}
