//! Weight serialization in a tiny self-describing binary format.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "AFNN" | version u32 | tensor_count u32 |
//! per tensor: rank u32 | dims u32[rank] | data f32[prod(dims)]
//! ```
//!
//! Only *weights* are serialized; the architecture is code, so loading
//! checks that every tensor shape matches the receiving model exactly.

use crate::model::Sequential;
use crate::{NnError, Tensor};

const MAGIC: &[u8; 4] = b"AFNN";
const VERSION: u32 = 1;

/// Serializes every parameter of `model` (in layer order) to a byte blob.
///
/// # Example
///
/// ```
/// use nn::layers::Dense;
/// use nn::serialize::{load_weights, save_weights};
/// use nn::Sequential;
/// # fn main() -> Result<(), nn::NnError> {
/// let mut a = Sequential::new();
/// a.push(Dense::new(3, 2, 1)?);
/// let blob = save_weights(&a);
/// let mut b = Sequential::new();
/// b.push(Dense::new(3, 2, 99)?); // different init
/// load_weights(&mut b, &blob)?;
/// # Ok(())
/// # }
/// ```
pub fn save_weights(model: &Sequential) -> Vec<u8> {
    let params = model.params();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        out.extend_from_slice(&(p.value.shape().len() as u32).to_le_bytes());
        for &d in p.value.shape() {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for &v in p.value.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], NnError> {
        if self.pos + n > self.buf.len() {
            return Err(NnError::MalformedBlob("unexpected end of blob"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, NnError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32(&mut self) -> Result<f32, NnError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Loads a blob produced by [`save_weights`] into `model`.
///
/// # Errors
///
/// Returns [`NnError::MalformedBlob`] for a corrupt blob and
/// [`NnError::ShapeMismatch`] when the blob's tensors do not match the
/// model's parameter shapes (wrong architecture).
pub fn load_weights(model: &mut Sequential, blob: &[u8]) -> Result<(), NnError> {
    let mut r = Reader { buf: blob, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(NnError::MalformedBlob("bad magic"));
    }
    if r.u32()? != VERSION {
        return Err(NnError::MalformedBlob("unsupported version"));
    }
    let count = r.u32()? as usize;
    let mut params = model.params_mut();
    if count != params.len() {
        return Err(NnError::ShapeMismatch {
            expected: format!("{} parameter tensors", params.len()),
            actual: vec![count],
        });
    }
    for p in params.iter_mut() {
        let rank = r.u32()? as usize;
        if rank > 8 {
            return Err(NnError::MalformedBlob("implausible tensor rank"));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(r.u32()? as usize);
        }
        if shape != p.value.shape() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{:?}", p.value.shape()),
                actual: shape,
            });
        }
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.f32()?);
        }
        p.value = Tensor::from_vec(data, &shape)?;
    }
    if r.pos != blob.len() {
        return Err(NnError::MalformedBlob("trailing bytes after weights"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Dense, Lstm};
    use crate::Tensor;

    fn model(seed: u64) -> Sequential {
        let mut m = Sequential::new();
        m.push(Lstm::new(4, 6, true, seed).unwrap());
        m.push(Lstm::new(6, 6, false, seed + 1).unwrap());
        m.push(Activation::relu());
        m.push(Dense::new(6, 3, seed + 2).unwrap());
        m
    }

    #[test]
    fn round_trip_reproduces_outputs() {
        let mut a = model(1);
        let mut b = model(77); // different initialization
        let x = Tensor::from_vec((0..8).map(|i| (i as f32).cos()).collect(), &[2, 4]).unwrap();
        let ya = a.forward(&x, false).unwrap();
        let blob = save_weights(&a);
        load_weights(&mut b, &blob).unwrap();
        let yb = b.forward(&x, false).unwrap();
        assert_eq!(ya, yb);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut m = model(1);
        assert!(matches!(
            load_weights(&mut m, b"XXXX\0\0\0\0"),
            Err(NnError::MalformedBlob(_))
        ));
    }

    #[test]
    fn rejects_truncated_blob() {
        let a = model(1);
        let blob = save_weights(&a);
        let mut m = model(2);
        assert!(load_weights(&mut m, &blob[..blob.len() - 3]).is_err());
    }

    #[test]
    fn rejects_wrong_architecture() {
        let a = model(1);
        let blob = save_weights(&a);
        let mut wrong = Sequential::new();
        wrong.push(Dense::new(4, 3, 0).unwrap());
        assert!(load_weights(&mut wrong, &blob).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let a = model(1);
        let mut blob = save_weights(&a);
        blob.push(0);
        let mut m = model(2);
        assert!(matches!(
            load_weights(&mut m, &blob),
            Err(NnError::MalformedBlob(_))
        ));
    }

    #[test]
    fn empty_model_round_trips() {
        let a = Sequential::new();
        let blob = save_weights(&a);
        let mut b = Sequential::new();
        load_weights(&mut b, &blob).unwrap();
    }
}
