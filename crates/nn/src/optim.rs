//! Optimizers: SGD with momentum, and Adam.

use crate::layers::Param;
use crate::NnError;

/// An optimizer updates parameters from their accumulated gradients.
///
/// Call [`Optimizer::step`] once per minibatch (after the per-sample
/// `backward` calls have accumulated gradients), then zero the gradients.
pub trait Optimizer: std::fmt::Debug + Send {
    /// Applies one update to `params` using their accumulated gradients.
    ///
    /// `scale` is multiplied into every gradient before the update — pass
    /// `1.0 / batch_size` to average a minibatch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidState`] when the parameter list changes
    /// shape between calls (slot mismatch).
    fn step(&mut self, params: &mut [&mut Param], scale: f32) -> Result<(), NnError>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
///
/// # Example
///
/// ```
/// use nn::optim::{Optimizer, Sgd};
/// let opt = Sgd::new(0.01, 0.9);
/// assert_eq!(opt.learning_rate(), 0.01);
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr` and momentum factor
    /// `momentum` (use `0.0` for plain SGD).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param], scale: f32) -> Result<(), NnError> {
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        if self.velocity.len() != params.len() {
            return Err(NnError::InvalidState("optimizer slot count changed"));
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            if v.len() != p.value.len() {
                return Err(NnError::InvalidState("optimizer slot shape changed"));
            }
            for (i, vel) in v.iter_mut().enumerate() {
                let g = p.grad.data()[i] * scale;
                *vel = self.momentum * *vel - self.lr * g;
                p.value.data_mut()[i] += *vel;
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
///
/// # Example
///
/// ```
/// use nn::optim::{Adam, Optimizer};
/// let opt = Adam::new(1e-3);
/// assert_eq!(opt.learning_rate(), 1e-3);
/// ```
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with the canonical defaults
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Creates an Adam optimizer with explicit moment coefficients.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param], scale: f32) -> Result<(), NnError> {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        if self.m.len() != params.len() {
            return Err(NnError::InvalidState("optimizer slot count changed"));
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            if m.len() != p.value.len() {
                return Err(NnError::InvalidState("optimizer slot shape changed"));
            }
            for (i, (mi, vi)) in m.iter_mut().zip(v.iter_mut()).enumerate() {
                let g = p.grad.data()[i] * scale;
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                p.value.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    /// Minimizes f(w) = (w - 3)^2 and checks convergence to w = 3.
    fn converge(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let mut p = Param::new(Tensor::from_vec(vec![0.0], &[1]).unwrap());
        for _ in 0..iters {
            let w = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (w - 3.0);
            opt.step(&mut [&mut p], 1.0).unwrap();
            p.zero_grad();
        }
        p.value.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let w = converge(&mut opt, 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges_faster() {
        let mut plain = Sgd::new(0.02, 0.0);
        let mut mom = Sgd::new(0.02, 0.9);
        let w_plain = converge(&mut plain, 30);
        let w_mom = converge(&mut mom, 30);
        assert!((w_mom - 3.0).abs() < (w_plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        let w = converge(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn scale_averages_minibatch() {
        // Two accumulated identical gradients with scale 0.5 must equal one
        // gradient with scale 1.0.
        let mut p1 = Param::new(Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let mut p2 = Param::new(Tensor::from_vec(vec![1.0], &[1]).unwrap());
        p1.grad.data_mut()[0] = 2.0; // two samples, each grad 1.0
        p2.grad.data_mut()[0] = 1.0;
        let mut o1 = Sgd::new(0.1, 0.0);
        let mut o2 = Sgd::new(0.1, 0.0);
        o1.step(&mut [&mut p1], 0.5).unwrap();
        o2.step(&mut [&mut p2], 1.0).unwrap();
        assert!((p1.value.data()[0] - p2.value.data()[0]).abs() < 1e-6);
    }

    #[test]
    fn slot_change_detected() {
        let mut p = Param::new(Tensor::zeros(&[2]).unwrap());
        let mut q = Param::new(Tensor::zeros(&[2]).unwrap());
        let mut opt = Sgd::new(0.1, 0.9);
        opt.step(&mut [&mut p], 1.0).unwrap();
        assert!(opt.step(&mut [&mut p, &mut q], 1.0).is_err());
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }
}
