//! Error type for the neural-network crate.

use std::error::Error;
use std::fmt;

/// Error returned by fallible operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// A tensor shape did not match what an operation expects.
    ShapeMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// The shape that was supplied.
        actual: Vec<usize>,
    },
    /// A construction parameter was invalid (zero size, bad range, …).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint that was violated.
        reason: &'static str,
    },
    /// `backward` was called before `forward`, or another ordering violation.
    InvalidState(&'static str),
    /// A serialized model blob was malformed.
    MalformedBlob(&'static str),
    /// A class label was outside the model's output range.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes the model produces.
        classes: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual:?}")
            }
            NnError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            NnError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            NnError::MalformedBlob(msg) => write!(f, "malformed model blob: {msg}"),
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }

    #[test]
    fn display_mentions_shapes() {
        let e = NnError::ShapeMismatch {
            expected: "[2, 3]".into(),
            actual: vec![4],
        };
        let msg = e.to_string();
        assert!(msg.contains("[2, 3]") && msg.contains("[4]"));
    }
}
