//! Hyperdimensional-computing (HDC) affect classifier — the integer-only
//! bottom rung of the degradation ladder.
//!
//! Follows Menon et al., "Efficient emotion recognition using
//! hyperdimensional computing with combinatorial channel encoding"
//! (arXiv 2104.02804): every feature channel gets a random binary *ID*
//! hypervector, every quantization level a *level* hypervector, and a
//! feature vector encodes as the majority bundle of the per-channel
//! bind (XOR) of its ID with the level its value falls in. Classification
//! is a Hamming-distance lookup against one prototype hypervector per
//! class. The whole inference path is XOR, bit-counting and compares over
//! `u64` words — no multiplies, no floats except the final confidence
//! normalization — which is what makes it the cheapest rung the runtime
//! can degrade to (see `docs/DEGRADATION.md`).
//!
//! Determinism: every hypervector derives from the config seed through
//! SplitMix64, bundling is a commutative bit-count, and ties break to 0,
//! so two classifiers built from the same config are bit-identical and
//! training is invariant to sample order (property-tested in
//! `tests/proptests.rs`).
//!
//! # Example
//!
//! ```
//! use nn::hdc::{HdcClassifier, HdcConfig};
//! use nn::Tensor;
//! # fn main() -> Result<(), nn::NnError> {
//! let config = HdcConfig::new(4, 3, 11)?;
//! let xs = vec![
//!     Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.1], &[4])?,
//!     Tensor::from_vec(vec![0.0, 1.0, 0.0, 0.2], &[4])?,
//!     Tensor::from_vec(vec![0.0, 0.0, 1.0, 0.9], &[4])?,
//! ];
//! let ys = vec![0, 1, 2];
//! let mut clf = HdcClassifier::new(config)?;
//! clf.fit(&xs, &ys)?;
//! assert_eq!(clf.predict(xs[0].data())?, 0);
//! # Ok(())
//! # }
//! ```

use crate::{NnError, Tensor};

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// Shape of an HDC classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HdcConfig {
    /// Hypervector dimensionality in bits; must be a positive multiple
    /// of 64.
    pub dim_bits: usize,
    /// Number of quantization levels per channel (thermometer-coded so
    /// nearby values map to nearby hypervectors); at least 2.
    pub levels: usize,
    /// Feature channels per input vector.
    pub input_dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Seed every hypervector (IDs, levels, untrained prototypes) derives
    /// from.
    pub seed: u64,
}

impl HdcConfig {
    /// The profile the affect runtime uses: 1024-bit hypervectors with 16
    /// levels — small enough that the whole codebook fits in L2, accurate
    /// enough to beat chance by a wide margin on the synthetic corpora
    /// (see `BENCH_accuracy_energy.json`).
    pub fn new(input_dim: usize, classes: usize, seed: u64) -> Result<Self, NnError> {
        let config = Self {
            dim_bits: 1024,
            levels: 16,
            input_dim,
            classes,
            seed,
        };
        config.validate()?;
        Ok(config)
    }

    /// Checks the dimensional constraints.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] when `dim_bits` is not a
    /// positive multiple of 64, `levels < 2`, `input_dim == 0`,
    /// `input_dim >= 2^16` (the majority counters are 16 planes deep), or
    /// `classes == 0`.
    pub fn validate(&self) -> Result<(), NnError> {
        if self.dim_bits == 0 || !self.dim_bits.is_multiple_of(WORD_BITS) {
            return Err(NnError::InvalidParameter {
                name: "dim_bits",
                reason: "hypervector width must be a positive multiple of 64",
            });
        }
        if self.levels < 2 {
            return Err(NnError::InvalidParameter {
                name: "levels",
                reason: "thermometer encoding needs at least 2 levels",
            });
        }
        if self.input_dim == 0 {
            return Err(NnError::InvalidParameter {
                name: "input_dim",
                reason: "need at least one feature channel",
            });
        }
        if self.input_dim >= (1 << 16) {
            return Err(NnError::InvalidParameter {
                name: "input_dim",
                reason: "majority counters support at most 2^16 - 1 channels",
            });
        }
        if self.classes == 0 {
            return Err(NnError::InvalidParameter {
                name: "classes",
                reason: "need at least one class",
            });
        }
        Ok(())
    }

    /// Hypervector width in `u64` words.
    pub fn words(&self) -> usize {
        self.dim_bits / WORD_BITS
    }
}

/// SplitMix64 step: the deterministic stream every hypervector comes from.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `n` pseudo-random words from a SplitMix64 stream.
fn random_words(state: &mut u64, n: usize) -> Vec<u64> {
    (0..n).map(|_| splitmix64(state)).collect()
}

/// Flips `bit` in a word-packed hypervector.
fn flip_bit(words: &mut [u64], bit: usize) {
    words[bit / WORD_BITS] ^= 1u64 << (bit % WORD_BITS);
}

/// Combinatorial per-channel encoder plus per-class prototypes.
///
/// All inference state (codebook, prototypes, majority planes, query
/// buffer) is allocated at construction, so [`HdcClassifier::classify_into`]
/// and [`HdcClassifier::predict`] perform zero heap allocations from the
/// first call on.
#[derive(Debug, Clone)]
pub struct HdcClassifier {
    config: HdcConfig,
    words: usize,
    planes_n: usize,
    /// Precomputed bind of channel ID and level vectors,
    /// `[input_dim × levels × words]`: row `(c, l)` is `id[c] XOR level[l]`.
    bound: Vec<u64>,
    /// Per-class prototype hypervectors, `[classes × words]`.
    prototypes: Vec<u64>,
    /// Per-channel quantization range (set by [`HdcClassifier::fit`]).
    lo: Vec<f32>,
    hi: Vec<f32>,
    /// Bit-sliced majority counters, `[planes_n × words]`.
    planes: Vec<u64>,
    /// Encoded query hypervector.
    query: Vec<u64>,
}

impl HdcClassifier {
    /// Builds the codebook and seeds every class prototype pseudo-randomly
    /// (an untrained classifier makes deterministic arbitrary decisions,
    /// like an untrained net with seeded random weights). Call
    /// [`HdcClassifier::fit`] to learn real prototypes.
    ///
    /// # Errors
    ///
    /// Propagates [`HdcConfig::validate`].
    pub fn new(config: HdcConfig) -> Result<Self, NnError> {
        config.validate()?;
        let words = config.words();
        let mut state = config.seed ^ 0x8DC0_DEB0_0C5E_ED01;

        // Channel ID vectors: independent random hypervectors.
        let ids: Vec<Vec<u64>> = (0..config.input_dim)
            .map(|_| random_words(&mut state, words))
            .collect();

        // Level vectors: level 0 random, each next level flips a fresh
        // slice of a seeded bit permutation, so level 0 and level L-1
        // differ in ~half the bits and Hamming distance grows
        // monotonically with level distance (thermometer code).
        let mut perm: Vec<usize> = (0..config.dim_bits).collect();
        for i in (1..perm.len()).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let flips_per_step = (config.dim_bits / 2) / (config.levels - 1);
        let mut levels: Vec<Vec<u64>> = Vec::with_capacity(config.levels);
        levels.push(random_words(&mut state, words));
        for l in 1..config.levels {
            let mut next = levels[l - 1].clone();
            for &bit in &perm[(l - 1) * flips_per_step..l * flips_per_step] {
                flip_bit(&mut next, bit);
            }
            levels.push(next);
        }

        // Precompute every (channel, level) bind so encoding is one row
        // lookup per channel.
        let mut bound = Vec::with_capacity(config.input_dim * config.levels * words);
        for id in &ids {
            for level in &levels {
                bound.extend(id.iter().zip(level).map(|(&a, &b)| a ^ b));
            }
        }

        let mut proto_state = config.seed ^ 0x9D1C_1A55_0F10_0D5E;
        let prototypes = random_words(&mut proto_state, config.classes * words);

        // Planes needed to count up to input_dim channels.
        let planes_n = (usize::BITS - config.input_dim.leading_zeros()) as usize;

        Ok(Self {
            config,
            words,
            planes_n,
            bound,
            prototypes,
            lo: vec![-4.0; config.input_dim],
            hi: vec![4.0; config.input_dim],
            planes: vec![0; planes_n * words],
            query: vec![0; words],
        })
    }

    /// The configuration this classifier was built from.
    pub fn config(&self) -> &HdcConfig {
        &self.config
    }

    /// The level index channel `c` maps value `v` to (clamped to the
    /// channel's learned range).
    fn level_of(&self, c: usize, v: f32) -> usize {
        let (lo, hi) = (self.lo[c], self.hi[c]);
        let t = if hi > lo {
            ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else {
            0.5
        };
        // t ∈ [0, 1] → nearest of `levels` evenly spaced indices.
        (t * (self.config.levels - 1) as f32).round() as usize
    }

    /// Encodes `x` into `out` (exactly `words` words): for each channel,
    /// bind its ID with the level vector of its value (precomputed), then
    /// majority-bundle across channels with bit-sliced carry-save
    /// counters — integer ops only. Ties (even channel counts) resolve
    /// to 0.
    fn encode_words(&mut self, x: &[f32]) -> Result<(), NnError> {
        if x.len() != self.config.input_dim {
            return Err(NnError::ShapeMismatch {
                expected: format!("[{}] feature vector", self.config.input_dim),
                actual: vec![x.len()],
            });
        }
        let w = self.words;
        self.planes.fill(0);
        for (c, &v) in x.iter().enumerate() {
            let l = self.level_of(c, v);
            let row = (c * self.config.levels + l) * w;
            for iw in 0..w {
                // Carry-save add of one bit vector into the sliced counters.
                let mut carry = self.bound[row + iw];
                let mut p = 0;
                while carry != 0 && p < self.planes_n {
                    let idx = p * w + iw;
                    let t = self.planes[idx] & carry;
                    self.planes[idx] ^= carry;
                    carry = t;
                    p += 1;
                }
            }
        }
        // Per-bit threshold: majority ⇔ count > input_dim / 2, evaluated
        // MSB-first as a bitwise comparator over the planes.
        let thr = (self.config.input_dim / 2) as u64;
        for iw in 0..w {
            let mut gt = 0u64;
            let mut eq = !0u64;
            for p in (0..self.planes_n).rev() {
                let t = if (thr >> p) & 1 == 1 { !0u64 } else { 0u64 };
                let plane = self.planes[p * w + iw];
                gt |= eq & plane & !t;
                eq &= !(plane ^ t);
            }
            self.query[iw] = gt;
        }
        Ok(())
    }

    /// Encodes `x` into a fresh word-packed hypervector (test/introspection
    /// helper; the hot path keeps the encoding in internal buffers).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `x` is not `input_dim` long.
    pub fn encode(&mut self, x: &[f32]) -> Result<Vec<u64>, NnError> {
        self.encode_words(x)?;
        Ok(self.query.clone())
    }

    /// Learns per-channel quantization ranges and per-class prototypes in
    /// one pass: each class prototype is the majority bundle of its
    /// training encodings (ties to 0). Classes absent from `ys` keep their
    /// seeded pseudo-random prototype. Bundling is commutative, so the
    /// result is independent of sample order.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for empty or mismatched
    /// inputs, a label out of range, or a sample of the wrong length.
    pub fn fit(&mut self, xs: &[Tensor], ys: &[usize]) -> Result<(), NnError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(NnError::InvalidParameter {
                name: "xs",
                reason: "need equally many non-empty samples and labels",
            });
        }
        if ys.iter().any(|&y| y >= self.config.classes) {
            return Err(NnError::InvalidParameter {
                name: "ys",
                reason: "label out of range",
            });
        }
        // Pass 1: per-channel ranges.
        for c in 0..self.config.input_dim {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for x in xs {
                let v = *x.data().get(c).ok_or(NnError::InvalidParameter {
                    name: "xs",
                    reason: "sample shorter than input_dim",
                })?;
                lo = lo.min(v);
                hi = hi.max(v);
            }
            self.lo[c] = lo;
            self.hi[c] = hi;
        }
        // Pass 2: bundle encodings per class with plain integer counters.
        let w = self.words;
        let mut counts = vec![0u32; self.config.classes * self.config.dim_bits];
        let mut members = vec![0u32; self.config.classes];
        for (x, &y) in xs.iter().zip(ys) {
            self.encode_words(x.data())?;
            members[y] += 1;
            let base = y * self.config.dim_bits;
            for iw in 0..w {
                let mut word = self.query[iw];
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    counts[base + iw * WORD_BITS + bit] += 1;
                    word &= word - 1;
                }
            }
        }
        for (class, &n) in members.iter().enumerate() {
            if n == 0 {
                continue;
            }
            // Majority with ties to 0: a bit sets when strictly more than
            // half the class members set it.
            let thr = n / 2;
            let base = class * self.config.dim_bits;
            for iw in 0..w {
                let mut word = 0u64;
                for bit in 0..WORD_BITS {
                    if counts[base + iw * WORD_BITS + bit] > thr {
                        word |= 1u64 << bit;
                    }
                }
                self.prototypes[class * w + iw] = word;
            }
        }
        Ok(())
    }

    /// Classifies `x`, writing per-class pseudo-probabilities into `probs`
    /// (resized to `classes`) and returning the winning class. The winner
    /// is the prototype at minimum Hamming distance (first minimum wins);
    /// `probs[i]` is the normalized similarity `(dim_bits − dᵢ) / Σⱼ
    /// (dim_bits − dⱼ)` — a proper distribution, deterministic, and
    /// allocation-free once `probs` has capacity.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `x` is not `input_dim` long.
    pub fn classify_into(&mut self, x: &[f32], probs: &mut Vec<f32>) -> Result<usize, NnError> {
        self.encode_words(x)?;
        let w = self.words;
        probs.clear();
        let mut best = 0usize;
        let mut best_d = u32::MAX;
        let mut sum = 0.0f32;
        for class in 0..self.config.classes {
            let proto = &self.prototypes[class * w..(class + 1) * w];
            let d: u32 = proto
                .iter()
                .zip(&self.query)
                .map(|(&p, &q)| (p ^ q).count_ones())
                .sum();
            if d < best_d {
                best_d = d;
                best = class;
            }
            let sim = (self.config.dim_bits as u32 - d) as f32;
            sum += sim;
            probs.push(sim);
        }
        if sum > 0.0 {
            for p in probs.iter_mut() {
                *p /= sum;
            }
        } else {
            let uniform = 1.0 / self.config.classes as f32;
            probs.iter_mut().for_each(|p| *p = uniform);
        }
        Ok(best)
    }

    /// The winning class alone (allocation-free; reuses an internal
    /// distance scan without touching a probability buffer).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `x` is not `input_dim` long.
    pub fn predict(&mut self, x: &[f32]) -> Result<usize, NnError> {
        self.encode_words(x)?;
        let w = self.words;
        let mut best = 0usize;
        let mut best_d = u32::MAX;
        for class in 0..self.config.classes {
            let proto = &self.prototypes[class * w..(class + 1) * w];
            let d: u32 = proto
                .iter()
                .zip(&self.query)
                .map(|(&p, &q)| (p ^ q).count_ones())
                .sum();
            if d < best_d {
                best_d = d;
                best = class;
            }
        }
        Ok(best)
    }

    /// Fraction of held-out samples classified correctly.
    ///
    /// # Errors
    ///
    /// Propagates per-sample shape errors.
    pub fn accuracy(&mut self, xs: &[Tensor], ys: &[usize]) -> Result<f32, NnError> {
        if xs.is_empty() {
            return Ok(0.0);
        }
        let mut hits = 0usize;
        for (x, &y) in xs.iter().zip(ys) {
            if self.predict(x.data())? == y {
                hits += 1;
            }
        }
        Ok(hits as f32 / xs.len() as f32)
    }

    /// Word-packed prototype of `class` (test/introspection helper).
    ///
    /// # Panics
    ///
    /// Panics when `class >= classes`.
    pub fn prototype(&self, class: usize) -> &[u64] {
        assert!(class < self.config.classes, "class out of range");
        &self.prototypes[class * self.words..(class + 1) * self.words]
    }

    /// Total model storage in bytes: the bound codebook plus prototypes
    /// (the analogue of a net's weight footprint).
    pub fn storage_bytes(&self) -> usize {
        (self.bound.len() + self.prototypes.len()) * std::mem::size_of::<u64>()
    }

    /// Estimated integer word operations per classification, the cost
    /// model `BENCH_accuracy_energy.json` reports: ~4 ops per
    /// channel-word for the bind lookup + carry-save bundle, 2 per
    /// class-word for the XOR + popcount lookup, plus the per-word
    /// threshold compare. Deterministic in the config, so CI can gate on
    /// it without timing noise.
    pub fn estimated_word_ops(&self) -> u64 {
        let c = self.config.input_dim as u64;
        let w = self.words as u64;
        let k = self.config.classes as u64;
        c * w * 4 + k * w * 2 + w * self.planes_n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: usize, class: usize, dim: usize) -> Tensor {
        let data: Vec<f32> = (0..dim)
            .map(|c| {
                let base = if c % 3 == class % 3 { 1.0 } else { -1.0 };
                base + ((i * 31 + c * 7) % 13) as f32 * 0.01
            })
            .collect();
        Tensor::from_vec(data, &[dim]).unwrap()
    }

    fn toy_dataset(dim: usize, classes: usize, per_class: usize) -> (Vec<Tensor>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for class in 0..classes {
            for i in 0..per_class {
                xs.push(sample(i, class, dim));
                ys.push(class);
            }
        }
        (xs, ys)
    }

    #[test]
    fn config_validation_rejects_degenerate_shapes() {
        assert!(HdcConfig::new(0, 3, 1).is_err());
        assert!(HdcConfig::new(4, 0, 1).is_err());
        let mut c = HdcConfig::new(4, 3, 1).unwrap();
        c.dim_bits = 100;
        assert!(c.validate().is_err());
        c.dim_bits = 1024;
        c.levels = 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn same_seed_same_model_bitwise() {
        let config = HdcConfig::new(8, 3, 42).unwrap();
        let mut a = HdcClassifier::new(config).unwrap();
        let mut b = HdcClassifier::new(config).unwrap();
        let x: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).sin()).collect();
        assert_eq!(a.encode(&x).unwrap(), b.encode(&x).unwrap());
        for class in 0..3 {
            assert_eq!(a.prototype(class), b.prototype(class));
        }
    }

    #[test]
    fn learns_a_separable_toy_problem() {
        let (xs, ys) = toy_dataset(12, 3, 8);
        let mut clf = HdcClassifier::new(HdcConfig::new(12, 3, 7).unwrap()).unwrap();
        clf.fit(&xs, &ys).unwrap();
        let acc = clf.accuracy(&xs, &ys).unwrap();
        assert!(acc > 0.9, "training accuracy {acc}");
    }

    #[test]
    fn nearby_values_encode_to_nearby_hypervectors() {
        let mut clf = HdcClassifier::new(HdcConfig::new(1, 2, 3).unwrap()).unwrap();
        clf.lo[0] = 0.0;
        clf.hi[0] = 1.0;
        let a = clf.encode(&[0.0]).unwrap();
        let b = clf.encode(&[0.1]).unwrap();
        let c = clf.encode(&[0.9]).unwrap();
        let d = |x: &[u64], y: &[u64]| -> u32 {
            x.iter().zip(y).map(|(&p, &q)| (p ^ q).count_ones()).sum()
        };
        assert!(
            d(&a, &b) < d(&a, &c),
            "thermometer code must be locality-preserving: {} vs {}",
            d(&a, &b),
            d(&a, &c)
        );
    }

    #[test]
    fn fit_is_invariant_to_sample_order() {
        let (xs, ys) = toy_dataset(10, 3, 6);
        let config = HdcConfig::new(10, 3, 5).unwrap();
        let mut forward = HdcClassifier::new(config).unwrap();
        forward.fit(&xs, &ys).unwrap();
        let rev_x: Vec<Tensor> = xs.iter().rev().cloned().collect();
        let rev_y: Vec<usize> = ys.iter().rev().copied().collect();
        let mut reversed = HdcClassifier::new(config).unwrap();
        reversed.fit(&rev_x, &rev_y).unwrap();
        for class in 0..3 {
            assert_eq!(forward.prototype(class), reversed.prototype(class));
        }
    }

    #[test]
    fn classify_into_is_a_distribution() {
        // `sample` separates classes mod 3, so stick to 3 distinct classes —
        // a 4th would alias class 0 and tie the distance scan exactly.
        let (xs, ys) = toy_dataset(6, 3, 4);
        let mut clf = HdcClassifier::new(HdcConfig::new(6, 3, 9).unwrap()).unwrap();
        clf.fit(&xs, &ys).unwrap();
        let mut probs = Vec::new();
        let class = clf.classify_into(xs[0].data(), &mut probs).unwrap();
        assert!(class < 3);
        assert_eq!(probs.len(), 3);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        let argmax = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(argmax, class, "min distance must be max probability");
    }

    #[test]
    fn rejects_wrong_input_length() {
        let mut clf = HdcClassifier::new(HdcConfig::new(5, 2, 1).unwrap()).unwrap();
        assert!(clf.predict(&[0.0; 4]).is_err());
        let mut probs = Vec::new();
        assert!(clf.classify_into(&[0.0; 6], &mut probs).is_err());
    }

    #[test]
    fn fit_rejects_bad_labels_and_shapes() {
        let mut clf = HdcClassifier::new(HdcConfig::new(3, 2, 1).unwrap()).unwrap();
        let x = Tensor::zeros(&[3]).unwrap();
        assert!(clf.fit(&[], &[]).is_err());
        assert!(clf.fit(std::slice::from_ref(&x), &[2]).is_err());
        let short = Tensor::zeros(&[2]).unwrap();
        assert!(clf.fit(&[short], &[0]).is_err());
    }

    #[test]
    fn cost_model_is_deterministic_and_small() {
        let clf = HdcClassifier::new(HdcConfig::new(56, 8, 1).unwrap()).unwrap();
        let ops = clf.estimated_word_ops();
        assert_eq!(ops, clf.estimated_word_ops());
        // 56 channels × 16 words × 4 + 8 × 16 × 2 + 16 × 6.
        assert_eq!(ops, 56 * 16 * 4 + 8 * 16 * 2 + 16 * 6);
    }
}
