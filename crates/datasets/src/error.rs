//! Error type for the datasets crate.

use std::error::Error;
use std::fmt;

/// Error returned by fallible dataset operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DatasetError {
    /// A corpus specification parameter was invalid.
    InvalidSpec {
        /// Parameter name.
        name: &'static str,
        /// Constraint that was violated.
        reason: &'static str,
    },
    /// Signal synthesis failed.
    Biosignal(biosignal::BiosignalError),
    /// Feature extraction failed.
    Affect(affect_core::AffectError),
    /// A split fraction was outside `(0, 1)` or left a side empty.
    InvalidSplit(&'static str),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidSpec { name, reason } => {
                write!(f, "invalid corpus spec `{name}`: {reason}")
            }
            DatasetError::Biosignal(e) => write!(f, "signal synthesis failed: {e}"),
            DatasetError::Affect(e) => write!(f, "feature extraction failed: {e}"),
            DatasetError::InvalidSplit(msg) => write!(f, "invalid split: {msg}"),
        }
    }
}

impl Error for DatasetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetError::Biosignal(e) => Some(e),
            DatasetError::Affect(e) => Some(e),
            _ => None,
        }
    }
}

impl From<biosignal::BiosignalError> for DatasetError {
    fn from(e: biosignal::BiosignalError) -> Self {
        DatasetError::Biosignal(e)
    }
}

impl From<affect_core::AffectError> for DatasetError {
    fn from(e: affect_core::AffectError) -> Self {
        DatasetError::Affect(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DatasetError>();
    }

    #[test]
    fn sources_wired() {
        let e: DatasetError = biosignal::BiosignalError::InvalidTimeRange.into();
        assert!(e.source().is_some());
    }
}
