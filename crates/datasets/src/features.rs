//! Feature extraction from a corpus into model-ready tensor datasets.

use crate::corpus::Corpus;
use crate::DatasetError;
use affect_core::classifier::ClassifierKind;
use affect_core::pipeline::FeaturePipeline;
use nn::Tensor;

/// The tensor layout a classifier family consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureLayout {
    /// Flat statistics vector `[4 × features]` (mean/std/min/max per
    /// feature) — a compact summary for streaming classification.
    Flat,
    /// Flattened sequence `[frames × features]` — for the MLP, which (as
    /// in the paper, whose 508 k-parameter MLP takes a ~2760-dim input)
    /// sees the whole sequence but without any temporal weight sharing.
    Flattened,
    /// Strip `[1, frames × features]` — for the 1-D CNN.
    Strip,
    /// Sequence `[frames, features]` — for the LSTM.
    Sequence,
}

impl FeatureLayout {
    /// The layout each classifier family consumes. The HDC rung reads the
    /// compact flat statistics vector: its per-channel thermometer encoder
    /// wants a short, fixed list of scalar channels, not a sequence.
    pub fn for_kind(kind: ClassifierKind) -> Self {
        match kind {
            ClassifierKind::Mlp => FeatureLayout::Flattened,
            ClassifierKind::Cnn => FeatureLayout::Strip,
            ClassifierKind::Lstm => FeatureLayout::Sequence,
            ClassifierKind::Hdc => FeatureLayout::Flat,
        }
    }
}

/// Extracts `(inputs, labels)` from every utterance of a corpus in the given
/// layout.
///
/// # Errors
///
/// Propagates feature-extraction errors (e.g. an utterance shorter than one
/// analysis frame).
///
/// # Example
///
/// ```
/// use affect_core::pipeline::{FeatureConfig, FeaturePipeline};
/// use datasets::{extract_dataset, Corpus, CorpusSpec, FeatureLayout};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = CorpusSpec::emovo_like().with_actors(1).with_utterances(1);
/// let corpus = Corpus::generate(&spec, 1)?;
/// let mut pipeline = FeaturePipeline::new(FeatureConfig {
///     sample_rate: spec.sample_rate,
///     frame_len: 256,
///     hop: 128,
///     ..FeatureConfig::default()
/// })?;
/// let (xs, ys) = extract_dataset(&corpus, &mut pipeline, FeatureLayout::Flat)?;
/// assert_eq!(xs.len(), ys.len());
/// assert_eq!(xs[0].shape(), &[pipeline.flat_dim()]);
/// # Ok(())
/// # }
/// ```
pub fn extract_dataset(
    corpus: &Corpus,
    pipeline: &mut FeaturePipeline,
    layout: FeatureLayout,
) -> Result<(Vec<Tensor>, Vec<usize>), DatasetError> {
    let mut xs = Vec::with_capacity(corpus.len());
    let mut ys = Vec::with_capacity(corpus.len());
    for utt in corpus.utterances() {
        let tensor = match layout {
            FeatureLayout::Flat => pipeline.extract_flat(&utt.waveform)?,
            FeatureLayout::Flattened => {
                let seq = pipeline.extract_sequence(&utt.waveform)?;
                seq.to_flat()
            }
            FeatureLayout::Strip => pipeline.extract_strip(&utt.waveform)?,
            FeatureLayout::Sequence => pipeline.extract_sequence(&utt.waveform)?,
        };
        xs.push(tensor);
        ys.push(utt.label);
    }
    Ok((xs, ys))
}

/// Per-utterance feature normalization to zero mean / unit variance across
/// the dataset (per dimension). Greatly stabilizes training of the small
/// models. Returns the `(mean, std)` vectors so held-out data can reuse
/// them.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidSplit`] for an empty dataset or
/// inconsistent tensor shapes.
pub fn normalize_in_place(xs: &mut [Tensor]) -> Result<(Vec<f32>, Vec<f32>), DatasetError> {
    let Some(first) = xs.first() else {
        return Err(DatasetError::InvalidSplit("empty dataset"));
    };
    let dim = first.len();
    if xs.iter().any(|x| x.len() != dim) {
        return Err(DatasetError::InvalidSplit("inconsistent tensor sizes"));
    }
    let n = xs.len() as f32;
    let mut mean = vec![0.0f32; dim];
    for x in xs.iter() {
        for (m, &v) in mean.iter_mut().zip(x.data()) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut std = vec![0.0f32; dim];
    for x in xs.iter() {
        for ((s, &v), &m) in std.iter_mut().zip(x.data()).zip(&mean) {
            *s += (v - m).powi(2);
        }
    }
    for s in &mut std {
        *s = (*s / n).sqrt().max(1e-6);
    }
    for x in xs.iter_mut() {
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            *v = (*v - mean[i]) / std[i];
        }
    }
    Ok((mean, std))
}

/// Per-*feature* normalization for sequence-shaped data: tensors are
/// interpreted as rows of `feature_dim` features (`[T, F]` sequences or
/// `[1, T × F]` strips) and each feature column is standardized with
/// statistics pooled across samples **and** time. Far more robust than
/// per-cell normalization when `T × F` exceeds the sample count, which is
/// exactly the regime of the sequence classifiers. Returns `(mean, std)`
/// of length `feature_dim`.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidSplit`] for an empty dataset, a zero
/// `feature_dim`, or tensors whose length is not a multiple of
/// `feature_dim`.
pub fn normalize_features_in_place(
    xs: &mut [Tensor],
    feature_dim: usize,
) -> Result<(Vec<f32>, Vec<f32>), DatasetError> {
    if xs.is_empty() || feature_dim == 0 {
        return Err(DatasetError::InvalidSplit(
            "empty dataset or zero feature_dim",
        ));
    }
    if xs.iter().any(|x| x.len() % feature_dim != 0) {
        return Err(DatasetError::InvalidSplit(
            "tensor length not a multiple of feature_dim",
        ));
    }
    let mut mean = vec![0.0f32; feature_dim];
    let mut count = 0u64;
    for x in xs.iter() {
        for (i, &v) in x.data().iter().enumerate() {
            mean[i % feature_dim] += v;
        }
        count += (x.len() / feature_dim) as u64;
    }
    for m in &mut mean {
        *m /= count as f32;
    }
    let mut std = vec![0.0f32; feature_dim];
    for x in xs.iter() {
        for (i, &v) in x.data().iter().enumerate() {
            std[i % feature_dim] += (v - mean[i % feature_dim]).powi(2);
        }
    }
    for s in &mut std {
        *s = (*s / count as f32).sqrt().max(1e-6);
    }
    apply_feature_normalization(xs, &mean, &std)?;
    Ok((mean, std))
}

/// Applies per-feature normalization produced by
/// [`normalize_features_in_place`] to held-out data.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidSplit`] on dimension mismatch.
pub fn apply_feature_normalization(
    xs: &mut [Tensor],
    mean: &[f32],
    std: &[f32],
) -> Result<(), DatasetError> {
    let feature_dim = mean.len();
    if feature_dim == 0 || std.len() != feature_dim {
        return Err(DatasetError::InvalidSplit("mean/std length mismatch"));
    }
    for x in xs.iter_mut() {
        if x.len() % feature_dim != 0 {
            return Err(DatasetError::InvalidSplit(
                "tensor length not a multiple of feature_dim",
            ));
        }
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            *v = (*v - mean[i % feature_dim]) / std[i % feature_dim];
        }
    }
    Ok(())
}

/// Applies a previously computed normalization to held-out data.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidSplit`] when dimensions do not match.
pub fn apply_normalization(
    xs: &mut [Tensor],
    mean: &[f32],
    std: &[f32],
) -> Result<(), DatasetError> {
    if mean.len() != std.len() {
        return Err(DatasetError::InvalidSplit("mean/std length mismatch"));
    }
    for x in xs.iter_mut() {
        if x.len() != mean.len() {
            return Err(DatasetError::InvalidSplit("tensor/stats length mismatch"));
        }
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            *v = (*v - mean[i]) / std[i];
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CorpusSpec;
    use affect_core::pipeline::FeatureConfig;

    fn pipeline_for(spec: &CorpusSpec) -> FeaturePipeline {
        FeaturePipeline::new(FeatureConfig {
            sample_rate: spec.sample_rate,
            frame_len: 256,
            hop: 128,
            ..FeatureConfig::default()
        })
        .unwrap()
    }

    fn tiny_corpus() -> Corpus {
        let spec = CorpusSpec::crema_d_like().with_actors(2).with_utterances(1);
        Corpus::generate(&spec, 5).unwrap()
    }

    #[test]
    fn layouts_match_kinds() {
        assert_eq!(
            FeatureLayout::for_kind(ClassifierKind::Mlp),
            FeatureLayout::Flattened
        );
        assert_eq!(
            FeatureLayout::for_kind(ClassifierKind::Cnn),
            FeatureLayout::Strip
        );
        assert_eq!(
            FeatureLayout::for_kind(ClassifierKind::Lstm),
            FeatureLayout::Sequence
        );
        assert_eq!(
            FeatureLayout::for_kind(ClassifierKind::Hdc),
            FeatureLayout::Flat
        );
    }

    #[test]
    fn all_layouts_extract() {
        let corpus = tiny_corpus();
        let mut p = pipeline_for(corpus.spec());
        for layout in [
            FeatureLayout::Flat,
            FeatureLayout::Flattened,
            FeatureLayout::Strip,
            FeatureLayout::Sequence,
        ] {
            let (xs, ys) = extract_dataset(&corpus, &mut p, layout).unwrap();
            assert_eq!(xs.len(), corpus.len());
            assert_eq!(ys, corpus.labels());
        }
    }

    #[test]
    fn sequence_shape_consistent_across_utterances() {
        let corpus = tiny_corpus();
        let mut p = pipeline_for(corpus.spec());
        let (xs, _) = extract_dataset(&corpus, &mut p, FeatureLayout::Sequence).unwrap();
        let shape = xs[0].shape().to_vec();
        assert!(xs.iter().all(|x| x.shape() == shape));
        assert_eq!(shape[1], p.features_per_frame());
    }

    #[test]
    fn normalization_centers_data() {
        let corpus = tiny_corpus();
        let mut p = pipeline_for(corpus.spec());
        let (mut xs, _) = extract_dataset(&corpus, &mut p, FeatureLayout::Flat).unwrap();
        let (mean, std) = normalize_in_place(&mut xs).unwrap();
        assert_eq!(mean.len(), p.flat_dim());
        assert_eq!(std.len(), p.flat_dim());
        // Post-normalization per-dim mean ~ 0.
        let dim = xs[0].len();
        for d in 0..dim {
            let m: f32 = xs.iter().map(|x| x.data()[d]).sum::<f32>() / xs.len() as f32;
            assert!(m.abs() < 1e-3, "dim {d}: mean {m}");
        }
    }

    #[test]
    fn apply_normalization_validates_dims() {
        let mut xs = vec![Tensor::zeros(&[3]).unwrap()];
        assert!(apply_normalization(&mut xs, &[0.0; 2], &[1.0; 2]).is_err());
        assert!(apply_normalization(&mut xs, &[0.0; 3], &[1.0; 2]).is_err());
        assert!(apply_normalization(&mut xs, &[0.0; 3], &[1.0; 3]).is_ok());
    }

    #[test]
    fn normalize_rejects_empty_or_ragged() {
        let mut empty: Vec<Tensor> = vec![];
        assert!(normalize_in_place(&mut empty).is_err());
        let mut ragged = vec![Tensor::zeros(&[2]).unwrap(), Tensor::zeros(&[3]).unwrap()];
        assert!(normalize_in_place(&mut ragged).is_err());
    }
}
