//! Corpus specifications mirroring the paper's three datasets.

use crate::DatasetError;
use affect_core::emotion::Emotion;

/// Structural description of an emotional-speech corpus.
///
/// The `*_like` constructors mirror the actor counts and label sets of the
/// corpora the paper evaluates (Sec. 2); `with_actors`/`with_utterances`
/// scale a spec down for fast tests without changing its structure.
///
/// # Example
///
/// ```
/// use datasets::CorpusSpec;
/// let spec = CorpusSpec::emovo_like();
/// assert_eq!(spec.actors, 6);
/// assert_eq!(spec.emotions.len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// Corpus display name.
    pub name: String,
    /// Number of actors (each gets a distinct synthetic voice).
    pub actors: usize,
    /// Utterances per actor per emotion.
    pub utterances_per_emotion: usize,
    /// Label set, in class-index order.
    pub emotions: Vec<Emotion>,
    /// Utterance duration in seconds.
    pub utterance_secs: f32,
    /// Waveform sample rate in hertz.
    pub sample_rate: f32,
}

impl CorpusSpec {
    /// RAVDESS-like: 24 actors, the full 8-emotion label set.
    ///
    /// (The real corpus holds 7356 clips; the default spec generates 2 clips
    /// per actor/emotion = 384 — scale up with
    /// [`CorpusSpec::with_utterances`] if desired.)
    pub fn ravdess_like() -> Self {
        Self {
            name: "RAVDESS-like".into(),
            actors: 24,
            utterances_per_emotion: 2,
            emotions: Emotion::ALL.to_vec(),
            utterance_secs: 1.2,
            sample_rate: 8_000.0,
        }
    }

    /// EMOVO-like: 6 actors, 7 emotions (no "calm" in EMOVO's label set),
    /// 14 sentences per actor/emotion in the original (2 by default here).
    pub fn emovo_like() -> Self {
        Self {
            name: "EMOVO-like".into(),
            actors: 6,
            utterances_per_emotion: 2,
            emotions: vec![
                Emotion::Neutral,
                Emotion::Happy,
                Emotion::Sad,
                Emotion::Angry,
                Emotion::Fearful,
                Emotion::Disgust,
                Emotion::Surprised,
            ],
            utterance_secs: 1.2,
            sample_rate: 8_000.0,
        }
    }

    /// CREMA-D-like: 91 actors, 6 emotions (no "calm"/"surprised").
    pub fn crema_d_like() -> Self {
        Self {
            name: "CREMA-D-like".into(),
            actors: 91,
            utterances_per_emotion: 1,
            emotions: vec![
                Emotion::Neutral,
                Emotion::Happy,
                Emotion::Sad,
                Emotion::Angry,
                Emotion::Fearful,
                Emotion::Disgust,
            ],
            utterance_secs: 1.2,
            sample_rate: 8_000.0,
        }
    }

    /// All three paper corpora, in the paper's Fig. 3(b) order.
    pub fn paper_corpora() -> Vec<CorpusSpec> {
        vec![
            Self::crema_d_like(),
            Self::emovo_like(),
            Self::ravdess_like(),
        ]
    }

    /// Returns the spec with a different actor count (builder style).
    pub fn with_actors(mut self, actors: usize) -> Self {
        self.actors = actors;
        self
    }

    /// Returns the spec with a different utterances-per-emotion count.
    pub fn with_utterances(mut self, utterances: usize) -> Self {
        self.utterances_per_emotion = utterances;
        self
    }

    /// Total number of utterances the spec generates.
    pub fn total_utterances(&self) -> usize {
        self.actors * self.utterances_per_emotion * self.emotions.len()
    }

    /// Class label names in index order.
    pub fn label_names(&self) -> Vec<String> {
        self.emotions.iter().map(|e| e.name().to_string()).collect()
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidSpec`] for zero counts, an empty label
    /// set, or non-positive duration/rate.
    pub fn validate(&self) -> Result<(), DatasetError> {
        if self.actors == 0 {
            return Err(DatasetError::InvalidSpec {
                name: "actors",
                reason: "must be non-zero",
            });
        }
        if self.utterances_per_emotion == 0 {
            return Err(DatasetError::InvalidSpec {
                name: "utterances_per_emotion",
                reason: "must be non-zero",
            });
        }
        if self.emotions.is_empty() {
            return Err(DatasetError::InvalidSpec {
                name: "emotions",
                reason: "must be non-empty",
            });
        }
        if !(self.utterance_secs > 0.0) || !(self.sample_rate > 0.0) {
            return Err(DatasetError::InvalidSpec {
                name: "utterance_secs/sample_rate",
                reason: "must be positive",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_have_paper_structure() {
        let r = CorpusSpec::ravdess_like();
        assert_eq!((r.actors, r.emotions.len()), (24, 8));
        let e = CorpusSpec::emovo_like();
        assert_eq!((e.actors, e.emotions.len()), (6, 7));
        assert!(!e.emotions.contains(&Emotion::Calm));
        let c = CorpusSpec::crema_d_like();
        assert_eq!((c.actors, c.emotions.len()), (91, 6));
    }

    #[test]
    fn builders_scale() {
        let s = CorpusSpec::ravdess_like().with_actors(3).with_utterances(5);
        assert_eq!(s.total_utterances(), 3 * 5 * 8);
    }

    #[test]
    fn validation_catches_degenerate_specs() {
        assert!(CorpusSpec::ravdess_like()
            .with_actors(0)
            .validate()
            .is_err());
        assert!(CorpusSpec::ravdess_like()
            .with_utterances(0)
            .validate()
            .is_err());
        let mut s = CorpusSpec::ravdess_like();
        s.emotions.clear();
        assert!(s.validate().is_err());
        let mut s = CorpusSpec::ravdess_like();
        s.sample_rate = 0.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn label_names_in_order() {
        let names = CorpusSpec::crema_d_like().label_names();
        assert_eq!(names[0], "neutral");
        assert_eq!(names.len(), 6);
    }
}
