//! Minimal PCM16 WAV export so synthetic corpora can be listened to.

use crate::DatasetError;
use std::io;
use std::path::Path;

/// Encodes mono float samples (clamped to `[-1, 1]`) as a 16-bit PCM WAV
/// byte blob.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidSpec`] for a non-positive sample rate or
/// empty sample buffer.
///
/// # Example
///
/// ```
/// use datasets::wav::encode_wav;
/// # fn main() -> Result<(), datasets::DatasetError> {
/// let samples: Vec<f32> = (0..800)
///     .map(|i| (2.0 * std::f32::consts::PI * 440.0 * i as f32 / 8000.0).sin())
///     .collect();
/// let bytes = encode_wav(&samples, 8000)?;
/// assert_eq!(&bytes[..4], b"RIFF");
/// assert_eq!(&bytes[8..12], b"WAVE");
/// # Ok(())
/// # }
/// ```
pub fn encode_wav(samples: &[f32], sample_rate: u32) -> Result<Vec<u8>, DatasetError> {
    if sample_rate == 0 {
        return Err(DatasetError::InvalidSpec {
            name: "sample_rate",
            reason: "must be positive",
        });
    }
    if samples.is_empty() {
        return Err(DatasetError::InvalidSpec {
            name: "samples",
            reason: "must be non-empty",
        });
    }
    let data_len = (samples.len() * 2) as u32;
    let mut out = Vec::with_capacity(44 + samples.len() * 2);
    out.extend_from_slice(b"RIFF");
    out.extend_from_slice(&(36 + data_len).to_le_bytes());
    out.extend_from_slice(b"WAVE");
    // fmt chunk: PCM, mono, 16 bit.
    out.extend_from_slice(b"fmt ");
    out.extend_from_slice(&16u32.to_le_bytes());
    out.extend_from_slice(&1u16.to_le_bytes()); // PCM
    out.extend_from_slice(&1u16.to_le_bytes()); // mono
    out.extend_from_slice(&sample_rate.to_le_bytes());
    out.extend_from_slice(&(sample_rate * 2).to_le_bytes()); // byte rate
    out.extend_from_slice(&2u16.to_le_bytes()); // block align
    out.extend_from_slice(&16u16.to_le_bytes()); // bits per sample
    out.extend_from_slice(b"data");
    out.extend_from_slice(&data_len.to_le_bytes());
    for &s in samples {
        let v = (s.clamp(-1.0, 1.0) * i16::MAX as f32) as i16;
        out.extend_from_slice(&v.to_le_bytes());
    }
    Ok(out)
}

/// Writes samples to a WAV file, creating parent directories.
///
/// # Errors
///
/// Propagates encoding and filesystem errors (the latter as
/// `io::Error`-wrapped panics are avoided by returning `io::Result`).
pub fn write_wav<P: AsRef<Path>>(path: P, samples: &[f32], sample_rate: u32) -> io::Result<()> {
    let bytes = encode_wav(samples, sample_rate)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_fields_correct() {
        let bytes = encode_wav(&[0.0; 100], 8000).unwrap();
        assert_eq!(bytes.len(), 44 + 200);
        assert_eq!(&bytes[..4], b"RIFF");
        assert_eq!(&bytes[12..16], b"fmt ");
        assert_eq!(u16::from_le_bytes([bytes[22], bytes[23]]), 1); // mono
        assert_eq!(
            u32::from_le_bytes([bytes[24], bytes[25], bytes[26], bytes[27]]),
            8000
        );
        assert_eq!(&bytes[36..40], b"data");
        assert_eq!(
            u32::from_le_bytes([bytes[40], bytes[41], bytes[42], bytes[43]]),
            200
        );
    }

    #[test]
    fn samples_clamped_and_scaled() {
        let bytes = encode_wav(&[1.0, -1.0, 0.0, 2.0], 8000).unwrap();
        let sample = |i: usize| i16::from_le_bytes([bytes[44 + 2 * i], bytes[45 + 2 * i]]);
        assert_eq!(sample(0), i16::MAX);
        assert_eq!(sample(1), -i16::MAX);
        assert_eq!(sample(2), 0);
        assert_eq!(sample(3), i16::MAX); // clamped
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(encode_wav(&[], 8000).is_err());
        assert!(encode_wav(&[0.0], 0).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("affectsys_wav_test");
        let path = dir.join("tone.wav");
        write_wav(&path, &[0.5; 64], 16_000).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..4], b"RIFF");
        std::fs::remove_dir_all(&dir).ok();
    }
}
