//! Synthetic emotional-speech corpora for the `affectsys` reproduction
//! (DAC 2022).
//!
//! The paper trains its classifiers on three corpora that cannot be
//! redistributed here: **RAVDESS** (24 actors, 8 emotions, speech and song),
//! **EMOVO** (6 Italian actors, 7 emotions, 14 sentences) and **CREMA-D**
//! (91 actors, 6 emotions, 12 sentences). This crate generates corpora with
//! the same *structure* — actor counts, label sets, per-actor voice
//! variation — using the [`biosignal::voice`] synthesizer, whose acoustic
//! parameters are emotion-conditioned. The experiments in Fig. 3 measure
//! relative classifier behaviour across corpora and families, which this
//! substitution preserves (DESIGN.md §2).
//!
//! # Example
//!
//! ```
//! use datasets::{Corpus, CorpusSpec};
//!
//! # fn main() -> Result<(), datasets::DatasetError> {
//! // A miniature RAVDESS-like corpus (scaled for test speed).
//! let spec = CorpusSpec::ravdess_like().with_actors(4).with_utterances(1);
//! let corpus = Corpus::generate(&spec, 42)?;
//! assert_eq!(corpus.len(), 4 * spec.emotions.len());
//! # Ok(())
//! # }
//! ```

// `!(x > 0.0)` guards are deliberate: unlike `x <= 0.0` they also reject
// NaN, which is exactly what the parameter validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod corpus;
pub mod error;
pub mod features;
pub mod spec;
pub mod split;
pub mod wav;

pub use corpus::{Corpus, Utterance};
pub use error::DatasetError;
pub use features::{extract_dataset, FeatureLayout};
pub use spec::CorpusSpec;
pub use split::TrainTestSplit;
