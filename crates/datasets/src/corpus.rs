//! Corpus generation.

use crate::spec::CorpusSpec;
use crate::DatasetError;
use affect_core::emotion::Emotion;
use biosignal::voice::{synthesize_utterance, UtteranceParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One synthesized utterance with its labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Utterance {
    /// Actor index within the corpus.
    pub actor: usize,
    /// The acted emotion.
    pub emotion: Emotion,
    /// Class index within the corpus's label set.
    pub label: usize,
    /// Waveform at the corpus sample rate.
    pub waveform: Vec<f32>,
}

/// A generated corpus: the spec plus all utterances.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Corpus {
    spec: CorpusSpec,
    utterances: Vec<Utterance>,
}

impl Corpus {
    /// Generates the full corpus deterministically from `seed`.
    ///
    /// Each actor gets a stable synthetic voice: alternating low/high
    /// vocal registers with per-actor F0 spread, mimicking RAVDESS's
    /// male/female alternation.
    ///
    /// # Errors
    ///
    /// Propagates spec validation and synthesis errors.
    pub fn generate(spec: &CorpusSpec, seed: u64) -> Result<Self, DatasetError> {
        spec.validate()?;
        let mut utterances = Vec::with_capacity(spec.total_utterances());
        for actor in 0..spec.actors {
            let mut actor_rng =
                StdRng::seed_from_u64(seed ^ (actor as u64).wrapping_mul(0x9E37_79B9));
            // Alternate vocal registers; add per-actor spread.
            let register = if actor % 2 == 0 { 1.0 } else { 1.65 };
            let speaker_factor = register * (0.92 + 0.16 * actor_rng.random::<f32>());
            for (label, &emotion) in spec.emotions.iter().enumerate() {
                for utt in 0..spec.utterances_per_emotion {
                    let params = UtteranceParams::for_emotion(emotion)
                        .with_speaker(speaker_factor, &mut actor_rng)
                        .jittered(&mut actor_rng);
                    let utt_seed = seed
                        .wrapping_mul(31)
                        .wrapping_add((actor as u64) << 20)
                        .wrapping_add((label as u64) << 10)
                        .wrapping_add(utt as u64);
                    let waveform = synthesize_utterance(
                        &params,
                        spec.utterance_secs,
                        spec.sample_rate,
                        utt_seed,
                    )?;
                    utterances.push(Utterance {
                        actor,
                        emotion,
                        label,
                        waveform,
                    });
                }
            }
        }
        Ok(Self {
            spec: spec.clone(),
            utterances,
        })
    }

    /// The generating specification.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// All utterances.
    pub fn utterances(&self) -> &[Utterance] {
        &self.utterances
    }

    /// Number of utterances.
    pub fn len(&self) -> usize {
        self.utterances.len()
    }

    /// Returns `true` for a corpus with no utterances (cannot happen for a
    /// validated spec).
    pub fn is_empty(&self) -> bool {
        self.utterances.is_empty()
    }

    /// Class labels of every utterance, in order.
    pub fn labels(&self) -> Vec<usize> {
        self.utterances.iter().map(|u| u.label).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CorpusSpec {
        CorpusSpec::emovo_like().with_actors(2).with_utterances(1)
    }

    #[test]
    fn generates_expected_count() {
        let spec = tiny_spec();
        let c = Corpus::generate(&spec, 1).unwrap();
        assert_eq!(c.len(), spec.total_utterances());
        assert_eq!(c.len(), 2 * 7);
    }

    #[test]
    fn waveforms_have_spec_length() {
        let spec = tiny_spec();
        let c = Corpus::generate(&spec, 1).unwrap();
        let expected = (spec.utterance_secs * spec.sample_rate) as usize;
        assert!(c.utterances().iter().all(|u| u.waveform.len() == expected));
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = tiny_spec();
        let a = Corpus::generate(&spec, 7).unwrap();
        let b = Corpus::generate(&spec, 7).unwrap();
        assert_eq!(a.utterances()[3].waveform, b.utterances()[3].waveform);
        let c = Corpus::generate(&spec, 8).unwrap();
        assert_ne!(a.utterances()[3].waveform, c.utterances()[3].waveform);
    }

    #[test]
    fn labels_cover_all_classes() {
        let spec = tiny_spec();
        let c = Corpus::generate(&spec, 2).unwrap();
        let mut labels = c.labels();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), spec.emotions.len());
    }

    #[test]
    fn actors_have_distinct_voices() {
        // Same emotion, different actors -> different waveforms.
        let spec = CorpusSpec::emovo_like().with_actors(2).with_utterances(1);
        let c = Corpus::generate(&spec, 3).unwrap();
        let a0: Vec<_> = c
            .utterances()
            .iter()
            .filter(|u| u.actor == 0 && u.label == 0)
            .collect();
        let a1: Vec<_> = c
            .utterances()
            .iter()
            .filter(|u| u.actor == 1 && u.label == 0)
            .collect();
        assert_ne!(a0[0].waveform, a1[0].waveform);
    }

    #[test]
    fn invalid_spec_rejected() {
        assert!(Corpus::generate(&tiny_spec().with_actors(0), 1).is_err());
    }
}
