//! Train/test splitting.

use crate::corpus::Corpus;
use crate::DatasetError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Index-based train/test split of a corpus.
///
/// # Example
///
/// ```
/// use datasets::{Corpus, CorpusSpec, TrainTestSplit};
/// # fn main() -> Result<(), datasets::DatasetError> {
/// let spec = CorpusSpec::emovo_like().with_actors(4).with_utterances(1);
/// let corpus = Corpus::generate(&spec, 1)?;
/// let split = TrainTestSplit::by_actor(&corpus, 0.25, 7)?;
/// assert_eq!(split.train.len() + split.test.len(), corpus.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainTestSplit {
    /// Utterance indices assigned to training.
    pub train: Vec<usize>,
    /// Utterance indices assigned to testing.
    pub test: Vec<usize>,
}

impl TrainTestSplit {
    /// Random utterance-level split with `test_fraction` held out.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidSplit`] when the fraction is outside
    /// `(0, 1)` or either side ends up empty.
    pub fn random(corpus: &Corpus, test_fraction: f32, seed: u64) -> Result<Self, DatasetError> {
        if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
            return Err(DatasetError::InvalidSplit("fraction must be in (0, 1)"));
        }
        let mut idx: Vec<usize> = (0..corpus.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let n_test = ((corpus.len() as f32) * test_fraction).round() as usize;
        if n_test == 0 || n_test == corpus.len() {
            return Err(DatasetError::InvalidSplit("a side would be empty"));
        }
        let test = idx[..n_test].to_vec();
        let train = idx[n_test..].to_vec();
        Ok(Self { train, test })
    }

    /// Speaker-independent split: whole actors are held out (the standard
    /// protocol for speech-emotion recognition).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidSplit`] when the fraction is outside
    /// `(0, 1)` or either side would hold no actors.
    pub fn by_actor(corpus: &Corpus, test_fraction: f32, seed: u64) -> Result<Self, DatasetError> {
        if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
            return Err(DatasetError::InvalidSplit("fraction must be in (0, 1)"));
        }
        let actors = corpus.spec().actors;
        let mut actor_ids: Vec<usize> = (0..actors).collect();
        actor_ids.shuffle(&mut StdRng::seed_from_u64(seed));
        let n_test = ((actors as f32) * test_fraction).round().max(1.0) as usize;
        if n_test >= actors {
            return Err(DatasetError::InvalidSplit("a side would hold no actors"));
        }
        let test_actors: Vec<usize> = actor_ids[..n_test].to_vec();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, utt) in corpus.utterances().iter().enumerate() {
            if test_actors.contains(&utt.actor) {
                test.push(i);
            } else {
                train.push(i);
            }
        }
        Ok(Self { train, test })
    }

    /// Gathers the elements of `items` selected by an index list.
    pub fn gather<T: Clone>(indices: &[usize], items: &[T]) -> Vec<T> {
        indices.iter().map(|&i| items[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CorpusSpec;

    fn corpus() -> Corpus {
        let spec = CorpusSpec::emovo_like().with_actors(4).with_utterances(1);
        Corpus::generate(&spec, 3).unwrap()
    }

    #[test]
    fn random_split_partitions() {
        let c = corpus();
        let s = TrainTestSplit::random(&c, 0.25, 1).unwrap();
        assert_eq!(s.train.len() + s.test.len(), c.len());
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..c.len()).collect::<Vec<_>>());
    }

    #[test]
    fn by_actor_keeps_speakers_disjoint() {
        let c = corpus();
        let s = TrainTestSplit::by_actor(&c, 0.25, 2).unwrap();
        let train_actors: std::collections::BTreeSet<usize> =
            s.train.iter().map(|&i| c.utterances()[i].actor).collect();
        let test_actors: std::collections::BTreeSet<usize> =
            s.test.iter().map(|&i| c.utterances()[i].actor).collect();
        assert!(train_actors.is_disjoint(&test_actors));
        assert!(!test_actors.is_empty());
    }

    #[test]
    fn invalid_fractions_rejected() {
        let c = corpus();
        assert!(TrainTestSplit::random(&c, 0.0, 1).is_err());
        assert!(TrainTestSplit::random(&c, 1.0, 1).is_err());
        assert!(TrainTestSplit::by_actor(&c, 0.99, 1).is_err());
    }

    #[test]
    fn splits_deterministic_per_seed() {
        let c = corpus();
        assert_eq!(
            TrainTestSplit::by_actor(&c, 0.25, 5).unwrap(),
            TrainTestSplit::by_actor(&c, 0.25, 5).unwrap()
        );
        assert_ne!(
            TrainTestSplit::random(&c, 0.25, 5).unwrap(),
            TrainTestSplit::random(&c, 0.25, 6).unwrap()
        );
    }

    #[test]
    fn gather_selects_in_order() {
        let items = vec!["a", "b", "c", "d"];
        assert_eq!(TrainTestSplit::gather(&[2, 0], &items), vec!["c", "a"]);
    }
}
