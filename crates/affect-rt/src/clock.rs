//! Time sources for the runtime.
//!
//! All latency accounting goes through the [`Clock`] trait so tests can
//! substitute a [`VirtualClock`] and make deadline misses deterministic:
//! a test advances virtual time while a window is in flight and the
//! runtime observes exactly the latency the test dictated.
//!
//! The types now live in `affect-obs` (the observability layer needs
//! them too, and it sits *below* affect-rt in the dependency graph);
//! this module re-exports them so existing `affect_rt::clock::...` paths
//! keep working.

pub use affect_obs::clock::{Clock, SystemClock, VirtualClock};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_moves_only_on_advance() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(1_000);
        clock.advance(500);
        assert_eq!(clock.now_nanos(), 1_500);
        clock.set(10);
        assert_eq!(clock.now_nanos(), 10);
    }
}
