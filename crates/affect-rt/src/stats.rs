//! Lock-free runtime statistics and the end-of-run report.
//!
//! Counters are plain atomics updated from the worker threads; latency
//! percentiles come from a log2-bucketed histogram (one atomic per
//! power-of-two bucket), so the hot path never takes a lock. Percentiles
//! are therefore bucket-resolution approximations — each reported value is
//! the upper bound of the bucket containing the requested quantile, i.e.
//! within 2x of the true latency — which is plenty for deadline triage.

use std::sync::atomic::{AtomicU64, Ordering};

use affect_core::classifier::ClassifierKind;

const BUCKETS: usize = 64;

/// Log2-bucketed latency histogram with atomic buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (nanoseconds).
    pub fn record(&self, nanos: u64) {
        let bucket = (u64::BITS - nanos.max(1).leading_zeros() - 1) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]`, as the upper bound of the
    /// containing bucket; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) - 1, saturating at the top.
                return if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Snapshot of count, mean, p50/p95/p99 and max.
    pub fn summary(&self) -> LatencySummary {
        let count = self.count();
        LatencySummary {
            count,
            mean_ns: self
                .sum
                .load(Ordering::Relaxed)
                .checked_div(count)
                .unwrap_or(0),
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
            max_ns: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Percentile snapshot of a latency distribution (nanoseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// Median (bucket upper bound).
    pub p50_ns: u64,
    /// 95th percentile (bucket upper bound).
    pub p95_ns: u64,
    /// 99th percentile (bucket upper bound).
    pub p99_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

/// One session's accounting in a [`RuntimeReport`].
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Session index (order of `add_session` calls).
    pub session: usize,
    /// Windows submitted (including ones later shed or decimated).
    pub produced: u64,
    /// Windows that completed the full pipeline.
    pub processed: u64,
    /// Windows shed by overflow policy or decimated by a widened decision
    /// interval.
    pub dropped: u64,
    /// Windows whose end-to-end latency exceeded the deadline budget.
    pub deadline_misses: u64,
    /// Times sustained misses forced a model fallback / interval widening.
    pub degradations: u64,
    /// Times sustained on-time windows restored a richer model.
    pub recoveries: u64,
    /// Classifier family in force at report time.
    pub family: ClassifierKind,
    /// Decision interval in force at report time (1 = classify every
    /// window; k = classify every k-th).
    pub decision_interval: u32,
    /// End-to-end (arrival → actuated) latency distribution.
    pub latency: LatencySummary,
}

impl SessionReport {
    /// `true` when every submitted window is accounted for: it either
    /// completed the pipeline or was counted as dropped. The runtime's
    /// no-silent-loss invariant.
    pub fn accounted(&self) -> bool {
        self.produced == self.processed + self.dropped
    }

    /// Fraction of processed windows that missed the deadline (0 when
    /// nothing was processed).
    pub fn miss_rate(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.processed as f64
        }
    }
}

/// One pipeline stage's queue counters in a [`RuntimeReport`].
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage name (`"ingest"`, `"classify"`, `"control"`, `"actuate"`).
    pub stage: &'static str,
    /// Messages accepted into the stage's queue.
    pub pushed: u64,
    /// Messages consumed by the stage's workers.
    pub popped: u64,
    /// Messages shed by the stage's overflow policy.
    pub shed: u64,
    /// Deepest the stage's queue has been.
    pub depth_high_water: usize,
    /// The queue's capacity.
    pub capacity: usize,
}

/// Classify-stage hot-path counters aggregated across workers: how much
/// work arrived in batches and how well the per-worker scratch arenas
/// amortised their allocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassifyReport {
    /// Windows classified.
    pub windows: u64,
    /// Queue drains (each drain classifies 1..=batch windows).
    pub batches: u64,
    /// Largest number of windows classified in one drain.
    pub max_batch: u64,
    /// Scratch-arena buffer allocations (cold starts and growth).
    pub scratch_allocs: u64,
    /// Scratch-arena buffer reuses (allocation-free acquisitions).
    pub scratch_reuses: u64,
}

impl ClassifyReport {
    /// Mean windows per queue drain (0 when nothing ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.windows as f64 / self.batches as f64
        }
    }

    /// Fraction of scratch acquisitions served without allocating (0 when
    /// the scratch was never used).
    pub fn reuse_rate(&self) -> f64 {
        let total = self.scratch_allocs + self.scratch_reuses;
        if total == 0 {
            0.0
        } else {
            self.scratch_reuses as f64 / total as f64
        }
    }
}

/// Fault and recovery counters aggregated across the whole runtime: what
/// went wrong (or was injected) and what the supervision layer did about
/// it. All zeros on a healthy run with no fault hook attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Worker panics caught by per-window supervision (injected + organic).
    pub worker_panics: u64,
    /// Panics the worker survived: it backed off and resumed its loop.
    pub worker_restarts: u64,
    /// Workers retired after exhausting their restart budget.
    pub workers_lost: u64,
    /// Windows refused at the feature stage for carrying non-finite
    /// samples (NaN/∞ sensor faults) — each costs exactly one window.
    pub rejected_windows: u64,
    /// Windows force-drained from stalled queues by the watchdog.
    pub watchdog_sheds: u64,
    /// Times a session's classify circuit breaker tripped open (forcing
    /// the MLP family until a recovery probe succeeds).
    pub breaker_trips: u64,
    /// Times a half-open probe succeeded and a breaker closed again.
    pub breaker_closes: u64,
}

impl FaultReport {
    /// `true` when nothing faulted and nothing was recovered — the shape
    /// of a clean run.
    pub fn is_quiet(&self) -> bool {
        *self == FaultReport::default()
    }
}

/// Everything the runtime knows about a run: per-session accounting and
/// per-stage queue behaviour.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// One entry per session, in `add_session` order.
    pub sessions: Vec<SessionReport>,
    /// One entry per pipeline stage, in pipeline order.
    pub stages: Vec<StageReport>,
    /// Classify-stage batching and scratch-arena counters.
    pub classify: ClassifyReport,
    /// Fault and supervision counters (all zero on a healthy run).
    pub faults: FaultReport,
}

impl RuntimeReport {
    /// `true` when every session satisfies the no-silent-loss invariant.
    pub fn all_accounted(&self) -> bool {
        self.sessions.iter().all(SessionReport::accounted)
    }

    /// Total windows submitted across sessions.
    pub fn total_produced(&self) -> u64 {
        self.sessions.iter().map(|s| s.produced).sum()
    }

    /// Total windows that completed the pipeline across sessions.
    pub fn total_processed(&self) -> u64 {
        self.sessions.iter().map(|s| s.processed).sum()
    }

    /// Total windows shed or decimated across sessions.
    pub fn total_dropped(&self) -> u64 {
        self.sessions.iter().map(|s| s.dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        let s = h.summary();
        assert!(s.p50_ns >= 200 && s.p50_ns < 800, "p50 {}", s.p50_ns);
        assert!(s.p99_ns >= 100_000, "p99 {}", s.p99_ns);
        assert_eq!(s.max_ns, 100_000);
        assert!(s.mean_ns > 0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn zero_latency_lands_in_first_bucket() {
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(0.5) <= 1);
    }

    #[test]
    fn classify_report_rates() {
        let r = ClassifyReport {
            windows: 12,
            batches: 4,
            max_batch: 5,
            scratch_allocs: 6,
            scratch_reuses: 18,
        };
        assert!((r.mean_batch() - 3.0).abs() < 1e-12);
        assert!((r.reuse_rate() - 0.75).abs() < 1e-12);
        assert_eq!(ClassifyReport::default().mean_batch(), 0.0);
        assert_eq!(ClassifyReport::default().reuse_rate(), 0.0);
    }

    #[test]
    fn accounted_invariant() {
        let mut r = SessionReport {
            session: 0,
            produced: 10,
            processed: 7,
            dropped: 3,
            deadline_misses: 2,
            degradations: 0,
            recoveries: 0,
            family: ClassifierKind::Lstm,
            decision_interval: 1,
            latency: LatencySummary::default(),
        };
        assert!(r.accounted());
        assert!((r.miss_rate() - 2.0 / 7.0).abs() < 1e-12);
        r.dropped = 2;
        assert!(!r.accounted());
    }
}
