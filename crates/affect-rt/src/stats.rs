//! Lock-free runtime statistics and the end-of-run report.
//!
//! Counters are plain atomics updated from the worker threads; latency
//! percentiles come from a log2-bucketed histogram (one atomic per
//! power-of-two bucket), so the hot path never takes a lock. Percentiles
//! are therefore bucket-resolution approximations — each reported value is
//! the upper bound of the bucket containing the requested quantile, i.e.
//! within 2x of the true latency — which is plenty for deadline triage.

use std::sync::atomic::{AtomicU64, Ordering};

use affect_core::classifier::ClassifierKind;

use crate::mem::MemReport;

const BUCKETS: usize = 64;

/// Log2-bucketed latency histogram with atomic buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (nanoseconds).
    pub fn record(&self, nanos: u64) {
        let bucket = (u64::BITS - nanos.max(1).leading_zeros() - 1) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]`, as the upper bound of the
    /// containing bucket; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) - 1, saturating at the top.
                return if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Snapshot of count, mean, p50/p95/p99 and max.
    pub fn summary(&self) -> LatencySummary {
        let count = self.count();
        LatencySummary {
            count,
            mean_ns: self
                .sum
                .load(Ordering::Relaxed)
                .checked_div(count)
                .unwrap_or(0),
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
            max_ns: self.max.load(Ordering::Relaxed),
        }
    }

    /// Copies the full bucket resolution out into a mergeable
    /// [`LatencyHistogram`] (reports carry this alongside the summary so
    /// fleet-level aggregation can merge distributions losslessly).
    pub fn snapshot_hist(&self) -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain (non-atomic) copy of a log2 latency histogram, carried inside
/// reports so distributions can be merged across sessions, shards and
/// whole runtimes without losing bucket resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts (bucket `i` covers `[2^i, 2^(i+1) - 1]`).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample (exact).
    pub max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one sample (nanoseconds). Mostly useful in tests; the live
    /// path records into the atomic [`Histogram`].
    pub fn record(&mut self, nanos: u64) {
        let bucket = (u64::BITS - nanos.max(1).leading_zeros() - 1) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += nanos;
        self.max = self.max.max(nanos);
    }

    /// Adds every bucket of `other` into `self`. Bucket-wise addition is
    /// exact: merging two histograms is the histogram of the combined
    /// sample set, so merge order never matters.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`, as the upper bound of the
    /// containing bucket; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return if i + 1 >= BUCKETS {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        self.max
    }

    /// Derives the percentile summary from the merged buckets.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_ns: self.sum.checked_div(self.count).unwrap_or(0),
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
            max_ns: self.max,
        }
    }
}

/// Percentile snapshot of a latency distribution (nanoseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// Median (bucket upper bound).
    pub p50_ns: u64,
    /// 95th percentile (bucket upper bound).
    pub p95_ns: u64,
    /// 99th percentile (bucket upper bound).
    pub p99_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

/// One session's accounting in a [`RuntimeReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Session index (order of `add_session` calls).
    pub session: usize,
    /// Windows submitted (including ones later shed or decimated).
    pub produced: u64,
    /// Windows that completed the full pipeline.
    pub processed: u64,
    /// Windows shed by overflow policy or decimated by a widened decision
    /// interval.
    pub dropped: u64,
    /// Windows whose end-to-end latency exceeded the deadline budget.
    pub deadline_misses: u64,
    /// Times sustained misses forced a model fallback / interval widening.
    pub degradations: u64,
    /// Times sustained on-time windows restored a richer model.
    pub recoveries: u64,
    /// Classifier family in force at report time.
    pub family: ClassifierKind,
    /// Decision interval in force at report time (1 = classify every
    /// window; k = classify every k-th).
    pub decision_interval: u32,
    /// End-to-end (arrival → actuated) latency distribution.
    pub latency: LatencySummary,
    /// The full log2 bucket resolution behind `latency`, kept so
    /// fleet-level merges can combine distributions exactly.
    pub latency_hist: LatencyHistogram,
    /// Whether the session was evicted (memory pressure or an explicit
    /// [`crate::Runtime::remove_session`]) and not readmitted by report
    /// time. An evicted session's counters stay in the report — eviction
    /// hands accounting off exactly, it never erases it.
    pub evicted: bool,
}

impl SessionReport {
    /// `true` when every submitted window is accounted for: it either
    /// completed the pipeline or was counted as dropped. The runtime's
    /// no-silent-loss invariant.
    pub fn accounted(&self) -> bool {
        self.produced == self.processed + self.dropped
    }

    /// Fraction of processed windows that missed the deadline (0 when
    /// nothing was processed).
    pub fn miss_rate(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.processed as f64
        }
    }
}

impl SessionReport {
    /// Folds `other` (the same logical session observed by another shard
    /// or runtime) into `self`: counters sum, the latency histograms merge
    /// bucket-wise (and the summary is re-derived from the merged
    /// buckets), the classifier family resolves to the more degraded of
    /// the two and the decision interval to the wider — both symmetric, so
    /// `merge(a, b) == merge(b, a)`.
    pub fn merge(&mut self, other: &SessionReport) {
        self.produced += other.produced;
        self.processed += other.processed;
        self.dropped += other.dropped;
        self.deadline_misses += other.deadline_misses;
        self.degradations += other.degradations;
        self.recoveries += other.recoveries;
        self.latency_hist.merge(&other.latency_hist);
        self.latency = self.latency_hist.summary();
        // "More degraded wins": HDC < MLP < CNN < LSTM on the ladder.
        if ladder_rank(other.family) < ladder_rank(self.family) {
            self.family = other.family;
        }
        self.decision_interval = self.decision_interval.max(other.decision_interval);
        // Either observer having seen the session evicted means it is out.
        self.evicted |= other.evicted;
    }
}

fn ladder_rank(kind: ClassifierKind) -> u8 {
    match kind {
        ClassifierKind::Hdc => 0,
        ClassifierKind::Mlp => 1,
        ClassifierKind::Cnn => 2,
        ClassifierKind::Lstm => 3,
    }
}

/// One pipeline stage's queue counters in a [`RuntimeReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name (`"ingest"`, `"classify"`, `"control"`, `"actuate"`).
    pub stage: &'static str,
    /// Messages accepted into the stage's queue.
    pub pushed: u64,
    /// Messages consumed by the stage's workers.
    pub popped: u64,
    /// Messages shed by the stage's overflow policy.
    pub shed: u64,
    /// Deepest the stage's queue has been.
    pub depth_high_water: usize,
    /// The queue's capacity.
    pub capacity: usize,
}

/// Classify-stage hot-path counters aggregated across workers: how much
/// work arrived in batches and how well the per-worker scratch arenas
/// amortised their allocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassifyReport {
    /// Windows classified.
    pub windows: u64,
    /// Queue drains (each drain classifies 1..=batch windows).
    pub batches: u64,
    /// Largest number of windows classified in one drain.
    pub max_batch: u64,
    /// Scratch-arena buffer allocations (cold starts and growth).
    pub scratch_allocs: u64,
    /// Scratch-arena buffer reuses (allocation-free acquisitions).
    pub scratch_reuses: u64,
    /// Windows classified per family, indexed HDC/MLP/CNN/LSTM (ladder
    /// order, cheapest first) — the degradation mix of the run.
    pub family_windows: [u64; 4],
}

impl ClassifyReport {
    /// Mean windows per queue drain (0 when nothing ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.windows as f64 / self.batches as f64
        }
    }

    /// Fraction of scratch acquisitions served without allocating (0 when
    /// the scratch was never used).
    pub fn reuse_rate(&self) -> f64 {
        let total = self.scratch_allocs + self.scratch_reuses;
        if total == 0 {
            0.0
        } else {
            self.scratch_reuses as f64 / total as f64
        }
    }
}

/// Fault and recovery counters aggregated across the whole runtime: what
/// went wrong (or was injected) and what the supervision layer did about
/// it. All zeros on a healthy run with no fault hook attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Worker panics caught by per-window supervision (injected + organic).
    pub worker_panics: u64,
    /// Panics the worker survived: it backed off and resumed its loop.
    pub worker_restarts: u64,
    /// Workers retired after exhausting their restart budget.
    pub workers_lost: u64,
    /// Windows refused at the feature stage for carrying non-finite
    /// samples (NaN/∞ sensor faults) — each costs exactly one window.
    pub rejected_windows: u64,
    /// Windows force-drained from stalled queues by the watchdog.
    pub watchdog_sheds: u64,
    /// Times a session's classify circuit breaker tripped open (forcing
    /// the MLP family until a recovery probe succeeds).
    pub breaker_trips: u64,
    /// Times a half-open probe succeeded and a breaker closed again.
    pub breaker_closes: u64,
}

impl FaultReport {
    /// `true` when nothing faulted and nothing was recovered — the shape
    /// of a clean run.
    pub fn is_quiet(&self) -> bool {
        *self == FaultReport::default()
    }
}

/// Everything the runtime knows about a run: per-session accounting and
/// per-stage queue behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// One entry per session, in `add_session` order.
    pub sessions: Vec<SessionReport>,
    /// One entry per pipeline stage, in pipeline order.
    pub stages: Vec<StageReport>,
    /// Classify-stage batching and scratch-arena counters.
    pub classify: ClassifyReport,
    /// Fault and supervision counters (all zero on a healthy run).
    pub faults: FaultReport,
    /// Memory-budget accounting at report time (all zero when no governor
    /// is configured).
    pub mem: MemReport,
}

impl RuntimeReport {
    /// `true` when every session satisfies the no-silent-loss invariant.
    pub fn all_accounted(&self) -> bool {
        self.sessions.iter().all(SessionReport::accounted)
    }

    /// Total windows submitted across sessions.
    pub fn total_produced(&self) -> u64 {
        self.sessions.iter().map(|s| s.produced).sum()
    }

    /// Total windows that completed the pipeline across sessions.
    pub fn total_processed(&self) -> u64 {
        self.sessions.iter().map(|s| s.processed).sum()
    }

    /// Total windows shed or decimated across sessions.
    pub fn total_dropped(&self) -> u64 {
        self.sessions.iter().map(|s| s.dropped).sum()
    }

    /// The whole runtime's end-to-end latency distribution: every
    /// session's histogram merged bucket-wise.
    pub fn merged_latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::default();
        for s in &self.sessions {
            merged.merge(&s.latency_hist);
        }
        merged
    }

    /// Folds another runtime's report into this one — the fleet-level
    /// aggregation primitive.
    ///
    /// Sessions are matched by their `session` id: a shared id means "the
    /// same logical session seen by two observers" and the entries merge
    /// via [`SessionReport::merge`]; an id only `other` has is appended.
    /// (A fleet remaps each shard's local indices to globally unique ids
    /// before merging, so cross-shard sessions never collide.) The merged
    /// session list is re-sorted by id, stages merge by name (counter
    /// sums, capacity sums, high-water max), and the classify/fault
    /// counter blocks sum field-wise — every rule is symmetric, so
    /// `merge(a, b) == merge(b, a)` (proven by a unit test).
    ///
    /// # Panics
    ///
    /// Panics when both inputs satisfied the accounting invariant but the
    /// merged report does not — arithmetic that can only mean the merge
    /// itself lost a window, never a runtime condition.
    pub fn merge(&mut self, other: &RuntimeReport) {
        let inputs_accounted = self.all_accounted() && other.all_accounted();
        for theirs in &other.sessions {
            match self
                .sessions
                .iter_mut()
                .find(|mine| mine.session == theirs.session)
            {
                Some(mine) => mine.merge(theirs),
                None => self.sessions.push(theirs.clone()),
            }
        }
        self.sessions.sort_by_key(|s| s.session);
        for theirs in &other.stages {
            match self
                .stages
                .iter_mut()
                .find(|mine| mine.stage == theirs.stage)
            {
                Some(mine) => {
                    mine.pushed += theirs.pushed;
                    mine.popped += theirs.popped;
                    mine.shed += theirs.shed;
                    mine.depth_high_water = mine.depth_high_water.max(theirs.depth_high_water);
                    mine.capacity += theirs.capacity;
                }
                None => self.stages.push(theirs.clone()),
            }
        }
        self.classify.windows += other.classify.windows;
        self.classify.batches += other.classify.batches;
        self.classify.max_batch = self.classify.max_batch.max(other.classify.max_batch);
        self.classify.scratch_allocs += other.classify.scratch_allocs;
        self.classify.scratch_reuses += other.classify.scratch_reuses;
        for (mine, theirs) in self
            .classify
            .family_windows
            .iter_mut()
            .zip(other.classify.family_windows.iter())
        {
            *mine += theirs;
        }
        self.mem.merge(&other.mem);
        self.faults.worker_panics += other.faults.worker_panics;
        self.faults.worker_restarts += other.faults.worker_restarts;
        self.faults.workers_lost += other.faults.workers_lost;
        self.faults.rejected_windows += other.faults.rejected_windows;
        self.faults.watchdog_sheds += other.faults.watchdog_sheds;
        self.faults.breaker_trips += other.faults.breaker_trips;
        self.faults.breaker_closes += other.faults.breaker_closes;
        assert!(
            !inputs_accounted || self.all_accounted(),
            "merge broke produced == processed + dropped"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        let s = h.summary();
        assert!(s.p50_ns >= 200 && s.p50_ns < 800, "p50 {}", s.p50_ns);
        assert!(s.p99_ns >= 100_000, "p99 {}", s.p99_ns);
        assert_eq!(s.max_ns, 100_000);
        assert!(s.mean_ns > 0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn zero_latency_lands_in_first_bucket() {
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(0.5) <= 1);
    }

    #[test]
    fn classify_report_rates() {
        let r = ClassifyReport {
            windows: 12,
            batches: 4,
            max_batch: 5,
            scratch_allocs: 6,
            scratch_reuses: 18,
            family_windows: [3, 3, 3, 3],
        };
        assert!((r.mean_batch() - 3.0).abs() < 1e-12);
        assert!((r.reuse_rate() - 0.75).abs() < 1e-12);
        assert_eq!(ClassifyReport::default().mean_batch(), 0.0);
        assert_eq!(ClassifyReport::default().reuse_rate(), 0.0);
    }

    #[test]
    fn accounted_invariant() {
        let mut r = session_report(0, 10, 7, 3, ClassifierKind::Lstm);
        r.deadline_misses = 2;
        assert!(r.accounted());
        assert!((r.miss_rate() - 2.0 / 7.0).abs() < 1e-12);
        r.dropped = 2;
        assert!(!r.accounted());
    }

    fn session_report(
        session: usize,
        produced: u64,
        processed: u64,
        dropped: u64,
        family: ClassifierKind,
    ) -> SessionReport {
        let mut hist = LatencyHistogram::default();
        for i in 0..processed {
            hist.record(1_000 * (session as u64 * 7 + i + 1));
        }
        SessionReport {
            session,
            produced,
            processed,
            dropped,
            deadline_misses: 0,
            degradations: 0,
            recoveries: 0,
            family,
            decision_interval: 1,
            latency: hist.summary(),
            latency_hist: hist,
            evicted: false,
        }
    }

    fn stage_report(stage: &'static str, pushed: u64, popped: u64, shed: u64) -> StageReport {
        StageReport {
            stage,
            pushed,
            popped,
            shed,
            depth_high_water: (pushed % 5) as usize,
            capacity: 8,
        }
    }

    fn runtime_report(sessions: Vec<SessionReport>, seed: u64) -> RuntimeReport {
        RuntimeReport {
            sessions,
            stages: vec![
                stage_report("ingest", 10 + seed, 9 + seed, 1),
                stage_report("classify", 9 + seed, 9 + seed, 0),
            ],
            classify: ClassifyReport {
                windows: 9 + seed,
                batches: 3 + seed,
                max_batch: 4,
                scratch_allocs: 2,
                scratch_reuses: 7 + seed,
                family_windows: [seed, 2, 3, 4 + seed],
            },
            faults: FaultReport {
                worker_panics: seed,
                ..FaultReport::default()
            },
            mem: MemReport::default(),
        }
    }

    #[test]
    fn merge_is_commutative() {
        // Disjoint session ids (the fleet case) plus one shared id (the
        // same logical session observed twice).
        let a = runtime_report(
            vec![
                session_report(0, 12, 10, 2, ClassifierKind::Lstm),
                session_report(2, 8, 8, 0, ClassifierKind::Cnn),
            ],
            1,
        );
        let b = runtime_report(
            vec![
                session_report(1, 20, 15, 5, ClassifierKind::Mlp),
                session_report(2, 6, 4, 2, ClassifierKind::Mlp),
            ],
            5,
        );
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be order-independent");
        assert!(ab.all_accounted());
        assert_eq!(ab.total_produced(), 46);
        assert_eq!(ab.total_processed(), 37);
        assert_eq!(ab.total_dropped(), 9);
        // The shared session combined: counters summed, more degraded
        // family won, histogram count is the union.
        let shared = ab.sessions.iter().find(|s| s.session == 2).unwrap();
        assert_eq!(shared.produced, 14);
        assert_eq!(shared.family, ClassifierKind::Mlp);
        assert_eq!(shared.latency_hist.count, 12);
        assert_eq!(shared.latency, shared.latency_hist.summary());
        // Stage counters summed by name.
        let ingest = ab.stages.iter().find(|s| s.stage == "ingest").unwrap();
        assert_eq!(ingest.pushed, 11 + 15);
        assert_eq!(ingest.capacity, 16);
        assert_eq!(ab.faults.worker_panics, 6);
    }

    #[test]
    fn merge_preserves_and_checks_the_accounting_invariant() {
        // Accounted inputs merge into an accounted output (the assert
        // inside `merge` fires otherwise, so reaching this line IS the
        // proof the guard passed).
        let a = runtime_report(vec![session_report(0, 10, 7, 3, ClassifierKind::Mlp)], 0);
        let b = runtime_report(vec![session_report(0, 4, 4, 0, ClassifierKind::Cnn)], 1);
        let mut merged = a.clone();
        merged.merge(&b);
        assert!(merged.all_accounted());
        assert_eq!(merged.sessions[0].produced, 14);
        // An input that was already unaccounted (a mid-flight snapshot)
        // merges without panicking — the guard only arms when both inputs
        // satisfied the invariant.
        let mut midflight = b.clone();
        midflight.sessions[0].produced += 5; // 5 windows still in the pipe
        assert!(!midflight.all_accounted());
        let mut merged2 = a.clone();
        merged2.merge(&midflight);
        assert!(!merged2.all_accounted());
        assert_eq!(merged2.sessions[0].produced, 19);
    }

    #[test]
    fn merging_an_empty_shard_is_total_and_commutative() {
        // A shard that admitted zero sessions produces a report with an
        // empty session list (and possibly empty stage list). Folding it
        // in either direction must be a no-op on the populated side.
        let populated = runtime_report(
            vec![
                session_report(0, 12, 10, 2, ClassifierKind::Lstm),
                session_report(3, 5, 5, 0, ClassifierKind::Hdc),
            ],
            2,
        );
        let empty = RuntimeReport {
            sessions: Vec::new(),
            stages: Vec::new(),
            classify: ClassifyReport::default(),
            faults: FaultReport::default(),
            mem: MemReport::default(),
        };
        assert!(empty.all_accounted(), "vacuously accounted");
        let mut ab = populated.clone();
        ab.merge(&empty);
        let mut ba = empty.clone();
        ba.merge(&populated);
        assert_eq!(ab, ba, "empty-shard merge must be order-independent");
        assert_eq!(ab.sessions.len(), 2);
        assert_eq!(ab.total_produced(), populated.total_produced());
        assert!(ab.all_accounted());
        // Both directions reproduce the populated report exactly.
        assert_eq!(ab, populated);
        // And two empty shards merge into an empty report.
        let mut both_empty = empty.clone();
        both_empty.merge(&empty);
        assert_eq!(both_empty, empty);
    }

    #[test]
    fn disjoint_family_counters_merge_totally_and_commutatively() {
        // One shard classified only on the rich end of the ladder, the
        // other only on the cheap end: no overlapping family counter is
        // non-zero, and the merge must still sum element-wise without
        // losing either side.
        let mut a = runtime_report(vec![session_report(0, 4, 4, 0, ClassifierKind::Lstm)], 0);
        a.classify.family_windows = [0, 0, 3, 9]; // CNN + LSTM only
        let mut b = runtime_report(vec![session_report(1, 6, 6, 0, ClassifierKind::Hdc)], 0);
        b.classify.family_windows = [5, 7, 0, 0]; // HDC + MLP only
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "disjoint-counter merge must be order-independent");
        assert_eq!(ab.classify.family_windows, [5, 7, 3, 9]);
        assert!(ab.all_accounted());
    }

    #[test]
    fn eviction_flag_survives_merge_and_preserves_accounting() {
        let mut a = session_report(2, 9, 6, 3, ClassifierKind::Mlp);
        a.evicted = true;
        let b = session_report(2, 4, 4, 0, ClassifierKind::Mlp);
        let mut ab = a.clone();
        ab.merge(&b);
        assert!(ab.evicted, "either observer seeing the eviction wins");
        assert!(ab.accounted(), "evicted counters still add up");
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn mem_report_merge_is_symmetric_and_takes_worst_band() {
        let a = MemReport {
            budget_bytes: 1000,
            used_bytes: 900,
            used_by: [100, 200, 300, 150, 150, 0],
            band: 2, // Red
            band_transitions: [0, 1, 1, 0],
            pressure_degradations: 3,
        };
        let b = MemReport {
            budget_bytes: 500,
            used_bytes: 100,
            used_by: [50, 50, 0, 0, 0, 0],
            band: 0, // Green
            band_transitions: [1, 1, 0, 0],
            pressure_degradations: 0,
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.budget_bytes, 1500);
        assert_eq!(ab.used_bytes, 1000);
        assert_eq!(ab.band, 2, "worst band wins");
        assert_eq!(ab.band_transitions, [1, 2, 1, 0]);
        assert_eq!(ab.pressure_degradations, 3);
    }

    #[test]
    fn latency_histogram_merges_exactly() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut both = LatencyHistogram::default();
        for v in [3u64, 900, 1_048_576] {
            a.record(v);
            both.record(v);
        }
        for v in [17u64, 17, 2_000_000_000] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged, both, "merge == histogram of the union");
        assert_eq!(merged.summary().count, 6);
        assert_eq!(merged.max, 2_000_000_000);
    }
}
