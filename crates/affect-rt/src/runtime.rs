//! The staged streaming runtime: ingest → feature → classify → control →
//! actuate, each stage on its own worker thread(s) behind a bounded queue.
//!
//! ## Topology
//!
//! ```text
//!  submit() ──▶ [ingest ring] ──▶ feature workers (xW)
//!                                     │ extract per session's family
//!                                     ▼
//!                              [classify ring] ──▶ classify workers (xW)
//!                                     │ shared pool; each worker owns all
//!                                     │ four model families (per precision)
//!                                     ▼
//!                               [control ring] ──▶ control worker (x1)
//!                                     │ per-session SystemController
//!                                     ▼
//!                               [actuate ring] ──▶ actuate worker (x1)
//!                                       per-session Actuator; latency,
//!                                       deadline + degradation accounting
//! ```
//!
//! Classifier models are not `Send` (layers are plain `Box<dyn Layer>`),
//! so each classify worker *builds its own* pool at startup — the three
//! scaled neural families (per configured precision) plus the integer-only
//! HDC rung — and dispatches on the (family, precision) pair stamped into
//! the message; a session's family switch is picked up by whichever worker
//! handles its next window.
//!
//! ## Accounting invariant
//!
//! Every submitted window ends in exactly one of two counters: `processed`
//! (survived the full pipeline) or `dropped` (shed by an overflow policy,
//! decimated by a widened decision interval, or refused by a malformed
//! extraction). `produced == processed + dropped` holds for every session
//! once the pipeline drains — [`Runtime::wait_idle`] waits on exactly that
//! condition, so nothing is ever lost silently.
//!
//! ## Graceful degradation
//!
//! Windows carry their arrival timestamp; the actuate stage measures
//! end-to-end latency against the deadline budget. A configured streak of
//! consecutive misses degrades the session — classifier falls back one
//! family (LSTM → CNN → MLP → HDC) *and* the decision interval widens so
//! only every k-th window enters the pipeline. A streak of on-time windows
//! recovers one step at a time (first the interval, then the family). The
//! fallback stops at the session's floor: [`RuntimeConfig::floor_family`]
//! (default the HDC rung), optionally raised by
//! [`RuntimeConfig::min_accuracy`] to the cheapest rung meeting that
//! accuracy. See `docs/DEGRADATION.md` for the full ladder semantics.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use affect_core::classifier::{AffectClassifier, ClassifierKind, Decision, ModelConfig};
use affect_core::controller::{ControlEvent, SystemController};
use affect_core::emotion::Emotion;
use affect_core::pipeline::{FeatureConfig, FeaturePipeline};
use affect_core::policy::PolicyTable;
use affect_core::AffectError;
use affect_obs::{Counter as ObsCounter, Histogram as ObsHistogram, MetricsRegistry, Span};
use nn::{Precision, Scratch, Tensor};

use crate::actuator::Actuator;
use crate::clock::{Clock, SystemClock};
use crate::fault::{FaultAction, FaultHook, InjectedPanic, Stage};
use crate::mem::{MemConsumer, MemReport, MemoryBudget, PressureBand};
use crate::ring::{OverflowPolicy, PushOutcome, Ring, RingMetrics};
use crate::stats::{
    ClassifyReport, FaultReport, Histogram, RuntimeReport, SessionReport, StageReport,
};

/// Handle to one session registered with the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(usize);

impl SessionId {
    /// Index of the session (order of `add_session` calls).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Capacity and overflow policy of one pipeline queue.
#[derive(Debug, Clone, Copy)]
pub struct StageConfig {
    /// Maximum queued messages.
    pub capacity: usize,
    /// What to do when full.
    pub policy: OverflowPolicy,
}

impl StageConfig {
    /// Convenience constructor.
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        Self { capacity, policy }
    }
}

/// Supervision parameters for the feature and classify worker pools and
/// the per-session classify circuit breaker.
#[derive(Debug, Clone, Copy)]
pub struct SupervisionConfig {
    /// Panics one worker may survive before it is retired. Each caught
    /// panic costs the in-flight window (accounted as dropped) and a
    /// backoff pause; exceeding the budget retires the worker, and the
    /// last worker of a pool to retire closes and drains its input queue
    /// so the accounting invariant still converges.
    pub restart_budget: u32,
    /// Backoff after the first caught panic, milliseconds. Doubles per
    /// consecutive panic.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_max_ms: u64,
    /// Consecutive classify failures of one session that trip its circuit
    /// breaker: the session is pinned to its floor family (the HDC rung by
    /// default, see [`RuntimeConfig::floor_family`]) until a half-open
    /// recovery probe (driven by the ordinary `ok_streak` recovery
    /// machinery) succeeds with a richer family.
    pub breaker_threshold: u32,
}

impl SupervisionConfig {
    /// The restart backoff (milliseconds) after the `consecutive`-th panic
    /// in a row: exponential from [`SupervisionConfig::backoff_base_ms`],
    /// capped at [`SupervisionConfig::backoff_max_ms`].
    pub fn backoff_for(&self, consecutive: u32) -> u64 {
        if consecutive == 0 {
            return 0;
        }
        self.backoff_base_ms
            .saturating_mul(1u64 << consecutive.saturating_sub(1).min(16))
            .min(self.backoff_max_ms)
    }
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        Self {
            restart_budget: 8,
            backoff_base_ms: 1,
            backoff_max_ms: 100,
            breaker_threshold: 3,
        }
    }
}

/// Stalled-queue watchdog parameters. The watchdog is a low-frequency
/// safety net behind the per-window supervision: when a stage queue holds
/// messages but its consumers pop nothing for `stall_polls` consecutive
/// polls, the watchdog force-drains the queue, accounting every drained
/// window as dropped, so a wedged stage degrades to load-shedding instead
/// of deadlocking the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Poll period, milliseconds.
    pub poll_ms: u64,
    /// Consecutive no-progress polls (with a non-empty queue) that declare
    /// a stage stalled.
    pub stall_polls: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            poll_ms: 50,
            stall_polls: 4,
        }
    }
}

/// Configuration of the streaming runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Feature extraction parameters (shared by all sessions).
    pub feature: FeatureConfig,
    /// Samples per analysis window; fixes the CNN input width, so every
    /// submitted window must have exactly this length.
    pub window_samples: usize,
    /// Classifier family each session starts in.
    pub initial_family: ClassifierKind,
    /// Cheapest family the degradation machinery (miss-streak fallback and
    /// the classify circuit breaker) may drop a session to. Defaults to
    /// [`ClassifierKind::Hdc`], the bottom of the ladder; setting e.g.
    /// [`ClassifierKind::Mlp`] restores the pre-HDC floor. A session whose
    /// QoS ceiling sits below this floor is pinned at its ceiling.
    pub floor_family: ClassifierKind,
    /// Optional accuracy floor. When set, the effective degradation floor
    /// is raised to the cheapest rung whose indicative accuracy (see the
    /// `accuracy_energy` bench / `BENCH_accuracy_energy.json`) meets this
    /// value — the controller then always picks the cheapest rung that
    /// still meets the configured accuracy.
    pub min_accuracy: Option<f32>,
    /// Numeric precision of the classify stage's inference path for
    /// sessions without a per-session override
    /// ([`RuntimeBuilder::add_session_with_precision`]).
    /// [`Precision::Int8`] runs the neural families through the quantized
    /// int8 kernels; the HDC rung is integer-only regardless.
    pub precision: Precision,
    /// Worker threads for the feature and classify stages (each).
    pub workers: usize,
    /// Ingest queue (submit → feature).
    pub ingest: StageConfig,
    /// Classify queue (feature → classify).
    pub classify: StageConfig,
    /// Largest number of queued windows one classify worker drains per
    /// wakeup (its batching window). 1 restores strict one-at-a-time
    /// behaviour; larger values amortise queue synchronisation and keep a
    /// worker's scratch arena hot across consecutive windows.
    pub classify_batch: usize,
    /// Control queue (classify → control).
    pub control: StageConfig,
    /// Actuate queue capacity (control → actuate; always lossless/Block —
    /// decisions that got this far are never shed).
    pub actuate_capacity: usize,
    /// End-to-end latency budget per window, nanoseconds (the paper's
    /// decision cadence is ~1 s).
    pub deadline_ns: u64,
    /// Consecutive deadline misses that trigger degradation.
    pub miss_streak: u32,
    /// Consecutive on-time windows that trigger one recovery step.
    pub ok_streak: u32,
    /// Decision interval while degraded: only every k-th window enters the
    /// pipeline (others are decimated and counted as dropped).
    pub degraded_interval: u32,
    /// Policy table driving each session's controller.
    pub policy: PolicyTable,
    /// Controller smoothing window (decisions debounced over this many
    /// observations).
    pub smoothing_window: usize,
    /// Seed for the untrained models' deterministic initialization.
    pub model_seed: u64,
    /// Worker supervision and circuit-breaker parameters.
    pub supervision: SupervisionConfig,
    /// Stalled-queue watchdog; `None` (the default) disables it.
    pub watchdog: Option<WatchdogConfig>,
    /// Memory budget in bytes for the pressure governor; 0 (the default)
    /// disables it. When set, the runtime charges its real consumers (ring
    /// queues, scratch arenas, classifier tables) against a
    /// [`MemoryBudget`] and derives a [`PressureBand`]: under Yellow or
    /// worse, classify batching collapses to 1 and sustained pressure
    /// walks sessions down the degradation ladder exactly like a
    /// deadline-miss streak; a fleet evicts BestEffort (Red) and Standard
    /// (Critical) sessions. See `docs/ROBUSTNESS.md` §memory-pressure.
    pub memory_budget_bytes: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            feature: FeatureConfig::default(),
            window_samples: 16_000, // 1 s at the default 16 kHz
            initial_family: ClassifierKind::Lstm,
            floor_family: ClassifierKind::Hdc,
            min_accuracy: None,
            precision: Precision::F32,
            workers: 2,
            ingest: StageConfig::new(8, OverflowPolicy::Block),
            classify: StageConfig::new(8, OverflowPolicy::Block),
            classify_batch: 4,
            control: StageConfig::new(8, OverflowPolicy::Block),
            actuate_capacity: 8,
            deadline_ns: 1_000_000_000, // the paper's 1 s cadence
            miss_streak: 3,
            ok_streak: 8,
            degraded_interval: 2,
            policy: PolicyTable::paper_defaults(),
            smoothing_window: 1,
            model_seed: 7,
            supervision: SupervisionConfig::default(),
            watchdog: None,
            memory_budget_bytes: 0,
        }
    }
}

impl RuntimeConfig {
    fn validate(&self) -> Result<(), AffectError> {
        if self.workers == 0 {
            return Err(AffectError::InvalidParameter {
                name: "workers",
                reason: "must be at least 1",
            });
        }
        if self.window_samples < self.feature.frame_len {
            return Err(AffectError::InvalidParameter {
                name: "window_samples",
                reason: "must hold at least one analysis frame",
            });
        }
        if self.deadline_ns == 0 {
            return Err(AffectError::InvalidParameter {
                name: "deadline_ns",
                reason: "must be non-zero",
            });
        }
        if self.miss_streak == 0 || self.ok_streak == 0 {
            return Err(AffectError::InvalidParameter {
                name: "miss_streak",
                reason: "streak thresholds must be at least 1",
            });
        }
        if self.degraded_interval == 0 {
            return Err(AffectError::InvalidParameter {
                name: "degraded_interval",
                reason: "must be at least 1",
            });
        }
        if self.smoothing_window == 0 {
            return Err(AffectError::InvalidParameter {
                name: "smoothing_window",
                reason: "must be at least 1",
            });
        }
        if self.classify_batch == 0 {
            return Err(AffectError::InvalidParameter {
                name: "classify_batch",
                reason: "must be at least 1",
            });
        }
        if self.supervision.breaker_threshold == 0 {
            return Err(AffectError::InvalidParameter {
                name: "breaker_threshold",
                reason: "must be at least 1",
            });
        }
        if let Some(acc) = self.min_accuracy {
            if !(0.0..=1.0).contains(&acc) {
                return Err(AffectError::InvalidParameter {
                    name: "min_accuracy",
                    reason: "must lie in [0, 1]",
                });
            }
        }
        if let Some(w) = &self.watchdog {
            if w.poll_ms == 0 || w.stall_polls == 0 {
                return Err(AffectError::InvalidParameter {
                    name: "watchdog",
                    reason: "poll_ms and stall_polls must be at least 1",
                });
            }
        }
        Ok(())
    }

    /// The three scaled neural model configurations this runtime classifies
    /// with, dimensioned from the feature config and window length (the HDC
    /// rung is not a [`ModelConfig`]; it is built directly over the flat
    /// feature vector).
    fn model_configs(&self, pipeline: &FeaturePipeline) -> [ModelConfig; 3] {
        let fpf = pipeline.features_per_frame();
        let frames = pipeline.frames_for(self.window_samples);
        let classes = Emotion::ALL.len();
        [
            ModelConfig::scaled_mlp(pipeline.flat_dim(), classes),
            ModelConfig::scaled_cnn(frames * fpf, classes),
            ModelConfig::scaled_lstm(fpf, classes),
        ]
    }

    /// The degradation floor actually enforced: [`RuntimeConfig::floor_family`],
    /// raised to the cheapest rung whose indicative accuracy meets
    /// [`RuntimeConfig::min_accuracy`] when that is set. An unmeetable
    /// accuracy floor resolves to the richest family — the controller can
    /// then never trade accuracy away below the user's bar.
    pub fn effective_floor(&self) -> ClassifierKind {
        let mut floor = self.floor_family;
        if let Some(min) = self.min_accuracy {
            let by_accuracy = NOMINAL_ACCURACY
                .iter()
                .find(|(_, acc)| *acc >= min)
                .map(|(kind, _)| *kind)
                .unwrap_or(ClassifierKind::Lstm);
            if family_code(by_accuracy) > family_code(floor) {
                floor = by_accuracy;
            }
        }
        floor
    }
}

/// Ladder position of a family, cheapest first: the codes order exactly as
/// the degradation ladder (HDC < MLP < CNN < LSTM), so floor/ceiling checks
/// are plain integer comparisons.
fn family_code(kind: ClassifierKind) -> u8 {
    match kind {
        ClassifierKind::Hdc => 0,
        ClassifierKind::Mlp => 1,
        ClassifierKind::Cnn => 2,
        ClassifierKind::Lstm => 3,
    }
}

fn family_from_code(code: u8) -> ClassifierKind {
    match code {
        0 => ClassifierKind::Hdc,
        1 => ClassifierKind::Mlp,
        2 => ClassifierKind::Cnn,
        _ => ClassifierKind::Lstm,
    }
}

/// Classifier-pool key for a window: family plus precision, with the HDC
/// rung normalized to a single (integer-only) instance so f32 and int8
/// sessions share it.
fn pool_key(family: ClassifierKind, precision: Precision) -> (u8, Precision) {
    match family {
        ClassifierKind::Hdc => (family_code(family), Precision::Int8),
        _ => (family_code(family), precision),
    }
}

/// Indicative per-family accuracies on the synthetic EMOVO-like corpus,
/// cheapest family first, as measured by the `accuracy_energy` bench (the
/// committed numbers live in `BENCH_accuracy_energy.json` — keep the two
/// in sync). [`RuntimeConfig`] uses this table to translate a
/// `min_accuracy` floor into the cheapest ladder rung that still meets it;
/// the scan walks cheapest-first, so a non-monotonic entry (the LSTM
/// trails the CNN on this corpus) simply never wins a floor. The table is
/// intentionally coarse: it orders the rungs, it does not promise absolute
/// accuracy on live signals.
const NOMINAL_ACCURACY: [(ClassifierKind, f32); 4] = [
    (ClassifierKind::Hdc, 0.69),
    (ClassifierKind::Mlp, 0.81),
    (ClassifierKind::Cnn, 0.83),
    (ClassifierKind::Lstm, 0.74),
];

/// Circuit-breaker states, stored in `SessionState::breaker`.
const BREAKER_CLOSED: u8 = 0;
const BREAKER_OPEN: u8 = 1;
const BREAKER_HALF_OPEN: u8 = 2;

/// Shared per-session state: counters plus the degradation knobs the
/// feature workers and submit path read.
struct SessionState {
    next_seq: AtomicU64,
    produced: AtomicU64,
    processed: AtomicU64,
    dropped: AtomicU64,
    misses: AtomicU64,
    degradations: AtomicU64,
    recoveries: AtomicU64,
    family: AtomicU8,
    /// Richest family this session may recover to (its QoS ceiling): the
    /// per-session initial family, frozen at registration.
    ceiling: u8,
    /// Cheapest family degradation or the circuit breaker may drop this
    /// session to, frozen at registration: the runtime's effective floor,
    /// clamped to the session's ceiling.
    floor: u8,
    /// Inference precision for this session's neural windows, frozen at
    /// registration.
    precision: Precision,
    interval: AtomicU32,
    latency: Histogram,
    /// Classify circuit breaker: `BREAKER_CLOSED`, `BREAKER_OPEN` (family
    /// pinned to the session's floor) or `BREAKER_HALF_OPEN` (recovery
    /// probe in flight).
    breaker: AtomicU8,
    /// Consecutive classify failures while the breaker is closed.
    breaker_failures: AtomicU32,
    /// Set by [`Runtime::remove_session`]: an evicted session's submits
    /// become clean no-ops (not produced, not dropped — never offered), so
    /// its final accounting stays exact. Cleared by
    /// [`Runtime::readmit_session`].
    evicted: AtomicBool,
}

impl SessionState {
    fn new(initial_family: ClassifierKind, floor: ClassifierKind, precision: Precision) -> Self {
        Self {
            next_seq: AtomicU64::new(0),
            produced: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            degradations: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            family: AtomicU8::new(family_code(initial_family)),
            ceiling: family_code(initial_family),
            floor: family_code(floor).min(family_code(initial_family)),
            precision,
            interval: AtomicU32::new(1),
            latency: Histogram::new(),
            breaker: AtomicU8::new(BREAKER_CLOSED),
            breaker_failures: AtomicU32::new(0),
            evicted: AtomicBool::new(false),
        }
    }

    fn family(&self) -> ClassifierKind {
        family_from_code(self.family.load(Ordering::SeqCst))
    }

    fn accounted(&self) -> bool {
        let produced = self.produced.load(Ordering::SeqCst);
        let processed = self.processed.load(Ordering::SeqCst);
        let dropped = self.dropped.load(Ordering::SeqCst);
        produced == processed + dropped
    }
}

/// Runtime-wide fault and supervision counters, snapshot into
/// [`FaultReport`].
#[derive(Default)]
struct FaultCounters {
    worker_panics: AtomicU64,
    worker_restarts: AtomicU64,
    workers_lost: AtomicU64,
    rejected_windows: AtomicU64,
    watchdog_sheds: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_closes: AtomicU64,
}

impl FaultCounters {
    fn snapshot(&self) -> FaultReport {
        FaultReport {
            worker_panics: self.worker_panics.load(Ordering::SeqCst),
            worker_restarts: self.worker_restarts.load(Ordering::SeqCst),
            workers_lost: self.workers_lost.load(Ordering::SeqCst),
            rejected_windows: self.rejected_windows.load(Ordering::SeqCst),
            watchdog_sheds: self.watchdog_sheds.load(Ordering::SeqCst),
            breaker_trips: self.breaker_trips.load(Ordering::SeqCst),
            breaker_closes: self.breaker_closes.load(Ordering::SeqCst),
        }
    }
}

/// Classify-stage hot-path counters, shared by all classify workers and
/// snapshot into [`ClassifyReport`].
#[derive(Default)]
struct ClassifyCounters {
    windows: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    scratch_allocs: AtomicU64,
    scratch_reuses: AtomicU64,
    /// Completed classify windows per family, indexed by [`family_code`].
    family_windows: [AtomicU64; 4],
}

impl ClassifyCounters {
    fn snapshot(&self) -> ClassifyReport {
        ClassifyReport {
            windows: self.windows.load(Ordering::SeqCst),
            batches: self.batches.load(Ordering::SeqCst),
            max_batch: self.max_batch.load(Ordering::SeqCst),
            scratch_allocs: self.scratch_allocs.load(Ordering::SeqCst),
            scratch_reuses: self.scratch_reuses.load(Ordering::SeqCst),
            family_windows: std::array::from_fn(|i| self.family_windows[i].load(Ordering::SeqCst)),
        }
    }
}

/// Registered observability handles for the whole runtime (shared across
/// sessions — series aggregate rather than explode per session). Present
/// only when [`RuntimeBuilder::metrics`] supplied a registry; every update
/// is a relaxed atomic op, so the warm path stays allocation-free.
struct RtMetrics {
    /// Clock the stage spans time against (same source as latency
    /// accounting, so virtual-clock tests see deterministic spans).
    clock: Arc<dyn Clock>,
    feature_latency: Arc<ObsHistogram>,
    classify_latency: Arc<ObsHistogram>,
    control_latency: Arc<ObsHistogram>,
    actuate_latency: Arc<ObsHistogram>,
    e2e_latency: Arc<ObsHistogram>,
    submitted: Arc<ObsCounter>,
    processed: Arc<ObsCounter>,
    dropped: Arc<ObsCounter>,
    misses: Arc<ObsCounter>,
    degradations: Arc<ObsCounter>,
    recoveries: Arc<ObsCounter>,
    batch_size: Arc<ObsHistogram>,
    /// Per-family classify completions, indexed by [`family_code`] (one
    /// labelled series per rung of the degradation ladder).
    classify_family: [Arc<ObsCounter>; 4],
    /// Classify windows that ran the quantized int8 path (neural families
    /// at [`Precision::Int8`] plus every integer-only HDC window).
    int8_windows: Arc<ObsCounter>,
    scratch_allocs: Arc<ObsCounter>,
    scratch_reuses: Arc<ObsCounter>,
    worker_panics: Arc<ObsCounter>,
    worker_restarts: Arc<ObsCounter>,
    workers_lost: Arc<ObsCounter>,
    rejected_windows: Arc<ObsCounter>,
    watchdog_sheds: Arc<ObsCounter>,
    breaker_trips: Arc<ObsCounter>,
    breaker_closes: Arc<ObsCounter>,
    breakers_open: Arc<affect_obs::Gauge>,
}

impl RtMetrics {
    fn register(registry: &MetricsRegistry, clock: Arc<dyn Clock>) -> Self {
        let stage_latency = |stage: &str| {
            registry.histogram(
                "affect_rt_stage_latency_ns",
                "per-window time spent inside one pipeline stage",
                &[("stage", stage)],
            )
        };
        Self {
            clock,
            feature_latency: stage_latency("feature"),
            classify_latency: stage_latency("classify"),
            control_latency: stage_latency("control"),
            actuate_latency: stage_latency("actuate"),
            e2e_latency: registry.histogram(
                "affect_rt_e2e_latency_ns",
                "submit-to-actuate latency per processed window",
                &[],
            ),
            submitted: registry.counter(
                "affect_rt_windows_submitted_total",
                "windows offered to the runtime across all sessions",
                &[],
            ),
            processed: registry.counter(
                "affect_rt_windows_processed_total",
                "windows that survived the full pipeline",
                &[],
            ),
            dropped: registry.counter(
                "affect_rt_windows_dropped_total",
                "windows shed by overflow policy, decimation or errors",
                &[],
            ),
            misses: registry.counter(
                "affect_rt_deadline_misses_total",
                "processed windows that exceeded the deadline budget",
                &[],
            ),
            degradations: registry.counter(
                "affect_rt_degradations_total",
                "degradation steps taken (family fallback / interval widen)",
                &[],
            ),
            recoveries: registry.counter(
                "affect_rt_recoveries_total",
                "recovery steps taken after sustained on-time windows",
                &[],
            ),
            batch_size: registry.histogram(
                "affect_rt_classify_batch_size",
                "windows drained per classify-worker wakeup",
                &[],
            ),
            classify_family: {
                let family = |kind: ClassifierKind| {
                    registry.counter(
                        "affect_rt_classify_family_total",
                        "classify windows completed, per classifier family",
                        &[("family", kind.name())],
                    )
                };
                [
                    family(ClassifierKind::Hdc),
                    family(ClassifierKind::Mlp),
                    family(ClassifierKind::Cnn),
                    family(ClassifierKind::Lstm),
                ]
            },
            int8_windows: registry.counter(
                "affect_rt_classify_int8_windows_total",
                "classify windows that ran the quantized int8 inference path",
                &[],
            ),
            scratch_allocs: registry.counter(
                "affect_rt_scratch_allocs_total",
                "scratch-arena buffer allocations during inference",
                &[],
            ),
            scratch_reuses: registry.counter(
                "affect_rt_scratch_reuses_total",
                "scratch-arena buffer reuses during inference",
                &[],
            ),
            worker_panics: registry.counter(
                "affect_rt_worker_panics_total",
                "worker panics caught by per-window supervision",
                &[],
            ),
            worker_restarts: registry.counter(
                "affect_rt_worker_restarts_total",
                "panics a worker survived and resumed after (with backoff)",
                &[],
            ),
            workers_lost: registry.counter(
                "affect_rt_workers_lost_total",
                "workers retired after exhausting their restart budget",
                &[],
            ),
            rejected_windows: registry.counter(
                "affect_rt_rejected_windows_total",
                "windows refused for non-finite samples at the feature stage",
                &[],
            ),
            watchdog_sheds: registry.counter(
                "affect_rt_watchdog_sheds_total",
                "windows force-drained from stalled queues by the watchdog",
                &[],
            ),
            breaker_trips: registry.counter(
                "affect_rt_breaker_trips_total",
                "classify circuit-breaker trips (session forced to MLP)",
                &[],
            ),
            breaker_closes: registry.counter(
                "affect_rt_breaker_closes_total",
                "circuit breakers closed again after a successful probe",
                &[],
            ),
            breakers_open: registry.gauge(
                "affect_rt_breakers_open",
                "sessions whose classify circuit breaker is currently open",
                &[],
            ),
        }
    }
}

/// Builds one stage queue, wiring in the `affect_rt_queue_*` series when a
/// registry is attached.
fn make_ring<T>(
    registry: Option<&MetricsRegistry>,
    capacity: usize,
    policy: OverflowPolicy,
    stage: &str,
) -> Ring<T> {
    match registry {
        Some(r) => Ring::with_metrics(capacity, policy, ring_metrics(r, stage)),
        None => Ring::new(capacity, policy),
    }
}

/// Registers the `affect_rt_queue_*` series for one stage's ring.
fn ring_metrics(registry: &MetricsRegistry, stage: &str) -> RingMetrics {
    RingMetrics {
        pushed: registry.counter(
            "affect_rt_queue_pushed_total",
            "messages accepted into a stage queue",
            &[("stage", stage)],
        ),
        popped: registry.counter(
            "affect_rt_queue_popped_total",
            "messages handed to a stage's consumers",
            &[("stage", stage)],
        ),
        shed: registry.counter(
            "affect_rt_queue_shed_total",
            "messages shed by the stage queue's overflow policy",
            &[("stage", stage)],
        ),
        depth: registry.gauge(
            "affect_rt_queue_depth",
            "current queue depth of a stage",
            &[("stage", stage)],
        ),
    }
}

/// Type-erased view of one stage queue, so a single watchdog thread can
/// monitor queues of four different message types.
trait WatchedQueue: Send + Sync {
    fn popped(&self) -> u64;
    fn depth(&self) -> usize;
    /// Drains everything currently queued, returning the owning session of
    /// each drained message.
    fn drain_sessions(&self) -> Vec<usize>;
}

struct WatchedRing<T> {
    ring: Arc<Ring<T>>,
    session_of: fn(&T) -> usize,
}

impl<T: Send> WatchedQueue for WatchedRing<T> {
    fn popped(&self) -> u64 {
        self.ring.snapshot().popped
    }

    fn depth(&self) -> usize {
        self.ring.depth()
    }

    fn drain_sessions(&self) -> Vec<usize> {
        let mut sessions = Vec::new();
        while let Some(msg) = self.ring.try_pop() {
            sessions.push((self.session_of)(&msg));
        }
        sessions
    }
}

/// Wakes `wait_idle` whenever any accounting counter moves.
struct Progress {
    generation: Mutex<u64>,
    changed: Condvar,
}

impl Progress {
    fn new() -> Self {
        Self {
            generation: Mutex::new(0),
            changed: Condvar::new(),
        }
    }

    fn bump(&self) {
        *self.generation.lock().expect("progress lock poisoned") += 1;
        self.changed.notify_all();
    }
}

struct IngestMsg {
    session: usize,
    seq: u64,
    arrival_ns: u64,
    samples: Vec<f32>,
}

struct ClassifyMsg {
    session: usize,
    seq: u64,
    arrival_ns: u64,
    family: ClassifierKind,
    /// The session's inference precision, stamped alongside the family so
    /// the classify worker picks the matching pool entry.
    precision: Precision,
    features: Tensor,
}

struct ControlMsg {
    session: usize,
    seq: u64,
    arrival_ns: u64,
    emotion: Option<Emotion>,
}

struct ActuateMsg {
    session: usize,
    seq: u64,
    arrival_ns: u64,
    events: Vec<ControlEvent>,
}

/// Everything a run leaves behind after [`Runtime::shutdown`].
pub struct ShutdownOutcome {
    /// The final statistics snapshot.
    pub report: RuntimeReport,
    /// Each session's actuator, in session order, for inspection.
    pub actuators: Vec<Box<dyn Actuator>>,
}

/// Registers sessions and starts the [`Runtime`].
pub struct RuntimeBuilder {
    config: RuntimeConfig,
    clock: Arc<dyn Clock>,
    actuators: Vec<Box<dyn Actuator>>,
    /// Per-session initial-family overrides (None = the config default).
    /// A fleet's QoS tiers use this to pin each tier to its rung of the
    /// degradation ladder.
    families: Vec<Option<ClassifierKind>>,
    /// Per-session precision overrides (None = the config default).
    precisions: Vec<Option<Precision>>,
    registry: Option<Arc<MetricsRegistry>>,
    fault_hook: Option<Arc<dyn FaultHook>>,
    memory_budget: Option<Arc<MemoryBudget>>,
}

impl RuntimeBuilder {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AffectError::InvalidParameter`] for zero worker counts,
    /// windows shorter than an analysis frame, or zero budgets/streaks.
    pub fn new(config: RuntimeConfig) -> Result<Self, AffectError> {
        config.validate()?;
        Ok(Self {
            config,
            clock: Arc::new(SystemClock::new()),
            actuators: Vec::new(),
            families: Vec::new(),
            precisions: Vec::new(),
            registry: None,
            fault_hook: None,
            memory_budget: None,
        })
    }

    /// Supplies a pre-built (usually shared) [`MemoryBudget`] instead of
    /// the one the runtime would build from
    /// [`RuntimeConfig::memory_budget_bytes`]. A fleet passes one budget to
    /// every shard runtime it owns; a chaos harness keeps a handle so its
    /// fault plan can inject phantom charges.
    pub fn memory_budget(mut self, budget: Arc<MemoryBudget>) -> Self {
        self.memory_budget = Some(budget);
        self
    }

    /// Attaches a fault-injection hook, consulted once per window per
    /// stage. Without one the runtime takes the fault-free fast path (a
    /// `None` check per window). The `affect-fault` crate provides a
    /// deterministic, seeded implementation.
    pub fn fault_hook(mut self, hook: Arc<dyn FaultHook>) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// Substitutes the time source (tests use a
    /// [`crate::clock::VirtualClock`]).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Attaches a metrics registry. The runtime registers its
    /// `affect_rt_*` series there at [`RuntimeBuilder::start`] and keeps
    /// them updated from the worker threads; without a registry the
    /// runtime runs exactly as before (the built-in [`RuntimeReport`]
    /// accounting is always on). See `docs/OBSERVABILITY.md` for the
    /// catalogue.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Registers a session with its actuation endpoint; returns the handle
    /// used to submit windows. The session starts at (and recovers up to)
    /// the configured [`RuntimeConfig::initial_family`].
    pub fn add_session(&mut self, actuator: Box<dyn Actuator>) -> SessionId {
        self.actuators.push(actuator);
        self.families.push(None);
        self.precisions.push(None);
        SessionId(self.actuators.len() - 1)
    }

    /// Registers a session whose classifier family starts at — and never
    /// recovers past — `family`, overriding the runtime-wide default. This
    /// is the per-session QoS knob: a best-effort session pinned at MLP
    /// stays near the bottom of the degradation ladder for its whole life,
    /// while a critical one keeps the full LSTM → CNN → MLP → HDC range.
    pub fn add_session_with_family(
        &mut self,
        actuator: Box<dyn Actuator>,
        family: ClassifierKind,
    ) -> SessionId {
        self.actuators.push(actuator);
        self.families.push(Some(family));
        self.precisions.push(None);
        SessionId(self.actuators.len() - 1)
    }

    /// Registers a session with both a family ceiling and its own inference
    /// precision, overriding [`RuntimeConfig::precision`]. An
    /// [`Precision::Int8`] session runs its neural windows through the
    /// quantized int8 kernels while f32 sessions sharing the same workers
    /// stay bit-exact — the per-session memory/accuracy knob of the paper's
    /// quantization study, applied live.
    pub fn add_session_with_precision(
        &mut self,
        actuator: Box<dyn Actuator>,
        family: ClassifierKind,
        precision: Precision,
    ) -> SessionId {
        self.actuators.push(actuator);
        self.families.push(Some(family));
        self.precisions.push(Some(precision));
        SessionId(self.actuators.len() - 1)
    }

    /// Spawns the worker threads and returns the live runtime.
    ///
    /// # Errors
    ///
    /// Returns [`AffectError::InvalidParameter`] when no session was
    /// added, and propagates feature-pipeline or model build errors (the
    /// models are trial-built here so failures surface on the caller's
    /// thread, not inside a worker).
    pub fn start(self) -> Result<Runtime, AffectError> {
        if self.actuators.is_empty() {
            return Err(AffectError::InvalidParameter {
                name: "sessions",
                reason: "add_session must be called at least once",
            });
        }
        let config = self.config;
        let pipeline = FeaturePipeline::new(config.feature.clone())?;
        let labels: Vec<String> = Emotion::ALL.iter().map(|e| e.name().to_string()).collect();
        for model in config.model_configs(&pipeline) {
            AffectClassifier::from_config(&model, labels.clone(), config.model_seed)?;
        }
        AffectClassifier::hdc(pipeline.flat_dim(), labels.clone(), config.model_seed)?;

        let floor = config.effective_floor();
        let sessions: Arc<Vec<SessionState>> = Arc::new(
            self.families
                .iter()
                .zip(&self.precisions)
                .map(|(family, precision)| {
                    SessionState::new(
                        family.unwrap_or(config.initial_family),
                        floor,
                        precision.unwrap_or(config.precision),
                    )
                })
                .collect(),
        );
        // Int8 pool entries are only built when some session can use them.
        let need_int8 = sessions.iter().any(|s| s.precision == Precision::Int8);
        let progress = Arc::new(Progress::new());
        let fault_counters = Arc::new(FaultCounters::default());
        let fault_hook = self.fault_hook.clone();
        let metrics: Option<Arc<RtMetrics>> = self
            .registry
            .as_ref()
            .map(|r| Arc::new(RtMetrics::register(r, Arc::clone(&self.clock))));
        if let Some(r) = &self.registry {
            r.gauge("affect_rt_sessions", "registered sessions", &[])
                .set(self.actuators.len() as i64);
        }
        let mem: Arc<MemoryBudget> = match self.memory_budget {
            Some(budget) => budget,
            None => {
                let budget = MemoryBudget::new(config.memory_budget_bytes);
                Arc::new(match &self.registry {
                    Some(r) => budget.with_metrics(r),
                    None => budget,
                })
            }
        };
        let registry = self.registry.as_deref();
        let ingest: Arc<Ring<IngestMsg>> = Arc::new(make_ring(
            registry,
            config.ingest.capacity,
            config.ingest.policy,
            "ingest",
        ));
        let classify: Arc<Ring<ClassifyMsg>> = Arc::new(make_ring(
            registry,
            config.classify.capacity,
            config.classify.policy,
            "classify",
        ));
        let control: Arc<Ring<ControlMsg>> = Arc::new(make_ring(
            registry,
            config.control.capacity,
            config.control.policy,
            "control",
        ));
        let actuate: Arc<Ring<ActuateMsg>> = Arc::new(make_ring(
            registry,
            config.actuate_capacity,
            OverflowPolicy::Block,
            "actuate",
        ));
        // Ring bytes are fixed at construction: capacity × slot size, the
        // ingest slots widened by the window payload (each queued IngestMsg
        // owns a `window_samples` f32 buffer) and the classify slots by the
        // flat feature vector. Released at shutdown.
        let ring_bytes = (config.ingest.capacity
            * (std::mem::size_of::<IngestMsg>()
                + config.window_samples * std::mem::size_of::<f32>())
            + config.classify.capacity
                * (std::mem::size_of::<ClassifyMsg>()
                    + pipeline.flat_dim() * std::mem::size_of::<f32>())
            + config.control.capacity * std::mem::size_of::<ControlMsg>()
            + config.actuate_capacity * std::mem::size_of::<ActuateMsg>())
            as u64;
        mem.charge(MemConsumer::RingQueues, ring_bytes);

        let mut feature_workers = Vec::with_capacity(config.workers);
        let feature_live = Arc::new(AtomicUsize::new(config.workers));
        for _ in 0..config.workers {
            let ingest = Arc::clone(&ingest);
            let classify = Arc::clone(&classify);
            let sessions = Arc::clone(&sessions);
            let progress = Arc::clone(&progress);
            let metrics = metrics.clone();
            let feature = config.feature.clone();
            let hook = fault_hook.clone();
            let faults = Arc::clone(&fault_counters);
            let live = Arc::clone(&feature_live);
            let supervision = config.supervision;
            feature_workers.push(std::thread::spawn(move || {
                let mut pipeline =
                    FeaturePipeline::new(feature).expect("config validated before spawn");
                let mut consecutive_panics = 0u32;
                let mut panics_survived = 0u32;
                while let Some(msg) = ingest.pop() {
                    let session = msg.session;
                    let action = match &hook {
                        Some(h) => h.inject(Stage::Feature, session, msg.seq),
                        None => FaultAction::None,
                    };
                    if action == FaultAction::DropWindow {
                        drop_window(&sessions, session, &progress, metrics.as_deref());
                        continue;
                    }
                    if let FaultAction::DelayNs(ns) = action {
                        std::thread::sleep(Duration::from_nanos(ns));
                    }
                    // The NaN gate: a sensor fault costs exactly this
                    // window, never the session — rejected before the
                    // feature pipeline can smear non-finite values into
                    // state shared across windows.
                    if msg.samples.iter().any(|s| !s.is_finite()) {
                        faults.rejected_windows.fetch_add(1, Ordering::SeqCst);
                        if let Some(m) = &metrics {
                            m.rejected_windows.inc();
                        }
                        drop_window(&sessions, session, &progress, metrics.as_deref());
                        continue;
                    }
                    // Per-window unwind boundary: a panic (injected or
                    // organic) loses only this window.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if action == FaultAction::Panic {
                            std::panic::panic_any(InjectedPanic);
                        }
                        let span = metrics
                            .as_ref()
                            .map(|m| Span::enter(&m.feature_latency, &*m.clock));
                        let family = sessions[session].family();
                        let features = match family {
                            ClassifierKind::Mlp | ClassifierKind::Hdc => {
                                pipeline.extract_flat(&msg.samples)
                            }
                            ClassifierKind::Cnn => pipeline.extract_strip(&msg.samples),
                            ClassifierKind::Lstm => pipeline.extract_sequence(&msg.samples),
                        };
                        drop(span);
                        features.map(|features| ClassifyMsg {
                            session: msg.session,
                            seq: msg.seq,
                            arrival_ns: msg.arrival_ns,
                            family,
                            precision: sessions[session].precision,
                            features,
                        })
                    }));
                    match outcome {
                        Ok(Ok(out)) => {
                            consecutive_panics = 0;
                            offer(
                                &classify,
                                out,
                                |m| m.session,
                                &sessions,
                                &progress,
                                metrics.as_deref(),
                            );
                        }
                        Ok(Err(_)) => {
                            consecutive_panics = 0;
                            drop_window(&sessions, session, &progress, metrics.as_deref());
                        }
                        Err(_panic) => {
                            drop_window(&sessions, session, &progress, metrics.as_deref());
                            consecutive_panics += 1;
                            panics_survived += 1;
                            if !survive_panic(
                                &faults,
                                metrics.as_deref(),
                                &supervision,
                                consecutive_panics,
                                panics_survived,
                            ) {
                                break;
                            }
                        }
                    }
                }
                // Last worker out (retired or shutdown) closes and drains
                // the queue so blocked producers wake and nothing queued
                // is silently lost.
                if live.fetch_sub(1, Ordering::SeqCst) == 1 {
                    ingest.close();
                    while let Some(m) = ingest.try_pop() {
                        drop_window(&sessions, m.session, &progress, metrics.as_deref());
                    }
                }
            }));
        }

        let classify_counters = Arc::new(ClassifyCounters::default());
        let mut classify_workers = Vec::with_capacity(config.workers);
        let classify_live = Arc::new(AtomicUsize::new(config.workers));
        for _ in 0..config.workers {
            let classify = Arc::clone(&classify);
            let control = Arc::clone(&control);
            let sessions = Arc::clone(&sessions);
            let progress = Arc::clone(&progress);
            let counters = Arc::clone(&classify_counters);
            let metrics = metrics.clone();
            let feature = config.feature.clone();
            let window_samples = config.window_samples;
            let batch_limit = config.classify_batch;
            let seed = config.model_seed;
            let labels = labels.clone();
            let hook = fault_hook.clone();
            let faults = Arc::clone(&fault_counters);
            let live = Arc::clone(&classify_live);
            let supervision = config.supervision;
            let mem = Arc::clone(&mem);
            classify_workers.push(std::thread::spawn(move || {
                // Models are not Send; build this worker's own pool of all
                // four families (identical across workers by seed), keyed
                // by (family, precision). Int8 variants are built only when
                // some session runs quantized; the single HDC instance is
                // integer-only and serves every precision.
                let pipeline =
                    FeaturePipeline::new(feature).expect("config validated before spawn");
                let fpf = pipeline.features_per_frame();
                let frames = pipeline.frames_for(window_samples);
                let classes = Emotion::ALL.len();
                let mut pool: HashMap<(u8, Precision), AffectClassifier> = HashMap::new();
                for model in [
                    ModelConfig::scaled_mlp(pipeline.flat_dim(), classes),
                    ModelConfig::scaled_cnn(frames * fpf, classes),
                    ModelConfig::scaled_lstm(fpf, classes),
                ] {
                    let clf = AffectClassifier::from_config(&model, labels.clone(), seed)
                        .expect("trial-built before spawn");
                    pool.insert((family_code(clf.family()), Precision::F32), clf);
                    if need_int8 {
                        let mut clf = AffectClassifier::from_config(&model, labels.clone(), seed)
                            .expect("trial-built before spawn");
                        clf.set_precision(Precision::Int8)
                            .expect("fresh models always quantize");
                        pool.insert((family_code(clf.family()), Precision::Int8), clf);
                    }
                }
                let mut hdc = AffectClassifier::hdc(pipeline.flat_dim(), labels.clone(), seed)
                    .expect("trial-built before spawn");
                // This worker's classifier tables are resident for its whole
                // life: the neural families' parameters (4 bytes each at
                // f32, 1 at int8) plus the HDC bound/prototype tables.
                let mut table_bytes = 0u64;
                for model in [
                    ModelConfig::scaled_mlp(pipeline.flat_dim(), classes),
                    ModelConfig::scaled_cnn(frames * fpf, classes),
                    ModelConfig::scaled_lstm(fpf, classes),
                ] {
                    table_bytes += (model.param_count() * std::mem::size_of::<f32>()) as u64;
                    if need_int8 {
                        table_bytes += model.param_count() as u64;
                    }
                }
                if let Some(h) = hdc.hdc_mut() {
                    table_bytes += h.storage_bytes() as u64;
                }
                mem.charge(MemConsumer::ModelTables, table_bytes);
                pool.insert(pool_key(ClassifierKind::Hdc, Precision::Int8), hdc);
                // The worker's persistent inference arena: every forward
                // pass across every family draws its intermediates from
                // here, so steady state runs allocation-free.
                let mut scratch = Scratch::new();
                let mut decision = Decision::default();
                let mut batch: std::collections::VecDeque<ClassifyMsg> =
                    std::collections::VecDeque::with_capacity(batch_limit);
                let mut consecutive_panics = 0u32;
                let mut panics_survived = 0u32;
                let mut last_allocs = 0u64;
                let mut last_reuses = 0u64;
                let mut last_scratch_bytes = 0u64;
                'pool: while let Some(msg) = classify.pop() {
                    // Under memory pressure the batching window collapses
                    // to 1: the worker stops hoarding queued windows, so
                    // peak in-flight feature tensors shrink while the
                    // ladder machinery catches up. One atomic load per
                    // wakeup.
                    let batch_limit = if mem.band() >= PressureBand::Yellow {
                        1
                    } else {
                        batch_limit
                    };
                    // Batching window: after the blocking pop, drain
                    // whatever else is already queued (up to the limit) so
                    // one wakeup amortises over several windows. The batch
                    // buffer lives *outside* the unwind boundary below, so
                    // a panic mid-batch never loses the rest of the drain.
                    batch.push_back(msg);
                    while batch.len() < batch_limit {
                        match classify.try_pop() {
                            Some(next) => batch.push_back(next),
                            None => break,
                        }
                    }
                    counters.batches.fetch_add(1, Ordering::SeqCst);
                    counters
                        .max_batch
                        .fetch_max(batch.len() as u64, Ordering::SeqCst);
                    if let Some(m) = &metrics {
                        m.batch_size.record(batch.len() as u64);
                    }
                    while let Some(msg) = batch.pop_front() {
                        let session = msg.session;
                        let family = msg.family;
                        let precision = pool_key(msg.family, msg.precision).1;
                        let action = match &hook {
                            Some(h) => h.inject(Stage::Classify, session, msg.seq),
                            None => FaultAction::None,
                        };
                        if action == FaultAction::DropWindow {
                            drop_window(&sessions, session, &progress, metrics.as_deref());
                            continue;
                        }
                        if let FaultAction::DelayNs(ns) = action {
                            std::thread::sleep(Duration::from_nanos(ns));
                        }
                        // Per-window unwind boundary. The scratch arena and
                        // decision buffer are plain reusable buffers — safe
                        // to keep using after an unwind.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            if action == FaultAction::Panic {
                                std::panic::panic_any(InjectedPanic);
                            }
                            let span = metrics
                                .as_ref()
                                .map(|m| Span::enter(&m.classify_latency, &*m.clock));
                            let clf = pool
                                .get_mut(&pool_key(msg.family, msg.precision))
                                .expect("all families pooled");
                            let result = clf.classify_with(
                                msg.features.data(),
                                msg.features.shape(),
                                &mut scratch,
                                &mut decision,
                            );
                            drop(span);
                            result.map(|()| ControlMsg {
                                session: msg.session,
                                seq: msg.seq,
                                arrival_ns: msg.arrival_ns,
                                emotion: decision.emotion(),
                            })
                        }));
                        match outcome {
                            Ok(Ok(out)) => {
                                consecutive_panics = 0;
                                counters.windows.fetch_add(1, Ordering::SeqCst);
                                counters.family_windows[family_code(family) as usize]
                                    .fetch_add(1, Ordering::SeqCst);
                                if let Some(m) = &metrics {
                                    m.classify_family[family_code(family) as usize].inc();
                                    if precision == Precision::Int8 {
                                        m.int8_windows.inc();
                                    }
                                }
                                breaker_on_success(
                                    &sessions[session],
                                    family,
                                    &faults,
                                    metrics.as_deref(),
                                );
                                offer(
                                    &control,
                                    out,
                                    |m| m.session,
                                    &sessions,
                                    &progress,
                                    metrics.as_deref(),
                                );
                            }
                            Ok(Err(_)) => {
                                consecutive_panics = 0;
                                counters.windows.fetch_add(1, Ordering::SeqCst);
                                breaker_on_failure(
                                    &sessions[session],
                                    supervision.breaker_threshold,
                                    &faults,
                                    metrics.as_deref(),
                                );
                                drop_window(&sessions, session, &progress, metrics.as_deref());
                            }
                            Err(_panic) => {
                                drop_window(&sessions, session, &progress, metrics.as_deref());
                                consecutive_panics += 1;
                                panics_survived += 1;
                                if !survive_panic(
                                    &faults,
                                    metrics.as_deref(),
                                    &supervision,
                                    consecutive_panics,
                                    panics_survived,
                                ) {
                                    // Retiring mid-batch: account the rest
                                    // of the drained batch before leaving.
                                    for rest in batch.drain(..) {
                                        drop_window(
                                            &sessions,
                                            rest.session,
                                            &progress,
                                            metrics.as_deref(),
                                        );
                                    }
                                    break 'pool;
                                }
                            }
                        }
                    }
                    let allocs = scratch.alloc_events();
                    let reuses = scratch.reuse_events();
                    counters
                        .scratch_allocs
                        .fetch_add(allocs - last_allocs, Ordering::SeqCst);
                    counters
                        .scratch_reuses
                        .fetch_add(reuses - last_reuses, Ordering::SeqCst);
                    if let Some(m) = &metrics {
                        m.scratch_allocs.add(allocs - last_allocs);
                        m.scratch_reuses.add(reuses - last_reuses);
                    }
                    // Re-measure the arena only when it actually grew (an
                    // acquire allocated a fresh buffer), i.e. during
                    // warm-up — a steady-state batch pays nothing here.
                    if allocs != last_allocs {
                        let bytes = scratch.pooled_bytes() as u64;
                        if bytes > last_scratch_bytes {
                            mem.charge(MemConsumer::ScratchPools, bytes - last_scratch_bytes);
                        }
                        last_scratch_bytes = bytes;
                    }
                    last_allocs = allocs;
                    last_reuses = reuses;
                }
                mem.release(MemConsumer::ScratchPools, last_scratch_bytes);
                mem.release(MemConsumer::ModelTables, table_bytes);
                if live.fetch_sub(1, Ordering::SeqCst) == 1 {
                    classify.close();
                    while let Some(m) = classify.try_pop() {
                        drop_window(&sessions, m.session, &progress, metrics.as_deref());
                    }
                }
            }));
        }

        let control_worker = {
            let control = Arc::clone(&control);
            let actuate = Arc::clone(&actuate);
            let sessions = Arc::clone(&sessions);
            let progress = Arc::clone(&progress);
            let policy = config.policy.clone();
            let smoothing = config.smoothing_window;
            let metrics = metrics.clone();
            let n_sessions = self.actuators.len();
            let hook = fault_hook.clone();
            std::thread::spawn(move || {
                let mut controllers: Vec<SystemController> = (0..n_sessions)
                    .map(|_| SystemController::new(policy.clone(), smoothing))
                    .collect();
                while let Some(msg) = control.pop() {
                    // Single-threaded stage: `Panic` degrades to a drop —
                    // losing the only control worker would wedge the
                    // pipeline rather than exercise recovery.
                    if let Some(h) = &hook {
                        match h.inject(Stage::Control, msg.session, msg.seq) {
                            FaultAction::None => {}
                            FaultAction::DelayNs(ns) => {
                                std::thread::sleep(Duration::from_nanos(ns));
                            }
                            FaultAction::DropWindow | FaultAction::Panic => {
                                drop_window(&sessions, msg.session, &progress, metrics.as_deref());
                                continue;
                            }
                        }
                    }
                    let span = metrics
                        .as_ref()
                        .map(|m| Span::enter(&m.control_latency, &*m.clock));
                    let events = match msg.emotion {
                        Some(emotion) => controllers[msg.session]
                            .observe_emotion(emotion)
                            .unwrap_or_default(),
                        None => Vec::new(),
                    };
                    drop(span);
                    let out = ActuateMsg {
                        session: msg.session,
                        seq: msg.seq,
                        arrival_ns: msg.arrival_ns,
                        events,
                    };
                    offer(
                        &actuate,
                        out,
                        |m| m.session,
                        &sessions,
                        &progress,
                        metrics.as_deref(),
                    );
                }
            })
        };

        let pressure_degradations = Arc::new(AtomicU64::new(0));
        let actuate_worker = {
            let actuate = Arc::clone(&actuate);
            let sessions = Arc::clone(&sessions);
            let progress = Arc::clone(&progress);
            let clock = Arc::clone(&self.clock);
            let metrics = metrics.clone();
            let mut actuators = self.actuators;
            let deadline = config.deadline_ns;
            let miss_streak_limit = config.miss_streak;
            let ok_streak_limit = config.ok_streak;
            let degraded_interval = config.degraded_interval;
            let hook = fault_hook.clone();
            let mem = Arc::clone(&mem);
            let pressure_degradations = Arc::clone(&pressure_degradations);
            std::thread::spawn(move || {
                let mut miss_streaks = vec![0u32; actuators.len()];
                let mut ok_streaks = vec![0u32; actuators.len()];
                while let Some(msg) = actuate.pop() {
                    if let Some(h) = &hook {
                        match h.inject(Stage::Actuate, msg.session, msg.seq) {
                            FaultAction::None => {}
                            FaultAction::DelayNs(ns) => {
                                std::thread::sleep(Duration::from_nanos(ns));
                            }
                            FaultAction::DropWindow | FaultAction::Panic => {
                                drop_window(&sessions, msg.session, &progress, metrics.as_deref());
                                continue;
                            }
                        }
                    }
                    let span = metrics
                        .as_ref()
                        .map(|m| Span::enter(&m.actuate_latency, &*m.clock));
                    let actuator = &mut actuators[msg.session];
                    // The hook runs before latency is read so a gated test
                    // actuator can hold the window while a virtual clock
                    // advances — the measured latency is then exact.
                    actuator.on_window(msg.seq);
                    let now = clock.now_nanos();
                    for event in msg.events {
                        actuator.actuate(event, now);
                    }
                    let state = &sessions[msg.session];
                    let latency = now.saturating_sub(msg.arrival_ns);
                    state.latency.record(latency);
                    if let Some(m) = &metrics {
                        m.e2e_latency.record(latency);
                    }
                    let missed = latency > deadline;
                    if missed {
                        state.misses.fetch_add(1, Ordering::SeqCst);
                        if let Some(m) = &metrics {
                            m.misses.inc();
                        }
                    }
                    // Memory pressure is a second degradation trigger
                    // beside the deadline: a Yellow-or-worse band feeds the
                    // same miss/ok-streak machinery, so sustained pressure
                    // walks the session down the ladder and a Green band
                    // lets it climb back. One atomic load per window.
                    let pressured = mem.band() >= PressureBand::Yellow;
                    if missed || pressured {
                        ok_streaks[msg.session] = 0;
                        miss_streaks[msg.session] += 1;
                        if miss_streaks[msg.session] >= miss_streak_limit {
                            miss_streaks[msg.session] = 0;
                            if degrade(state, degraded_interval) {
                                if !missed {
                                    pressure_degradations.fetch_add(1, Ordering::SeqCst);
                                }
                                if let Some(m) = &metrics {
                                    m.degradations.inc();
                                }
                            }
                        }
                    } else {
                        miss_streaks[msg.session] = 0;
                        ok_streaks[msg.session] += 1;
                        if ok_streaks[msg.session] >= ok_streak_limit {
                            ok_streaks[msg.session] = 0;
                            if recover(state) {
                                if let Some(m) = &metrics {
                                    m.recoveries.inc();
                                }
                            }
                        }
                    }
                    state.processed.fetch_add(1, Ordering::SeqCst);
                    if let Some(m) = &metrics {
                        m.processed.inc();
                    }
                    drop(span);
                    progress.bump();
                }
                actuators
            })
        };

        let watchdog_stop = Arc::new(AtomicBool::new(false));
        let watchdog_worker = config.watchdog.map(|wcfg| {
            let views: Vec<Box<dyn WatchedQueue>> = vec![
                Box::new(WatchedRing {
                    ring: Arc::clone(&ingest),
                    session_of: |m: &IngestMsg| m.session,
                }),
                Box::new(WatchedRing {
                    ring: Arc::clone(&classify),
                    session_of: |m: &ClassifyMsg| m.session,
                }),
                Box::new(WatchedRing {
                    ring: Arc::clone(&control),
                    session_of: |m: &ControlMsg| m.session,
                }),
                Box::new(WatchedRing {
                    ring: Arc::clone(&actuate),
                    session_of: |m: &ActuateMsg| m.session,
                }),
            ];
            let sessions = Arc::clone(&sessions);
            let progress = Arc::clone(&progress);
            let metrics = metrics.clone();
            let faults = Arc::clone(&fault_counters);
            let stop = Arc::clone(&watchdog_stop);
            std::thread::spawn(move || {
                // Per queue: pop count at the last poll, and how many
                // consecutive polls it sat non-empty without popping.
                let mut last: Vec<(u64, u32)> = vec![(0, 0); views.len()];
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(wcfg.poll_ms));
                    for (view, (last_popped, stalled)) in views.iter().zip(last.iter_mut()) {
                        let popped = view.popped();
                        if view.depth() > 0 && popped == *last_popped {
                            *stalled += 1;
                            if *stalled >= wcfg.stall_polls {
                                *stalled = 0;
                                for session in view.drain_sessions() {
                                    faults.watchdog_sheds.fetch_add(1, Ordering::SeqCst);
                                    if let Some(m) = &metrics {
                                        m.watchdog_sheds.inc();
                                    }
                                    drop_window(&sessions, session, &progress, metrics.as_deref());
                                }
                            }
                        } else {
                            *stalled = 0;
                        }
                        *last_popped = popped;
                    }
                }
            })
        });

        Ok(Runtime {
            config,
            clock: self.clock,
            sessions,
            progress,
            metrics,
            fault_hook,
            fault_counters,
            ingest,
            classify,
            control,
            actuate,
            classify_counters,
            feature_workers,
            classify_workers,
            control_worker,
            actuate_worker,
            watchdog_worker,
            watchdog_stop,
            mem,
            ring_bytes,
            pressure_degradations,
        })
    }
}

/// One degradation step: fall back one model family *and* widen the
/// decision interval (the paper's two load-shedding axes at once). The
/// family never falls below the session's floor (by default the HDC rung;
/// raised by [`RuntimeConfig::floor_family`] / [`RuntimeConfig::min_accuracy`]).
/// Returns whether anything actually changed.
fn degrade(state: &SessionState, degraded_interval: u32) -> bool {
    let mut changed = false;
    if let Some(simpler) = state.family().fallback() {
        if family_code(simpler) >= state.floor {
            state.family.store(family_code(simpler), Ordering::SeqCst);
            changed = true;
        }
    }
    if state.interval.load(Ordering::SeqCst) < degraded_interval {
        state.interval.store(degraded_interval, Ordering::SeqCst);
        changed = true;
    }
    if changed {
        state.degradations.fetch_add(1, Ordering::SeqCst);
    }
    changed
}

/// One recovery step: first restore the decision interval, then climb the
/// model ladder one family at a time (never past the configured initial).
/// Returns whether anything actually changed.
///
/// The classify circuit breaker rides on this machinery: while a session's
/// breaker is open, a family upgrade is allowed but marks the breaker
/// half-open — the upgraded window becomes the recovery *probe*. A probe
/// that classifies cleanly closes the breaker; one that fails reopens it
/// and re-pins the session's floor family. While a probe is in flight, no
/// further upgrades happen.
fn recover(state: &SessionState) -> bool {
    if state.interval.load(Ordering::SeqCst) > 1 {
        state.interval.store(1, Ordering::SeqCst);
        state.recoveries.fetch_add(1, Ordering::SeqCst);
        return true;
    }
    if state.breaker.load(Ordering::SeqCst) == BREAKER_HALF_OPEN {
        return false;
    }
    if let Some(richer) = state.family().upgrade() {
        if family_code(richer) <= state.ceiling {
            if state.breaker.load(Ordering::SeqCst) == BREAKER_OPEN {
                state.breaker.store(BREAKER_HALF_OPEN, Ordering::SeqCst);
            }
            state.family.store(family_code(richer), Ordering::SeqCst);
            state.recoveries.fetch_add(1, Ordering::SeqCst);
            return true;
        }
    }
    false
}

/// Accounts one window as dropped and wakes `wait_idle`.
fn drop_window(
    sessions: &[SessionState],
    session: usize,
    progress: &Progress,
    metrics: Option<&RtMetrics>,
) {
    sessions[session].dropped.fetch_add(1, Ordering::SeqCst);
    if let Some(m) = metrics {
        m.dropped.inc();
    }
    progress.bump();
}

/// Books one caught worker panic: decides restart (with exponential
/// backoff) versus retirement. Returns `true` when the worker should keep
/// running, `false` when it exhausted its restart budget.
fn survive_panic(
    faults: &FaultCounters,
    metrics: Option<&RtMetrics>,
    supervision: &SupervisionConfig,
    consecutive_panics: u32,
    panics_survived: u32,
) -> bool {
    faults.worker_panics.fetch_add(1, Ordering::SeqCst);
    if let Some(m) = metrics {
        m.worker_panics.inc();
    }
    if panics_survived > supervision.restart_budget {
        faults.workers_lost.fetch_add(1, Ordering::SeqCst);
        if let Some(m) = metrics {
            m.workers_lost.inc();
        }
        return false;
    }
    faults.worker_restarts.fetch_add(1, Ordering::SeqCst);
    if let Some(m) = metrics {
        m.worker_restarts.inc();
    }
    let backoff = supervision.backoff_for(consecutive_panics);
    if backoff > 0 {
        std::thread::sleep(Duration::from_millis(backoff));
    }
    true
}

/// Books one classify failure against a session's circuit breaker,
/// tripping it (family forced to the session's floor) after the configured
/// streak.
fn breaker_on_failure(
    state: &SessionState,
    threshold: u32,
    faults: &FaultCounters,
    metrics: Option<&RtMetrics>,
) {
    match state.breaker.load(Ordering::SeqCst) {
        BREAKER_HALF_OPEN => {
            // The recovery probe failed: reopen and re-pin the floor.
            state.breaker.store(BREAKER_OPEN, Ordering::SeqCst);
            state.family.store(state.floor, Ordering::SeqCst);
            faults.breaker_trips.fetch_add(1, Ordering::SeqCst);
            if let Some(m) = metrics {
                // The gauge still counts this breaker from the original
                // trip (half-open is "open, probing"), so no `add` here.
                m.breaker_trips.inc();
            }
        }
        BREAKER_CLOSED => {
            let failures = state.breaker_failures.fetch_add(1, Ordering::SeqCst) + 1;
            if failures >= threshold {
                state.breaker_failures.store(0, Ordering::SeqCst);
                state.breaker.store(BREAKER_OPEN, Ordering::SeqCst);
                // Trip straight to the floor of the fallback chain — no
                // stepwise descent while the classifier is demonstrably
                // broken.
                state.family.store(state.floor, Ordering::SeqCst);
                faults.breaker_trips.fetch_add(1, Ordering::SeqCst);
                if let Some(m) = metrics {
                    m.breaker_trips.inc();
                    m.breakers_open.add(1);
                }
            }
        }
        _ => {} // already open: nothing below the floor to fall to
    }
}

/// Books one classify success: closes a half-open breaker when the probe
/// window (a richer-than-floor family) came through.
fn breaker_on_success(
    state: &SessionState,
    family: ClassifierKind,
    faults: &FaultCounters,
    metrics: Option<&RtMetrics>,
) {
    state.breaker_failures.store(0, Ordering::SeqCst);
    if state.breaker.load(Ordering::SeqCst) == BREAKER_HALF_OPEN
        && family_code(family) > state.floor
    {
        state.breaker.store(BREAKER_CLOSED, Ordering::SeqCst);
        faults.breaker_closes.fetch_add(1, Ordering::SeqCst);
        if let Some(m) = metrics {
            m.breaker_closes.inc();
            m.breakers_open.sub(1);
        }
    }
}

/// Pushes a message downstream, translating every shed outcome into the
/// owning session's `dropped` counter so the accounting invariant holds.
fn offer<T>(
    ring: &Ring<T>,
    msg: T,
    session_of: impl Fn(&T) -> usize,
    sessions: &[SessionState],
    progress: &Progress,
    metrics: Option<&RtMetrics>,
) {
    match ring.push(msg) {
        PushOutcome::Stored => {}
        PushOutcome::Evicted(old) | PushOutcome::Rejected(old) | PushOutcome::Closed(old) => {
            drop_window(sessions, session_of(&old), progress, metrics);
        }
    }
}

/// The live multi-session streaming runtime. Build via [`RuntimeBuilder`].
pub struct Runtime {
    config: RuntimeConfig,
    clock: Arc<dyn Clock>,
    sessions: Arc<Vec<SessionState>>,
    progress: Arc<Progress>,
    metrics: Option<Arc<RtMetrics>>,
    fault_hook: Option<Arc<dyn FaultHook>>,
    fault_counters: Arc<FaultCounters>,
    ingest: Arc<Ring<IngestMsg>>,
    classify: Arc<Ring<ClassifyMsg>>,
    control: Arc<Ring<ControlMsg>>,
    actuate: Arc<Ring<ActuateMsg>>,
    classify_counters: Arc<ClassifyCounters>,
    feature_workers: Vec<JoinHandle<()>>,
    classify_workers: Vec<JoinHandle<()>>,
    control_worker: JoinHandle<()>,
    actuate_worker: JoinHandle<Vec<Box<dyn Actuator>>>,
    watchdog_worker: Option<JoinHandle<()>>,
    watchdog_stop: Arc<AtomicBool>,
    mem: Arc<MemoryBudget>,
    /// Ring bytes charged at start, released at shutdown.
    ring_bytes: u64,
    /// Degradation steps triggered by memory pressure alone (deadline met).
    pressure_degradations: Arc<AtomicU64>,
}

impl Runtime {
    /// Number of registered sessions.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// The configuration the runtime was started with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The classifier family currently in force for a session.
    pub fn session_family(&self, session: SessionId) -> ClassifierKind {
        self.sessions[session.0].family()
    }

    /// The decision interval currently in force for a session.
    pub fn session_interval(&self, session: SessionId) -> u32 {
        self.sessions[session.0].interval.load(Ordering::SeqCst)
    }

    /// Current depth of the ingest queue — the runtime's cheapest
    /// backpressure signal. A fleet's admission layer polls this to shed
    /// best-effort windows *before* they cost a queue slot.
    pub fn ingest_depth(&self) -> usize {
        self.ingest.depth()
    }

    /// Capacity of the ingest queue (denominator for pressure ratios).
    pub fn ingest_capacity(&self) -> usize {
        self.ingest.capacity()
    }

    /// The runtime's memory-budget accountant. A fleet governor polls its
    /// [`PressureBand`] to drive eviction; a chaos harness injects phantom
    /// charges through it.
    pub fn memory_budget(&self) -> &Arc<MemoryBudget> {
        &self.mem
    }

    /// Evicts a session: future [`Runtime::submit`] calls for it become
    /// clean no-ops (returning `false` without producing a window), then
    /// this call blocks until every window it already produced is
    /// accounted (processed or dropped), so the accounting handoff is
    /// exact — the session's final report satisfies
    /// `produced == processed + dropped` with nothing in flight.
    ///
    /// The session's slot (state, controller, actuator) stays registered,
    /// so the final [`RuntimeReport`] includes it and
    /// [`Runtime::readmit_session`] can cheaply bring it back.
    ///
    /// Returns `false` when the session was already evicted.
    pub fn remove_session(&self, session: SessionId) -> bool {
        let state = &self.sessions[session.0];
        if state.evicted.swap(true, Ordering::SeqCst) {
            return false;
        }
        let mut generation = self
            .progress
            .generation
            .lock()
            .expect("progress lock poisoned");
        while !state.accounted() {
            let (next, _timeout) = self
                .progress
                .changed
                .wait_timeout(generation, Duration::from_millis(20))
                .expect("progress lock poisoned");
            generation = next;
        }
        true
    }

    /// Readmits a previously evicted session: its submits flow again, all
    /// counters continuing from where eviction left them. Returns `false`
    /// when the session was not evicted.
    pub fn readmit_session(&self, session: SessionId) -> bool {
        self.sessions[session.0]
            .evicted
            .swap(false, Ordering::SeqCst)
    }

    /// Whether a session is currently evicted.
    pub fn session_evicted(&self, session: SessionId) -> bool {
        self.sessions[session.0].evicted.load(Ordering::SeqCst)
    }

    /// Submits one analysis window for a session. The window is stamped
    /// with the clock's current time as its arrival.
    ///
    /// Returns `true` when the window entered the pipeline; `false` when
    /// it was decimated by a widened decision interval or shed at the
    /// ingest queue (either way it is counted, never lost), or when the
    /// session is currently evicted by the memory-pressure governor (the
    /// window is refused *before* it is produced, so the session's frozen
    /// accounting stays exact — check [`Runtime::session_evicted`] to
    /// distinguish). Under
    /// [`OverflowPolicy::Block`] ingest this call blocks while the queue
    /// is full — that is the backpressure propagating to the producer.
    ///
    /// # Panics
    ///
    /// Panics when `session` did not come from this runtime's builder.
    pub fn submit(&self, session: SessionId, samples: Vec<f32>) -> bool {
        let state = &self.sessions[session.0];
        // An evicted session's windows are refused before they are
        // produced: nothing enters any counter, so the accounting frozen
        // at eviction time stays exact.
        if state.evicted.load(Ordering::SeqCst) {
            return false;
        }
        let seq = state.next_seq.fetch_add(1, Ordering::SeqCst);
        state.produced.fetch_add(1, Ordering::SeqCst);
        if let Some(m) = &self.metrics {
            m.submitted.inc();
        }
        let interval = u64::from(state.interval.load(Ordering::SeqCst).max(1));
        if !seq.is_multiple_of(interval) {
            // Decimated: the widened decision interval sheds this window
            // before it costs any pipeline work.
            drop_window(
                &self.sessions,
                session.0,
                &self.progress,
                self.metrics.as_deref(),
            );
            return false;
        }
        if let Some(h) = &self.fault_hook {
            match h.inject(Stage::Ingest, session.0, seq) {
                FaultAction::None => {}
                FaultAction::DelayNs(ns) => std::thread::sleep(Duration::from_nanos(ns)),
                // Panicking the *producer's* thread is never interesting;
                // at ingest both destructive actions mean "the sensor
                // dropped this window".
                FaultAction::DropWindow | FaultAction::Panic => {
                    drop_window(
                        &self.sessions,
                        session.0,
                        &self.progress,
                        self.metrics.as_deref(),
                    );
                    return false;
                }
            }
        }
        let msg = IngestMsg {
            session: session.0,
            seq,
            arrival_ns: self.clock.now_nanos(),
            samples,
        };
        match self.ingest.push(msg) {
            PushOutcome::Stored => true,
            PushOutcome::Evicted(old) => {
                drop_window(
                    &self.sessions,
                    old.session,
                    &self.progress,
                    self.metrics.as_deref(),
                );
                true
            }
            PushOutcome::Rejected(old) | PushOutcome::Closed(old) => {
                drop_window(
                    &self.sessions,
                    old.session,
                    &self.progress,
                    self.metrics.as_deref(),
                );
                false
            }
        }
    }

    fn all_accounted(&self) -> bool {
        self.sessions.iter().all(SessionState::accounted)
    }

    /// Blocks until every submitted window is accounted for (processed or
    /// dropped), i.e. the pipeline has fully drained.
    pub fn wait_idle(&self) {
        let mut generation = self
            .progress
            .generation
            .lock()
            .expect("progress lock poisoned");
        while !self.all_accounted() {
            // Timed wait: a counter can move between our check and the
            // wait, so never rely on the notification alone.
            let (next, _timeout) = self
                .progress
                .changed
                .wait_timeout(generation, Duration::from_millis(20))
                .expect("progress lock poisoned");
            generation = next;
        }
    }

    /// Snapshots per-session accounting and per-stage queue statistics.
    /// Callable at any time; a post-[`Runtime::wait_idle`] snapshot
    /// satisfies [`RuntimeReport::all_accounted`].
    pub fn report(&self) -> RuntimeReport {
        snapshot_report(
            &self.sessions,
            &self.ingest,
            &self.classify,
            &self.control,
            &self.actuate,
            &self.classify_counters,
            &self.fault_counters,
            &self.mem,
            &self.pressure_degradations,
        )
    }

    /// Stops accepting work, drains the pipeline stage by stage, joins all
    /// workers and returns the final report plus each session's actuator.
    pub fn shutdown(self) -> ShutdownOutcome {
        // Stop the watchdog first so it cannot mistake the staged drain
        // below for a stall and shed in-flight windows.
        self.watchdog_stop.store(true, Ordering::SeqCst);
        if let Some(watchdog) = self.watchdog_worker {
            watchdog.join().expect("watchdog panicked");
        }
        // Close upstream first and join before closing the next stage, so
        // in-flight windows drain instead of being cut off mid-pipeline.
        self.ingest.close();
        for worker in self.feature_workers {
            worker.join().expect("feature worker panicked");
        }
        self.classify.close();
        for worker in self.classify_workers {
            worker.join().expect("classify worker panicked");
        }
        self.control.close();
        self.control_worker.join().expect("control worker panicked");
        self.actuate.close();
        let actuators = self.actuate_worker.join().expect("actuate worker panicked");

        let report = snapshot_report(
            &self.sessions,
            &self.ingest,
            &self.classify,
            &self.control,
            &self.actuate,
            &self.classify_counters,
            &self.fault_counters,
            &self.mem,
            &self.pressure_degradations,
        );
        // The report above snapshots usage *with* the rings still charged
        // (that is what the run held); the release happens after.
        self.mem.release(MemConsumer::RingQueues, self.ring_bytes);
        ShutdownOutcome { report, actuators }
    }
}

#[allow(clippy::too_many_arguments)]
fn snapshot_report(
    sessions: &[SessionState],
    ingest: &Ring<IngestMsg>,
    classify: &Ring<ClassifyMsg>,
    control: &Ring<ControlMsg>,
    actuate: &Ring<ActuateMsg>,
    classify_counters: &ClassifyCounters,
    fault_counters: &FaultCounters,
    mem: &MemoryBudget,
    pressure_degradations: &AtomicU64,
) -> RuntimeReport {
    let sessions = sessions
        .iter()
        .enumerate()
        .map(|(index, s)| SessionReport {
            session: index,
            produced: s.produced.load(Ordering::SeqCst),
            processed: s.processed.load(Ordering::SeqCst),
            dropped: s.dropped.load(Ordering::SeqCst),
            deadline_misses: s.misses.load(Ordering::SeqCst),
            degradations: s.degradations.load(Ordering::SeqCst),
            recoveries: s.recoveries.load(Ordering::SeqCst),
            family: s.family(),
            decision_interval: s.interval.load(Ordering::SeqCst),
            latency: s.latency.summary(),
            latency_hist: s.latency.snapshot_hist(),
            evicted: s.evicted.load(Ordering::SeqCst),
        })
        .collect();
    let stage = |name: &'static str, stats: crate::ring::RingStats, capacity: usize| StageReport {
        stage: name,
        pushed: stats.pushed,
        popped: stats.popped,
        shed: stats.shed,
        depth_high_water: stats.depth_high_water,
        capacity,
    };
    RuntimeReport {
        sessions,
        stages: vec![
            stage("ingest", ingest.snapshot(), ingest.capacity()),
            stage("classify", classify.snapshot(), classify.capacity()),
            stage("control", control.snapshot(), control.capacity()),
            stage("actuate", actuate.snapshot(), actuate.capacity()),
        ],
        classify: classify_counters.snapshot(),
        faults: fault_counters.snapshot(),
        mem: {
            let mut snapshot = MemReport::snapshot(mem);
            snapshot.pressure_degradations = pressure_degradations.load(Ordering::SeqCst);
            snapshot
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> SessionState {
        SessionState::new(ClassifierKind::Lstm, ClassifierKind::Hdc, Precision::F32)
    }

    #[test]
    fn breaker_trips_to_floor_after_threshold_failures() {
        let s = state();
        let faults = FaultCounters::default();
        breaker_on_failure(&s, 3, &faults, None);
        breaker_on_failure(&s, 3, &faults, None);
        assert_eq!(s.breaker.load(Ordering::SeqCst), BREAKER_CLOSED);
        assert_eq!(s.family(), ClassifierKind::Lstm);
        breaker_on_failure(&s, 3, &faults, None);
        assert_eq!(s.breaker.load(Ordering::SeqCst), BREAKER_OPEN);
        assert_eq!(s.family(), ClassifierKind::Hdc, "tripped straight to HDC");
        assert_eq!(faults.breaker_trips.load(Ordering::SeqCst), 1);
        // With the floor raised to MLP, the trip pins MLP instead.
        let s = SessionState::new(ClassifierKind::Lstm, ClassifierKind::Mlp, Precision::F32);
        for _ in 0..3 {
            breaker_on_failure(&s, 3, &faults, None);
        }
        assert_eq!(s.family(), ClassifierKind::Mlp);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let s = state();
        let faults = FaultCounters::default();
        breaker_on_failure(&s, 3, &faults, None);
        breaker_on_failure(&s, 3, &faults, None);
        breaker_on_success(&s, ClassifierKind::Lstm, &faults, None);
        breaker_on_failure(&s, 3, &faults, None);
        assert_eq!(s.breaker.load(Ordering::SeqCst), BREAKER_CLOSED);
    }

    #[test]
    fn recovery_probe_closes_breaker_on_success() {
        let s = state();
        let faults = FaultCounters::default();
        for _ in 0..3 {
            breaker_on_failure(&s, 3, &faults, None);
        }
        assert_eq!(s.breaker.load(Ordering::SeqCst), BREAKER_OPEN);
        // The ordinary recovery machinery launches the probe: the family
        // upgrade marks the breaker half-open.
        assert!(recover(&s));
        assert_eq!(s.breaker.load(Ordering::SeqCst), BREAKER_HALF_OPEN);
        assert_eq!(s.family(), ClassifierKind::Mlp);
        // No further upgrades while the probe is in flight.
        assert!(!recover(&s));
        // Floor-family (HDC) stragglers still in the pipe must not close
        // the breaker…
        breaker_on_success(&s, ClassifierKind::Hdc, &faults, None);
        assert_eq!(s.breaker.load(Ordering::SeqCst), BREAKER_HALF_OPEN);
        // …but the probe family succeeding does.
        breaker_on_success(&s, ClassifierKind::Mlp, &faults, None);
        assert_eq!(s.breaker.load(Ordering::SeqCst), BREAKER_CLOSED);
        assert_eq!(faults.breaker_closes.load(Ordering::SeqCst), 1);
        // With the breaker closed, recovery continues up the ladder.
        assert!(recover(&s));
        assert_eq!(s.family(), ClassifierKind::Cnn);
        assert!(recover(&s));
        assert_eq!(s.family(), ClassifierKind::Lstm);
    }

    #[test]
    fn failed_probe_reopens_and_repins_floor() {
        let s = state();
        let faults = FaultCounters::default();
        for _ in 0..3 {
            breaker_on_failure(&s, 3, &faults, None);
        }
        assert_eq!(s.family(), ClassifierKind::Hdc);
        assert!(recover(&s));
        assert_eq!(s.breaker.load(Ordering::SeqCst), BREAKER_HALF_OPEN);
        breaker_on_failure(&s, 3, &faults, None);
        assert_eq!(s.breaker.load(Ordering::SeqCst), BREAKER_OPEN);
        assert_eq!(s.family(), ClassifierKind::Hdc);
        assert_eq!(faults.breaker_trips.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn per_session_ceiling_caps_recovery() {
        // An MLP-ceiling session (a best-effort QoS tier) can still shed
        // load by degrading to the HDC rung below it, then recovers back
        // to — and never past — its ceiling.
        let s = SessionState::new(ClassifierKind::Mlp, ClassifierKind::Hdc, Precision::F32);
        assert_eq!(s.family(), ClassifierKind::Mlp);
        assert!(degrade(&s, 2));
        assert_eq!(s.family(), ClassifierKind::Hdc);
        assert!(recover(&s), "interval restores first");
        assert!(recover(&s), "then the family climbs");
        assert_eq!(s.family(), ClassifierKind::Mlp);
        assert!(!recover(&s), "ceiling reached");
        // A CNN-ceiling session with an MLP floor walks CNN → MLP and
        // stops: the floor blocks the HDC rung.
        let s = SessionState::new(ClassifierKind::Cnn, ClassifierKind::Mlp, Precision::F32);
        assert!(degrade(&s, 2));
        assert_eq!(s.family(), ClassifierKind::Mlp);
        assert!(
            !degrade(&s, 2),
            "floor blocks the family, interval already wide"
        );
        assert_eq!(s.family(), ClassifierKind::Mlp, "family floor holds");
        assert!(recover(&s), "interval restores first");
        assert!(recover(&s), "then the family climbs");
        assert_eq!(s.family(), ClassifierKind::Cnn);
        assert!(!recover(&s), "ceiling reached");
    }

    #[test]
    fn floor_never_sits_above_the_ceiling() {
        // A session whose ceiling is below the configured floor is pinned
        // at its ceiling rather than hoisted above it.
        let s = SessionState::new(ClassifierKind::Mlp, ClassifierKind::Cnn, Precision::F32);
        assert_eq!(s.floor, family_code(ClassifierKind::Mlp));
        assert!(
            !degrade(&s, 1),
            "nothing below the pinned rung at interval 1"
        );
        assert_eq!(s.family(), ClassifierKind::Mlp);
    }

    #[test]
    fn min_accuracy_raises_the_effective_floor() {
        let mut config = RuntimeConfig::default();
        assert_eq!(config.effective_floor(), ClassifierKind::Hdc);
        config.min_accuracy = Some(0.50);
        assert_eq!(config.effective_floor(), ClassifierKind::Hdc);
        config.min_accuracy = Some(0.75);
        assert_eq!(config.effective_floor(), ClassifierKind::Mlp);
        config.min_accuracy = Some(0.82);
        assert_eq!(config.effective_floor(), ClassifierKind::Cnn);
        // An unmeetable bar resolves to the richest family.
        config.min_accuracy = Some(0.99);
        assert_eq!(config.effective_floor(), ClassifierKind::Lstm);
        // An explicit floor_family is never lowered by the accuracy rule.
        config.min_accuracy = Some(0.10);
        config.floor_family = ClassifierKind::Cnn;
        assert_eq!(config.effective_floor(), ClassifierKind::Cnn);
        config.min_accuracy = Some(1.5);
        assert!(config.validate().is_err());
    }

    #[test]
    fn degradation_walks_the_full_ladder_to_hdc() {
        let s = state();
        assert_eq!(s.family(), ClassifierKind::Lstm);
        assert!(degrade(&s, 2));
        assert_eq!(s.family(), ClassifierKind::Cnn);
        assert!(degrade(&s, 2));
        assert_eq!(s.family(), ClassifierKind::Mlp);
        assert!(degrade(&s, 2));
        assert_eq!(s.family(), ClassifierKind::Hdc);
        assert!(!degrade(&s, 2), "HDC is the bottom rung");
        // And all the way back up.
        assert!(recover(&s), "interval");
        for expected in [
            ClassifierKind::Mlp,
            ClassifierKind::Cnn,
            ClassifierKind::Lstm,
        ] {
            assert!(recover(&s));
            assert_eq!(s.family(), expected);
        }
        assert!(!recover(&s), "ceiling reached");
    }

    #[test]
    fn survive_panic_respects_budget_and_counts() {
        let faults = FaultCounters::default();
        let sup = SupervisionConfig {
            restart_budget: 2,
            backoff_base_ms: 0,
            backoff_max_ms: 0,
            breaker_threshold: 3,
        };
        assert!(survive_panic(&faults, None, &sup, 1, 1));
        assert!(survive_panic(&faults, None, &sup, 2, 2));
        assert!(!survive_panic(&faults, None, &sup, 3, 3));
        assert_eq!(faults.worker_panics.load(Ordering::SeqCst), 3);
        assert_eq!(faults.worker_restarts.load(Ordering::SeqCst), 2);
        assert_eq!(faults.workers_lost.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn config_rejects_degenerate_supervision() {
        let mut config = RuntimeConfig {
            supervision: SupervisionConfig {
                breaker_threshold: 0,
                ..SupervisionConfig::default()
            },
            ..RuntimeConfig::default()
        };
        assert!(config.validate().is_err());
        config.supervision = SupervisionConfig::default();
        config.watchdog = Some(WatchdogConfig {
            poll_ms: 0,
            stall_polls: 4,
        });
        assert!(config.validate().is_err());
        config.watchdog = Some(WatchdogConfig::default());
        assert!(config.validate().is_ok());
    }
}
