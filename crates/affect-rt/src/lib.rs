//! `affect-rt`: a real-time multi-session streaming runtime for the
//! closed affect loop of the `affectsys` reproduction (DAC 2022).
//!
//! The offline crates classify one window at a time; the paper's system
//! runs *continuously* on a phone: biosignal windows arrive every second
//! per wearer, the classifier must keep up, and when it cannot, the system
//! degrades gracefully instead of falling behind. This crate is that
//! missing runtime layer:
//!
//! - **Staged pipeline** — ingest → feature-extract → classify →
//!   smooth/control → actuate, each stage on its own worker thread(s)
//!   behind a bounded queue with an explicit overflow policy
//!   ([`OverflowPolicy::Block`] / [`OverflowPolicy::DropOldest`] /
//!   [`OverflowPolicy::DropNewest`]).
//! - **Session multiplexing** — N independent wearers share one classifier
//!   worker pool; per-session state (controller smoothing, degradation
//!   level, statistics) stays isolated.
//! - **Deadline tracking** — every window carries its arrival timestamp;
//!   end-to-end latency is recorded against a configurable budget (the
//!   paper's ~1 s decision cadence) and misses are counted per session.
//! - **Graceful degradation** — sustained misses drop the session one
//!   model family down the accuracy/latency ladder (LSTM → CNN → MLP →
//!   HDC, the last an integer-only hyperdimensional classifier) and widen
//!   its decision interval; sustained on-time windows climb back up. The
//!   bottom rung is configurable ([`RuntimeConfig`]`::floor_family` /
//!   `min_accuracy`), and each session can run its neural models in int8
//!   (`RuntimeBuilder::add_session_with_precision`). See
//!   `docs/DEGRADATION.md` for the full ladder semantics.
//! - **Honest accounting** — `produced == processed + dropped` per
//!   session, always: load shedding is explicit, never silent.
//! - **Supervision** — feature and classify workers run each window inside
//!   a per-message unwind boundary: a panic (injected via [`FaultHook`] or
//!   organic) costs one window, restarts the worker with exponential
//!   backoff, and retires it only after a restart budget. Repeated
//!   classifier failures trip a per-session circuit breaker straight to
//!   the session's floor family (the HDC rung by default); an optional
//!   watchdog force-drains stalled queues. See `docs/ROBUSTNESS.md`.
//!
//! Everything is built on `std::thread` + mutex/condvar rings; the crate
//! adds no dependencies beyond the workspace's own crates.
//!
//! # Example
//!
//! ```
//! use affect_rt::{
//!     CollectActuator, OverflowPolicy, RuntimeBuilder, RuntimeConfig, StageConfig,
//! };
//! use affect_core::pipeline::FeatureConfig;
//!
//! # fn main() -> Result<(), affect_core::AffectError> {
//! let config = RuntimeConfig {
//!     feature: FeatureConfig {
//!         frame_len: 256,
//!         hop: 128,
//!         n_mfcc: 8,
//!         n_mels: 20,
//!         ..FeatureConfig::default()
//!     },
//!     window_samples: 1024,
//!     ingest: StageConfig::new(4, OverflowPolicy::DropOldest),
//!     ..RuntimeConfig::default()
//! };
//! let mut builder = RuntimeBuilder::new(config)?;
//! let session = builder.add_session(Box::new(CollectActuator::default()));
//! let runtime = builder.start()?;
//! runtime.submit(session, vec![0.25; 1024]);
//! runtime.wait_idle();
//! let outcome = runtime.shutdown();
//! let report = &outcome.report.sessions[session.index()];
//! assert!(report.accounted());
//! assert_eq!(report.produced, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod actuator;
pub mod clock;
pub mod fault;
pub mod mem;
pub mod ring;
pub mod runtime;
pub mod stats;
pub mod wire;

pub use actuator::{Actuator, AppActuator, CollectActuator, NullActuator, VideoActuator};
pub use clock::{Clock, SystemClock, VirtualClock};
pub use fault::{silence_injected_panics, FaultAction, FaultHook, InjectedPanic, Stage};
pub use mem::{MemConsumer, MemReport, MemoryBudget, PressureBand};
pub use ring::{OverflowPolicy, PushOutcome, Ring, RingMetrics, RingStats};
pub use runtime::{
    Runtime, RuntimeBuilder, RuntimeConfig, SessionId, ShutdownOutcome, StageConfig,
    SupervisionConfig, WatchdogConfig,
};
pub use stats::{
    ClassifyReport, FaultReport, LatencyHistogram, LatencySummary, RuntimeReport, SessionReport,
    StageReport,
};
pub use wire::{WireConfig, WireReport, WireSession};
