//! Byte-budget accounting and the four-band memory-pressure signal.
//!
//! The source paper manages *memory and computation* under emotion on
//! resource-limited edge devices; this module gives the runtime a model of
//! its own footprint so the degradation machinery can react to memory the
//! same way it reacts to latency. A [`MemoryBudget`] is a set of per-consumer
//! atomic byte counters charged and released at (de)allocation seams — ring
//! construction, scratch-arena growth, classifier-table builds, wire and
//! decoder buffers — never on the per-window path, so the zero-allocation
//! hot-path proof keeps holding with a governor attached.
//!
//! Usage against the configured budget yields a [`PressureBand`]:
//!
//! | band     | usage (permille of budget) | governor response                      |
//! |----------|----------------------------|----------------------------------------|
//! | Green    | < 700‰                     | none                                   |
//! | Yellow   | ≥ 700‰                     | classify batch shrinks to 1; sessions  |
//! |          |                            | step down the LSTM→CNN→MLP→HDC ladder  |
//! | Red      | ≥ 850‰                     | fleet evicts BestEffort sessions       |
//! | Critical | ≥ 950‰                     | fleet evicts Standard sessions too     |
//!
//! A zero budget disables the governor (the band is always Green). Chaos
//! runs inject *phantom* bytes ([`MemoryBudget::set_phantom`]) on top of the
//! real charges, so a seed-pure fault plan can walk all four bands
//! byte-stably without perturbing real allocations. See
//! `docs/ROBUSTNESS.md` §memory-pressure.

use std::sync::atomic::{AtomicU64, Ordering};

use affect_obs::{Counter as ObsCounter, Gauge as ObsGauge, MetricsRegistry};

/// Yellow band threshold, permille of the budget.
pub const YELLOW_PERMILLE: u64 = 700;
/// Red band threshold, permille of the budget.
pub const RED_PERMILLE: u64 = 850;
/// Critical band threshold, permille of the budget.
pub const CRITICAL_PERMILLE: u64 = 950;

/// The tracked memory consumers, each with its own usage counter (and
/// `affect_mem_used_bytes{consumer=…}` gauge when metrics are attached).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum MemConsumer {
    /// Stage ring queues: capacity × slot size, charged at construction.
    RingQueues = 0,
    /// Classify workers' scratch arenas (f32 + i8 pools), charged as the
    /// pools grow toward their fixed point.
    ScratchPools = 1,
    /// Classifier tables: HDC prototype/bound tables plus the neural
    /// families' parameter storage, charged at worker-pool build.
    ModelTables = 2,
    /// h264 reference-frame and stream-ingest (scanner pending) buffers.
    DecoderBuffers = 3,
    /// Wire segment chunk buffers in flight.
    WireBuffers = 4,
    /// Deterministic phantom bytes injected by a chaos plan.
    Phantom = 5,
}

impl MemConsumer {
    /// Every consumer, in counter order.
    pub const ALL: [MemConsumer; 6] = [
        MemConsumer::RingQueues,
        MemConsumer::ScratchPools,
        MemConsumer::ModelTables,
        MemConsumer::DecoderBuffers,
        MemConsumer::WireBuffers,
        MemConsumer::Phantom,
    ];

    /// Stable label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            MemConsumer::RingQueues => "rings",
            MemConsumer::ScratchPools => "scratch",
            MemConsumer::ModelTables => "models",
            MemConsumer::DecoderBuffers => "decoder",
            MemConsumer::WireBuffers => "wire",
            MemConsumer::Phantom => "phantom",
        }
    }
}

/// The four-band pressure signal derived from usage vs budget. Ordered so
/// `>=` comparisons read naturally (`band >= PressureBand::Yellow`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum PressureBand {
    /// Usage below the Yellow threshold (or no budget configured).
    Green = 0,
    /// Sustained pressure: shed computation (batching, family ladder).
    Yellow = 1,
    /// Severe pressure: evict BestEffort sessions.
    Red = 2,
    /// Budget nearly exhausted: evict Standard sessions too.
    Critical = 3,
}

impl PressureBand {
    /// Every band, mildest first.
    pub const ALL: [PressureBand; 4] = [
        PressureBand::Green,
        PressureBand::Yellow,
        PressureBand::Red,
        PressureBand::Critical,
    ];

    /// Stable label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            PressureBand::Green => "green",
            PressureBand::Yellow => "yellow",
            PressureBand::Red => "red",
            PressureBand::Critical => "critical",
        }
    }

    /// Decodes a [`MemReport::band`] code back into a band (anything past
    /// the known codes clamps to `Critical`).
    pub fn from_code(code: u8) -> PressureBand {
        match code {
            0 => PressureBand::Green,
            1 => PressureBand::Yellow,
            2 => PressureBand::Red,
            _ => PressureBand::Critical,
        }
    }
}

/// Registered `affect_mem_*` observability handles.
struct MemMetrics {
    used: [std::sync::Arc<ObsGauge>; 6],
    total: std::sync::Arc<ObsGauge>,
    budget: std::sync::Arc<ObsGauge>,
    transitions: [std::sync::Arc<ObsCounter>; 4],
}

/// The byte-budget accountant: per-consumer usage counters, the configured
/// budget, and the derived [`PressureBand`].
///
/// Every operation is a handful of atomic ops — no locks, no allocation —
/// so charge/release seams may sit anywhere, including next to hot paths.
/// Shared via `Arc` between the runtime, its workers, and (in a fleet) the
/// shard's eviction governor.
pub struct MemoryBudget {
    budget: AtomicU64,
    used: [AtomicU64; 6],
    band: AtomicU64,
    transitions: [AtomicU64; 4],
    metrics: Option<MemMetrics>,
}

impl std::fmt::Debug for MemoryBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryBudget")
            .field("budget", &self.budget_bytes())
            .field("used", &self.used_bytes())
            .field("band", &self.band())
            .finish()
    }
}

impl MemoryBudget {
    /// A budget of `budget_bytes` (0 disables the governor: the band is
    /// always Green, charges are still accounted).
    pub fn new(budget_bytes: u64) -> Self {
        Self {
            budget: AtomicU64::new(budget_bytes),
            used: std::array::from_fn(|_| AtomicU64::new(0)),
            band: AtomicU64::new(PressureBand::Green as u64),
            transitions: std::array::from_fn(|_| AtomicU64::new(0)),
            metrics: None,
        }
    }

    /// Registers the `affect_mem_*` series (usage gauge per consumer, total
    /// and budget gauges, band-transition counters) and keeps them updated
    /// from every charge/release.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        let used = std::array::from_fn(|i| {
            registry.gauge(
                "affect_mem_used_bytes",
                "bytes currently charged against the memory budget, per consumer",
                &[("consumer", MemConsumer::ALL[i].label())],
            )
        });
        let total = registry.gauge(
            "affect_mem_total_bytes",
            "bytes currently charged against the memory budget, all consumers",
            &[],
        );
        let budget = registry.gauge(
            "affect_mem_budget_bytes",
            "configured memory budget (0 = governor disabled)",
            &[],
        );
        budget.set(self.budget_bytes() as i64);
        let transitions = std::array::from_fn(|i| {
            registry.counter(
                "affect_mem_band_transitions_total",
                "pressure-band entries, per band",
                &[("band", PressureBand::ALL[i].label())],
            )
        });
        self.metrics = Some(MemMetrics {
            used,
            total,
            budget,
            transitions,
        });
        self
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    /// Re-targets the budget at runtime (the `mem_pressure` bench shrinks
    /// it monotonically to walk the bands).
    pub fn set_budget_bytes(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.budget.set(bytes as i64);
        }
        self.refresh();
    }

    /// Total bytes charged across all consumers (phantom included).
    pub fn used_bytes(&self) -> u64 {
        self.used
            .iter()
            .map(|u| u.load(Ordering::Relaxed))
            .sum::<u64>()
    }

    /// Bytes charged by one consumer.
    pub fn used_by(&self, consumer: MemConsumer) -> u64 {
        self.used[consumer as usize].load(Ordering::Relaxed)
    }

    /// Charges `bytes` against `consumer`. Atomics only — safe at any seam.
    pub fn charge(&self, consumer: MemConsumer, bytes: u64) {
        let now = self.used[consumer as usize].fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(m) = &self.metrics {
            m.used[consumer as usize].set(now as i64);
            m.total.set(self.used_bytes() as i64);
        }
        self.refresh();
    }

    /// Releases `bytes` previously charged against `consumer` (saturating:
    /// a release can never drive usage negative).
    pub fn release(&self, consumer: MemConsumer, bytes: u64) {
        let counter = &self.used[consumer as usize];
        let mut current = counter.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(bytes);
            match counter.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
        if let Some(m) = &self.metrics {
            m.used[consumer as usize].set(counter.load(Ordering::Relaxed) as i64);
            m.total.set(self.used_bytes() as i64);
        }
        self.refresh();
    }

    /// Overwrites the phantom-byte charge (chaos injection: the fault plan
    /// computes an absolute phantom load per tick, so replay is byte-stable
    /// regardless of how many ticks already ran).
    pub fn set_phantom(&self, bytes: u64) {
        self.used[MemConsumer::Phantom as usize].store(bytes, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.used[MemConsumer::Phantom as usize].set(bytes as i64);
            m.total.set(self.used_bytes() as i64);
        }
        self.refresh();
    }

    /// The band implied by current usage vs budget (pure read, no state
    /// update).
    pub fn band_for_usage(&self) -> PressureBand {
        let budget = self.budget_bytes();
        if budget == 0 {
            return PressureBand::Green;
        }
        let used = self.used_bytes();
        // permille = used * 1000 / budget without overflow for realistic
        // byte counts (u128 keeps even absurd budgets exact).
        let permille = ((used as u128) * 1000 / (budget as u128)) as u64;
        if permille >= CRITICAL_PERMILLE {
            PressureBand::Critical
        } else if permille >= RED_PERMILLE {
            PressureBand::Red
        } else if permille >= YELLOW_PERMILLE {
            PressureBand::Yellow
        } else {
            PressureBand::Green
        }
    }

    /// Recomputes the band from current usage, recording a transition
    /// counter tick when it changed. Called from every charge/release (and
    /// callable standalone); returns the band now in force.
    pub fn refresh(&self) -> PressureBand {
        let next = self.band_for_usage();
        let prev = self.band.swap(next as u64, Ordering::Relaxed);
        if prev != next as u64 {
            self.transitions[next as usize].fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.transitions[next as usize].inc();
            }
        }
        next
    }

    /// The band as of the last [`MemoryBudget::refresh`] — the value the
    /// per-window governor checks (one atomic load).
    pub fn band(&self) -> PressureBand {
        PressureBand::from_code(self.band.load(Ordering::Relaxed) as u8)
    }

    /// Times each band has been *entered* (Green counts re-entries after
    /// pressure receded, not the initial state).
    pub fn transitions(&self) -> [u64; 4] {
        std::array::from_fn(|i| self.transitions[i].load(Ordering::Relaxed))
    }
}

/// Snapshot of the budget state, carried in reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemReport {
    /// Configured budget (0 = governor disabled).
    pub budget_bytes: u64,
    /// Bytes charged at snapshot time, all consumers.
    pub used_bytes: u64,
    /// Per-consumer usage, indexed like [`MemConsumer::ALL`].
    pub used_by: [u64; 6],
    /// Band in force at snapshot time.
    pub band: u8,
    /// Band entries per band, indexed like [`PressureBand::ALL`].
    pub band_transitions: [u64; 4],
    /// Windows whose degradation step was triggered by memory pressure
    /// (as opposed to a deadline-miss streak).
    pub pressure_degradations: u64,
}

impl MemReport {
    /// Snapshots a live budget (the runtime adds `pressure_degradations`).
    pub fn snapshot(budget: &MemoryBudget) -> Self {
        Self {
            budget_bytes: budget.budget_bytes(),
            used_bytes: budget.used_bytes(),
            used_by: std::array::from_fn(|i| budget.used_by(MemConsumer::ALL[i])),
            band: budget.band() as u8,
            band_transitions: budget.transitions(),
            pressure_degradations: 0,
        }
    }

    /// Folds another runtime's memory snapshot into this one (fleet
    /// aggregation): budgets and usage sum, transitions sum, the band
    /// resolves to the worst — all symmetric, so merge order never matters.
    pub fn merge(&mut self, other: &MemReport) {
        self.budget_bytes += other.budget_bytes;
        self.used_bytes += other.used_bytes;
        for (mine, theirs) in self.used_by.iter_mut().zip(other.used_by.iter()) {
            *mine += theirs;
        }
        self.band = self.band.max(other.band);
        for (mine, theirs) in self
            .band_transitions
            .iter_mut()
            .zip(other.band_transitions.iter())
        {
            *mine += theirs;
        }
        self.pressure_degradations += other.pressure_degradations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budget_is_always_green() {
        let mem = MemoryBudget::new(0);
        mem.charge(MemConsumer::RingQueues, u64::MAX / 2);
        assert_eq!(mem.refresh(), PressureBand::Green);
        assert_eq!(mem.band(), PressureBand::Green);
    }

    #[test]
    fn bands_follow_the_permille_thresholds() {
        let mem = MemoryBudget::new(1000);
        assert_eq!(mem.band(), PressureBand::Green);
        mem.charge(MemConsumer::ScratchPools, 699);
        assert_eq!(mem.band(), PressureBand::Green);
        mem.charge(MemConsumer::ScratchPools, 1); // 700
        assert_eq!(mem.band(), PressureBand::Yellow);
        mem.charge(MemConsumer::ModelTables, 150); // 850
        assert_eq!(mem.band(), PressureBand::Red);
        mem.charge(MemConsumer::Phantom, 100); // 950
        assert_eq!(mem.band(), PressureBand::Critical);
        mem.release(MemConsumer::Phantom, 100);
        assert_eq!(mem.band(), PressureBand::Red);
        mem.release(MemConsumer::ModelTables, 150);
        assert_eq!(mem.band(), PressureBand::Yellow);
        mem.release(MemConsumer::ScratchPools, 700);
        assert_eq!(mem.band(), PressureBand::Green);
        // Each band was entered once on the way up, Yellow/Red/Green once
        // more on the way down.
        assert_eq!(mem.transitions(), [1, 2, 2, 1]);
    }

    #[test]
    fn release_saturates_at_zero() {
        let mem = MemoryBudget::new(100);
        mem.charge(MemConsumer::WireBuffers, 10);
        mem.release(MemConsumer::WireBuffers, 50);
        assert_eq!(mem.used_by(MemConsumer::WireBuffers), 0);
        assert_eq!(mem.used_bytes(), 0);
    }

    #[test]
    fn phantom_is_absolute_not_cumulative() {
        let mem = MemoryBudget::new(1000);
        mem.set_phantom(800);
        assert_eq!(mem.band(), PressureBand::Yellow);
        mem.set_phantom(800);
        assert_eq!(mem.used_bytes(), 800, "set, not add");
        mem.set_phantom(0);
        assert_eq!(mem.band(), PressureBand::Green);
    }

    #[test]
    fn shrinking_budget_walks_the_bands() {
        let mem = MemoryBudget::new(10_000);
        mem.charge(MemConsumer::RingQueues, 960);
        let mut walked = vec![mem.band()];
        for budget in [1300, 1100, 1000] {
            mem.set_budget_bytes(budget);
            walked.push(mem.band());
        }
        assert_eq!(
            walked,
            vec![
                PressureBand::Green,
                PressureBand::Yellow,
                PressureBand::Red,
                PressureBand::Critical,
            ]
        );
    }

    #[test]
    fn metrics_mirror_charges() {
        let registry = MetricsRegistry::new();
        let mem = MemoryBudget::new(1000).with_metrics(&registry);
        mem.charge(MemConsumer::DecoderBuffers, 750);
        let gauge = registry.gauge("affect_mem_used_bytes", "", &[("consumer", "decoder")]);
        assert_eq!(gauge.get(), 750);
        let total = registry.gauge("affect_mem_total_bytes", "", &[]);
        assert_eq!(total.get(), 750);
        let yellow = registry.counter(
            "affect_mem_band_transitions_total",
            "",
            &[("band", "yellow")],
        );
        assert_eq!(yellow.get(), 1);
    }
}
