//! The byte-stream side of the traffic loop: chunked Annex-B wire ingest
//! feeding a session's affect-adaptive decoder.
//!
//! The offline path hands the decoder a whole segment buffer at once. A
//! real session receives its video as a *wire*: encoded bytes arriving in
//! transport-sized chunks, possibly corrupted in flight, with NAL units
//! and even start codes split across chunk boundaries. [`WireSession`]
//! models that leg of the loop — it chops a segment into
//! [`WireConfig::chunk_bytes`]-sized chunks, offers each chunk to a caller
//! tap (the seam where `affect-fault`'s `WireCorruptor` or a metering
//! probe slots in), and streams the bytes through the session's
//! [`ModeSwitchDriver`] incrementally, so decode runs under whatever power
//! mode the affect controller has the driver in *right now*.
//!
//! Invariant inherited from `h264::DecodeStream`: for an intact wire, any
//! chunking (including one byte at a time) yields byte-identical frames
//! and identical Activity/selection counters to whole-buffer decode.

use h264::adaptive::ModeSwitchDriver;
use h264::decoder::DecodeOutput;
use h264::{CodecError, ScannerConfig};

/// How a session's video wire is framed.
#[derive(Debug, Clone, Copy)]
pub struct WireConfig {
    /// Bytes per wire chunk — the simulated transport MTU. Values below 1
    /// are treated as 1.
    pub chunk_bytes: usize,
    /// Stream-framer behaviour (strict vs. resync, pending-byte bound).
    pub scanner: ScannerConfig,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            // Ethernet-ish MTU: the default transport picture.
            chunk_bytes: 1500,
            scanner: ScannerConfig::default(),
        }
    }
}

/// Per-segment (and, summed, per-session) wire accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireReport {
    /// Chunks pushed down the wire.
    pub chunks: u64,
    /// Bytes pushed down the wire (after the tap, i.e. as decoded).
    pub wire_bytes: u64,
    /// NAL units framed out of the byte stream.
    pub units: u64,
    /// Scanner resyncs (lenient mode only; garbage skipped on the wire).
    pub resyncs: u64,
    /// High-water mark of bytes buffered awaiting a start code.
    pub max_pending: usize,
    /// Frames delivered to the session's display path.
    pub frames: u64,
    /// Frames concealed by the decoder's resilience path.
    pub concealed_frames: u64,
    /// Slice units damaged in flight and concealed.
    pub damaged_units: u64,
}

impl WireReport {
    /// Adds another report into this one (session aggregation).
    pub fn merge(&mut self, other: &WireReport) {
        self.chunks += other.chunks;
        self.wire_bytes += other.wire_bytes;
        self.units += other.units;
        self.resyncs += other.resyncs;
        self.max_pending = self.max_pending.max(other.max_pending);
        self.frames += other.frames;
        self.concealed_frames += other.concealed_frames;
        self.damaged_units += other.damaged_units;
    }
}

/// One session's wire endpoint: chunks segments, applies the caller's
/// wire tap, and streams the bytes into a [`ModeSwitchDriver`].
#[derive(Debug, Clone)]
pub struct WireSession {
    cfg: WireConfig,
    segments: u64,
    totals: WireReport,
}

impl WireSession {
    /// A new wire endpoint with the given framing.
    pub fn new(cfg: WireConfig) -> Self {
        Self {
            cfg,
            segments: 0,
            totals: WireReport::default(),
        }
    }

    /// The wire framing in effect.
    pub fn config(&self) -> &WireConfig {
        &self.cfg
    }

    /// Segments ingested so far.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// Wire accounting summed over every segment ingested so far.
    pub fn totals(&self) -> &WireReport {
        &self.totals
    }

    /// Streams one encoded segment through `driver` in wire-sized chunks.
    ///
    /// `tap` sees every chunk (`(chunk_index, bytes)`) before it reaches
    /// the decoder and may mutate it in place — this is where in-flight
    /// corruption or rate metering plugs in. Decode runs under the
    /// driver's *current* mode; flip the mode between segments (or let a
    /// [`VideoActuator`](crate::VideoActuator) do it) and the next
    /// segment decodes differently.
    pub fn ingest_segment(
        &mut self,
        driver: &ModeSwitchDriver,
        stream: &[u8],
        mut tap: impl FnMut(u64, &mut Vec<u8>),
    ) -> Result<(DecodeOutput, WireReport), CodecError> {
        let chunk_bytes = self.cfg.chunk_bytes.max(1);
        let mut decode = driver.begin_segment(self.cfg.scanner);
        let mut report = WireReport::default();
        for chunk in stream.chunks(chunk_bytes) {
            let mut buf = chunk.to_vec();
            tap(report.chunks, &mut buf);
            report.chunks += 1;
            report.wire_bytes += buf.len() as u64;
            decode.decode_chunk(&buf)?;
        }
        let (out, ingest) = driver.finish_segment_with_stats(decode)?;
        report.units = ingest.units;
        report.resyncs = ingest.resyncs;
        report.max_pending = ingest.max_pending;
        report.frames = out.frames.len() as u64;
        report.concealed_frames = out.resilience.concealed_frames;
        report.damaged_units = out.resilience.damaged_units;
        self.segments += 1;
        self.totals.merge(&report);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affect_core::policy::VideoPowerMode;

    fn segment() -> Vec<u8> {
        let (_, stream) = h264::adaptive::paper_reference(11).expect("reference clip");
        stream
    }

    #[test]
    fn wire_ingest_matches_whole_buffer_decode() {
        let stream = segment();
        let driver = ModeSwitchDriver::new(VideoPowerMode::Combined);
        let whole = driver.decode_segment(&stream).expect("whole decode");
        for chunk_bytes in [1usize, 7, 1500] {
            let mut wire = WireSession::new(WireConfig {
                chunk_bytes,
                ..WireConfig::default()
            });
            let (out, report) = wire
                .ingest_segment(&driver, &stream, |_, _| {})
                .expect("wire decode");
            assert_eq!(out.frames, whole.frames, "chunk_bytes={chunk_bytes}");
            assert_eq!(out.activity, whole.activity);
            assert_eq!(report.wire_bytes, stream.len() as u64);
            assert_eq!(report.chunks, stream.len().div_ceil(chunk_bytes) as u64);
            assert_eq!(report.frames, whole.frames.len() as u64);
        }
    }

    #[test]
    fn tap_sees_every_chunk_in_order_and_mutations_reach_the_decoder() {
        let stream = segment();
        let mut driver = ModeSwitchDriver::new(VideoPowerMode::Standard);
        driver.set_resilient(true);
        let mut wire = WireSession::new(WireConfig {
            chunk_bytes: 64,
            scanner: ScannerConfig {
                strict: false,
                ..ScannerConfig::default()
            },
        });
        let mut seen = Vec::new();
        let (out, report) = wire
            .ingest_segment(&driver, &stream, |i, buf| {
                seen.push(i);
                if i == 3 {
                    // Stomp a chunk mid-stream: resilient decode conceals.
                    buf.iter_mut().for_each(|b| *b = 0xAA);
                }
            })
            .expect("wire decode survives a stomped chunk");
        let expect: Vec<u64> = (0..stream.len().div_ceil(64) as u64).collect();
        assert_eq!(seen, expect, "tap runs once per chunk, in order");
        assert!(
            out.resilience.damaged_units > 0 || report.resyncs > 0,
            "the stomped chunk must register as damage or a wire resync"
        );
    }

    #[test]
    fn report_counts_the_flush_framed_final_unit() {
        let stream = segment();
        // Ground truth: scan the whole stream, counting the tail unit
        // that only the flush frames.
        let mut scanner = h264::AnnexBScanner::new(ScannerConfig::default());
        let mut expected = scanner.push_chunk(&stream).expect("scan").len() as u64;
        if scanner.flush().expect("flush").is_some() {
            expected += 1;
        }
        assert!(expected > 0);
        let driver = ModeSwitchDriver::new(VideoPowerMode::Standard);
        let mut wire = WireSession::new(WireConfig::default());
        let (_, report) = wire
            .ingest_segment(&driver, &stream, |_, _| {})
            .expect("wire decode");
        assert_eq!(
            report.units, expected,
            "segment accounting must include the unit framed at flush"
        );
    }

    #[test]
    fn session_totals_accumulate_across_segments() {
        let stream = segment();
        let driver = ModeSwitchDriver::new(VideoPowerMode::Standard);
        let mut wire = WireSession::new(WireConfig::default());
        for _ in 0..3 {
            wire.ingest_segment(&driver, &stream, |_, _| {})
                .expect("segment");
        }
        assert_eq!(wire.segments(), 3);
        assert_eq!(wire.totals().wire_bytes, 3 * stream.len() as u64);
        assert_eq!(wire.totals().chunks, 3 * stream.len().div_ceil(1500) as u64);
        assert!(wire.totals().frames > 0);
    }
}
