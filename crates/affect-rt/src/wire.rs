//! The byte-stream side of the traffic loop: chunked Annex-B wire ingest
//! feeding a session's affect-adaptive decoder.
//!
//! The offline path hands the decoder a whole segment buffer at once. A
//! real session receives its video as a *wire*: encoded bytes arriving in
//! transport-sized chunks, possibly corrupted in flight, with NAL units
//! and even start codes split across chunk boundaries. [`WireSession`]
//! models that leg of the loop — it chops a segment into
//! [`WireConfig::chunk_bytes`]-sized chunks, offers each chunk to a caller
//! tap (the seam where `affect-fault`'s `WireCorruptor` or a metering
//! probe slots in), and streams the bytes through the session's
//! [`ModeSwitchDriver`] incrementally, so decode runs under whatever power
//! mode the affect controller has the driver in *right now*.
//!
//! Invariant inherited from `h264::DecodeStream`: for an intact wire, any
//! chunking (including one byte at a time) yields byte-identical frames
//! and identical Activity/selection counters to whole-buffer decode.
//!
//! Real transports also *pace*: chunks arrive on a cadence, not as fast
//! as the CPU can copy them. [`WireSession::ingest_segment_paced`] models
//! that by scheduling chunk `k` at `start + k ×`
//! [`WireConfig::pace_ns`] on a [`Clock`] — under the runtime's
//! `VirtualClock` the sleeps become deterministic jumps, so a paced
//! playback test is exactly reproducible.

use std::sync::Arc;

use h264::adaptive::ModeSwitchDriver;
use h264::decoder::DecodeOutput;
use h264::{CodecError, ScannerConfig};

use crate::clock::Clock;
use crate::mem::{MemConsumer, MemoryBudget};

/// How a session's video wire is framed.
#[derive(Debug, Clone, Copy)]
pub struct WireConfig {
    /// Bytes per wire chunk — the simulated transport MTU. Values below 1
    /// are treated as 1.
    pub chunk_bytes: usize,
    /// Inter-chunk interval for paced playback, nanoseconds. Chunk `k` of
    /// a segment is released at `segment start + k * pace_ns` on the
    /// session clock; 0 (the default) streams as fast as possible. Only
    /// [`WireSession::ingest_segment_paced`] paces — the unpaced entry
    /// point ignores this.
    pub pace_ns: u64,
    /// Stream-framer behaviour (strict vs. resync, pending-byte bound).
    pub scanner: ScannerConfig,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            // Ethernet-ish MTU: the default transport picture.
            chunk_bytes: 1500,
            pace_ns: 0,
            scanner: ScannerConfig::default(),
        }
    }
}

/// Per-segment (and, summed, per-session) wire accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireReport {
    /// Chunks pushed down the wire.
    pub chunks: u64,
    /// Bytes pushed down the wire (after the tap, i.e. as decoded).
    pub wire_bytes: u64,
    /// NAL units framed out of the byte stream.
    pub units: u64,
    /// Scanner resyncs (lenient mode only; garbage skipped on the wire).
    pub resyncs: u64,
    /// High-water mark of bytes buffered awaiting a start code.
    pub max_pending: usize,
    /// Frames delivered to the session's display path.
    pub frames: u64,
    /// Frames concealed by the decoder's resilience path.
    pub concealed_frames: u64,
    /// Slice units damaged in flight and concealed.
    pub damaged_units: u64,
}

impl WireReport {
    /// Adds another report into this one (session aggregation).
    pub fn merge(&mut self, other: &WireReport) {
        self.chunks += other.chunks;
        self.wire_bytes += other.wire_bytes;
        self.units += other.units;
        self.resyncs += other.resyncs;
        self.max_pending = self.max_pending.max(other.max_pending);
        self.frames += other.frames;
        self.concealed_frames += other.concealed_frames;
        self.damaged_units += other.damaged_units;
    }
}

/// One session's wire endpoint: chunks segments, applies the caller's
/// wire tap, and streams the bytes into a [`ModeSwitchDriver`].
#[derive(Debug, Clone)]
pub struct WireSession {
    cfg: WireConfig,
    segments: u64,
    totals: WireReport,
    mem: Option<Arc<MemoryBudget>>,
}

impl WireSession {
    /// A new wire endpoint with the given framing.
    pub fn new(cfg: WireConfig) -> Self {
        Self {
            cfg,
            segments: 0,
            totals: WireReport::default(),
            mem: None,
        }
    }

    /// Accounts this wire's buffers against a [`MemoryBudget`]: the
    /// segment buffer rides [`MemConsumer::WireBuffers`] for the duration
    /// of the ingest, and the stream framer's pending bytes track
    /// [`MemConsumer::DecoderBuffers`] chunk by chunk. Everything is
    /// released when the segment completes (or fails).
    pub fn with_memory_budget(mut self, mem: Arc<MemoryBudget>) -> Self {
        self.mem = Some(mem);
        self
    }

    /// The wire framing in effect.
    pub fn config(&self) -> &WireConfig {
        &self.cfg
    }

    /// Segments ingested so far.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// Wire accounting summed over every segment ingested so far.
    pub fn totals(&self) -> &WireReport {
        &self.totals
    }

    /// Streams one encoded segment through `driver` in wire-sized chunks.
    ///
    /// `tap` sees every chunk (`(chunk_index, bytes)`) before it reaches
    /// the decoder and may mutate it in place — this is where in-flight
    /// corruption or rate metering plugs in. Decode runs under the
    /// driver's *current* mode; flip the mode between segments (or let a
    /// [`VideoActuator`](crate::VideoActuator) do it) and the next
    /// segment decodes differently.
    pub fn ingest_segment(
        &mut self,
        driver: &ModeSwitchDriver,
        stream: &[u8],
        tap: impl FnMut(u64, &mut Vec<u8>),
    ) -> Result<(DecodeOutput, WireReport), CodecError> {
        self.ingest_inner(driver, stream, None, tap)
    }

    /// Like [`WireSession::ingest_segment`], but rate-paced: chunk `k` is
    /// released at `segment start + k *` [`WireConfig::pace_ns`] on
    /// `clock`, via [`Clock::sleep_until`]. Under a
    /// [`VirtualClock`](crate::VirtualClock) the sleeps jump virtual time
    /// instead of blocking, so a paced playback is deterministic and runs
    /// at test speed; under the system clock it plays back in real time.
    /// With `pace_ns == 0` this is identical to the unpaced entry point.
    pub fn ingest_segment_paced(
        &mut self,
        driver: &ModeSwitchDriver,
        stream: &[u8],
        clock: &dyn Clock,
        tap: impl FnMut(u64, &mut Vec<u8>),
    ) -> Result<(DecodeOutput, WireReport), CodecError> {
        self.ingest_inner(driver, stream, Some(clock), tap)
    }

    fn ingest_inner(
        &mut self,
        driver: &ModeSwitchDriver,
        stream: &[u8],
        clock: Option<&dyn Clock>,
        mut tap: impl FnMut(u64, &mut Vec<u8>),
    ) -> Result<(DecodeOutput, WireReport), CodecError> {
        let chunk_bytes = self.cfg.chunk_bytes.max(1);
        let pace_ns = self.cfg.pace_ns;
        let origin = clock.map(|c| c.now_nanos()).unwrap_or(0);
        if let Some(mem) = &self.mem {
            mem.charge(MemConsumer::WireBuffers, stream.len() as u64);
        }
        let mut decode = driver.begin_segment(self.cfg.scanner);
        let mut report = WireReport::default();
        let mut pending_charged = 0u64;
        let mut failure = None;
        for chunk in stream.chunks(chunk_bytes) {
            if let Some(clock) = clock {
                if pace_ns > 0 {
                    clock.sleep_until(origin + report.chunks * pace_ns);
                }
            }
            let mut buf = chunk.to_vec();
            tap(report.chunks, &mut buf);
            report.chunks += 1;
            report.wire_bytes += buf.len() as u64;
            if let Err(e) = decode.decode_chunk(&buf) {
                failure = Some(e);
                break;
            }
            if let Some(mem) = &self.mem {
                // Track the framer's pending high-water live: a unit
                // straddling many chunks holds real memory *now*, which
                // is exactly when the pressure governor should see it.
                let pending = decode.pending_bytes() as u64;
                if pending >= pending_charged {
                    mem.charge(MemConsumer::DecoderBuffers, pending - pending_charged);
                } else {
                    mem.release(MemConsumer::DecoderBuffers, pending_charged - pending);
                }
                pending_charged = pending;
            }
        }
        let outcome = match failure {
            Some(e) => Err(e),
            None => driver.finish_segment_with_stats(decode),
        };
        if let Some(mem) = &self.mem {
            mem.release(MemConsumer::DecoderBuffers, pending_charged);
            mem.release(MemConsumer::WireBuffers, stream.len() as u64);
        }
        let (out, ingest) = outcome?;
        report.units = ingest.units;
        report.resyncs = ingest.resyncs;
        report.max_pending = ingest.max_pending;
        report.frames = out.frames.len() as u64;
        report.concealed_frames = out.resilience.concealed_frames;
        report.damaged_units = out.resilience.damaged_units;
        self.segments += 1;
        self.totals.merge(&report);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affect_core::policy::VideoPowerMode;

    fn segment() -> Vec<u8> {
        let (_, stream) = h264::adaptive::paper_reference(11).expect("reference clip");
        stream
    }

    #[test]
    fn wire_ingest_matches_whole_buffer_decode() {
        let stream = segment();
        let driver = ModeSwitchDriver::new(VideoPowerMode::Combined);
        let whole = driver.decode_segment(&stream).expect("whole decode");
        for chunk_bytes in [1usize, 7, 1500] {
            let mut wire = WireSession::new(WireConfig {
                chunk_bytes,
                ..WireConfig::default()
            });
            let (out, report) = wire
                .ingest_segment(&driver, &stream, |_, _| {})
                .expect("wire decode");
            assert_eq!(out.frames, whole.frames, "chunk_bytes={chunk_bytes}");
            assert_eq!(out.activity, whole.activity);
            assert_eq!(report.wire_bytes, stream.len() as u64);
            assert_eq!(report.chunks, stream.len().div_ceil(chunk_bytes) as u64);
            assert_eq!(report.frames, whole.frames.len() as u64);
        }
    }

    #[test]
    fn tap_sees_every_chunk_in_order_and_mutations_reach_the_decoder() {
        let stream = segment();
        let mut driver = ModeSwitchDriver::new(VideoPowerMode::Standard);
        driver.set_resilient(true);
        let mut wire = WireSession::new(WireConfig {
            chunk_bytes: 64,
            scanner: ScannerConfig {
                strict: false,
                ..ScannerConfig::default()
            },
            ..WireConfig::default()
        });
        let mut seen = Vec::new();
        let (out, report) = wire
            .ingest_segment(&driver, &stream, |i, buf| {
                seen.push(i);
                if i == 3 {
                    // Stomp a chunk mid-stream: resilient decode conceals.
                    buf.iter_mut().for_each(|b| *b = 0xAA);
                }
            })
            .expect("wire decode survives a stomped chunk");
        let expect: Vec<u64> = (0..stream.len().div_ceil(64) as u64).collect();
        assert_eq!(seen, expect, "tap runs once per chunk, in order");
        assert!(
            out.resilience.damaged_units > 0 || report.resyncs > 0,
            "the stomped chunk must register as damage or a wire resync"
        );
    }

    #[test]
    fn report_counts_the_flush_framed_final_unit() {
        let stream = segment();
        // Ground truth: scan the whole stream, counting the tail unit
        // that only the flush frames.
        let mut scanner = h264::AnnexBScanner::new(ScannerConfig::default());
        let mut expected = scanner.push_chunk(&stream).expect("scan").len() as u64;
        if scanner.flush().expect("flush").is_some() {
            expected += 1;
        }
        assert!(expected > 0);
        let driver = ModeSwitchDriver::new(VideoPowerMode::Standard);
        let mut wire = WireSession::new(WireConfig::default());
        let (_, report) = wire
            .ingest_segment(&driver, &stream, |_, _| {})
            .expect("wire decode");
        assert_eq!(
            report.units, expected,
            "segment accounting must include the unit framed at flush"
        );
    }

    #[test]
    fn paced_playback_is_deterministic_on_the_virtual_clock() {
        use crate::VirtualClock;
        let stream = segment();
        let driver = ModeSwitchDriver::new(VideoPowerMode::Combined);
        let whole = driver.decode_segment(&stream).expect("whole decode");
        let pace_ns = 33_000_000; // ~30 chunks/second
        let cfg = WireConfig {
            chunk_bytes: 1500,
            pace_ns,
            ..WireConfig::default()
        };
        let run = || {
            let clock = VirtualClock::new();
            clock.set(5_000); // a non-zero origin must not matter
            let mut wire = WireSession::new(cfg);
            let mut stamps = Vec::new();
            let (out, report) = wire
                .ingest_segment_paced(&driver, &stream, &clock, |_, _| {
                    stamps.push(clock.now_nanos());
                })
                .expect("paced decode");
            (out, report, stamps, clock.now_nanos())
        };
        let (out, report, stamps, end) = run();
        // Pacing changes when chunks arrive, never what they decode to.
        assert_eq!(out.frames, whole.frames);
        // Chunk k is released exactly at origin + k * pace.
        let expect: Vec<u64> = (0..report.chunks).map(|k| 5_000 + k * pace_ns).collect();
        assert_eq!(stamps, expect);
        assert_eq!(end, 5_000 + (report.chunks - 1) * pace_ns);
        // Byte-stable replay: a second run reproduces every timestamp.
        let (_, _, stamps2, end2) = run();
        assert_eq!(stamps, stamps2);
        assert_eq!(end, end2);
    }

    #[test]
    fn zero_pace_matches_the_unpaced_path() {
        use crate::VirtualClock;
        let stream = segment();
        let driver = ModeSwitchDriver::new(VideoPowerMode::Standard);
        let clock = VirtualClock::new();
        let mut wire = WireSession::new(WireConfig::default());
        let (paced, _) = wire
            .ingest_segment_paced(&driver, &stream, &clock, |_, _| {})
            .expect("paced");
        assert_eq!(clock.now_nanos(), 0, "no pacing, no sleeps");
        let mut unpaced = WireSession::new(WireConfig::default());
        let (plain, _) = unpaced
            .ingest_segment(&driver, &stream, |_, _| {})
            .expect("unpaced");
        assert_eq!(paced.frames, plain.frames);
    }

    #[test]
    fn wire_buffers_are_charged_during_ingest_and_released_after() {
        use crate::mem::{MemConsumer, MemoryBudget};
        use std::sync::Arc;
        let stream = segment();
        let driver = ModeSwitchDriver::new(VideoPowerMode::Standard);
        let mem = Arc::new(MemoryBudget::new(0));
        let mut wire = WireSession::new(WireConfig {
            chunk_bytes: 64,
            ..WireConfig::default()
        })
        .with_memory_budget(Arc::clone(&mem));
        let seen = std::cell::Cell::new(0u64);
        let pending_seen = std::cell::Cell::new(0u64);
        wire.ingest_segment(&driver, &stream, |_, _| {
            seen.set(seen.get().max(mem.used_by(MemConsumer::WireBuffers)));
            pending_seen.set(
                pending_seen
                    .get()
                    .max(mem.used_by(MemConsumer::DecoderBuffers)),
            );
        })
        .expect("wire decode");
        // Mid-ingest the whole segment buffer is charged …
        assert_eq!(seen.get(), stream.len() as u64);
        // … and the framer's pending bytes were visible to the governor.
        assert!(pending_seen.get() > 0, "units straddle 64-byte chunks");
        // Everything is released once the segment completes.
        assert_eq!(mem.used_by(MemConsumer::WireBuffers), 0);
        assert_eq!(mem.used_by(MemConsumer::DecoderBuffers), 0);
        assert_eq!(mem.used_bytes(), 0);
    }

    #[test]
    fn session_totals_accumulate_across_segments() {
        let stream = segment();
        let driver = ModeSwitchDriver::new(VideoPowerMode::Standard);
        let mut wire = WireSession::new(WireConfig::default());
        for _ in 0..3 {
            wire.ingest_segment(&driver, &stream, |_, _| {})
                .expect("segment");
        }
        assert_eq!(wire.segments(), 3);
        assert_eq!(wire.totals().wire_bytes, 3 * stream.len() as u64);
        assert_eq!(wire.totals().chunks, 3 * stream.len().div_ceil(1500) as u64);
        assert!(wire.totals().frames > 0);
    }
}
