//! A bounded MPMC ring with explicit overflow policy.
//!
//! `std::sync::mpsc::sync_channel` only offers block-on-full semantics;
//! a streaming pipeline also needs load-shedding queues (drop the oldest
//! window and keep the freshest, or refuse the newcomer). This ring is a
//! `Mutex<VecDeque>` + two `Condvar`s — deliberately simple, std-only, and
//! honest about what it drops: every shed message is *returned to the
//! producer* so its session's accounting can record the loss. Nothing
//! vanishes silently.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use affect_obs::{Counter, Gauge};

/// What a full ring does with an incoming message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the producer until a consumer makes room (lossless
    /// backpressure; propagates stall upstream).
    Block,
    /// Evict the oldest queued message to admit the new one (bounded
    /// staleness; the freshest data always gets through).
    DropOldest,
    /// Refuse the new message and keep the queue as-is (bounded effort;
    /// in-flight work is never wasted).
    DropNewest,
}

/// Outcome of a [`Ring::push`].
#[derive(Debug, PartialEq, Eq)]
pub enum PushOutcome<T> {
    /// The message was queued (after blocking, under [`OverflowPolicy::Block`]).
    Stored,
    /// The message was queued; the returned oldest message was evicted to
    /// make room ([`OverflowPolicy::DropOldest`]).
    Evicted(T),
    /// The ring was full and the message was refused
    /// ([`OverflowPolicy::DropNewest`]).
    Rejected(T),
    /// The ring is closed; the message was refused.
    Closed(T),
}

/// Counters a ring keeps about itself, snapshot via [`Ring::snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Messages accepted into the queue.
    pub pushed: u64,
    /// Messages handed to consumers.
    pub popped: u64,
    /// Messages shed (evicted or rejected) by overflow policy.
    pub shed: u64,
    /// Deepest the queue has ever been.
    pub depth_high_water: usize,
}

/// Live observability handles for one ring, typically registered as
/// `affect_rt_queue_*` series labelled by stage (see
/// `docs/OBSERVABILITY.md`). All fields are plain atomics, so updating
/// them from the push/pop paths allocates nothing.
#[derive(Clone)]
pub struct RingMetrics {
    /// Incremented once per message accepted into the queue.
    pub pushed: Arc<Counter>,
    /// Incremented once per message handed to a consumer.
    pub popped: Arc<Counter>,
    /// Incremented once per message shed (evicted or rejected) by policy.
    pub shed: Arc<Counter>,
    /// Set to the queue depth after every push/pop.
    pub depth: Arc<Gauge>,
}

struct State<T> {
    queue: VecDeque<T>,
    stats: RingStats,
    closed: bool,
}

/// Bounded multi-producer multi-consumer queue with a per-ring
/// [`OverflowPolicy`].
pub struct Ring<T> {
    state: Mutex<State<T>>,
    /// Signalled when the queue gains a message or closes.
    readable: Condvar,
    /// Signalled when the queue loses a message or closes (Block producers).
    writable: Condvar,
    capacity: usize,
    policy: OverflowPolicy,
    metrics: Option<RingMetrics>,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `capacity` messages (min 1).
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        Self {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity.max(1)),
                stats: RingStats::default(),
                closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity: capacity.max(1),
            policy,
            metrics: None,
        }
    }

    /// Creates a ring that mirrors its counters into `metrics` (in
    /// addition to the built-in [`RingStats`]). The mirroring is plain
    /// atomic stores — no allocation, no extra locking.
    pub fn with_metrics(capacity: usize, policy: OverflowPolicy, metrics: RingMetrics) -> Self {
        let mut ring = Self::new(capacity, policy);
        ring.metrics = Some(metrics);
        ring
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Offers a message, applying the overflow policy when full.
    ///
    /// Under [`OverflowPolicy::Block`] this parks the caller until space
    /// frees up (or the ring closes); the other policies never block.
    pub fn push(&self, msg: T) -> PushOutcome<T> {
        let mut state = self.state.lock().expect("ring lock poisoned");
        if state.closed {
            return PushOutcome::Closed(msg);
        }
        let mut outcome = PushOutcome::Stored;
        if state.queue.len() >= self.capacity {
            match self.policy {
                OverflowPolicy::Block => {
                    while state.queue.len() >= self.capacity && !state.closed {
                        state = self.writable.wait(state).expect("ring lock poisoned");
                    }
                    if state.closed {
                        return PushOutcome::Closed(msg);
                    }
                }
                OverflowPolicy::DropOldest => {
                    let evicted = state.queue.pop_front().expect("full queue has a front");
                    state.stats.shed += 1;
                    if let Some(m) = &self.metrics {
                        m.shed.inc();
                    }
                    outcome = PushOutcome::Evicted(evicted);
                }
                OverflowPolicy::DropNewest => {
                    state.stats.shed += 1;
                    if let Some(m) = &self.metrics {
                        m.shed.inc();
                    }
                    return PushOutcome::Rejected(msg);
                }
            }
        }
        state.queue.push_back(msg);
        state.stats.pushed += 1;
        state.stats.depth_high_water = state.stats.depth_high_water.max(state.queue.len());
        if let Some(m) = &self.metrics {
            m.pushed.inc();
            m.depth.set(state.queue.len() as i64);
        }
        drop(state);
        self.readable.notify_one();
        outcome
    }

    /// Takes the oldest message, blocking while the ring is empty and open.
    /// Returns `None` once the ring is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("ring lock poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                state.stats.popped += 1;
                if let Some(m) = &self.metrics {
                    m.popped.inc();
                    m.depth.set(state.queue.len() as i64);
                }
                drop(state);
                self.writable.notify_one();
                return Some(msg);
            }
            if state.closed {
                return None;
            }
            state = self.readable.wait(state).expect("ring lock poisoned");
        }
    }

    /// Takes the oldest message without blocking. Returns `None` when the
    /// queue is currently empty (whether or not the ring is closed) — the
    /// consumer's opportunistic drain for batching windows.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("ring lock poisoned");
        let msg = state.queue.pop_front()?;
        state.stats.popped += 1;
        if let Some(m) = &self.metrics {
            m.popped.inc();
            m.depth.set(state.queue.len() as i64);
        }
        drop(state);
        self.writable.notify_one();
        Some(msg)
    }

    /// Closes the ring: producers are refused from now on, consumers drain
    /// what is queued and then see `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("ring lock poisoned");
        state.closed = true;
        drop(state);
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("ring lock poisoned").queue.len()
    }

    /// Copies out the ring's counters.
    pub fn snapshot(&self) -> RingStats {
        self.state.lock().expect("ring lock poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_preserved() {
        let ring = Ring::new(4, OverflowPolicy::Block);
        for i in 0..4 {
            assert_eq!(ring.push(i), PushOutcome::Stored);
        }
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
    }

    #[test]
    fn drop_oldest_returns_evicted_and_keeps_latest() {
        let ring = Ring::new(2, OverflowPolicy::DropOldest);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.push(3), PushOutcome::Evicted(1));
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
        assert_eq!(ring.snapshot().shed, 1);
    }

    #[test]
    fn drop_newest_rejects_and_keeps_queue() {
        let ring = Ring::new(2, OverflowPolicy::DropNewest);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.push(3), PushOutcome::Rejected(3));
        assert_eq!(ring.pop(), Some(1));
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.snapshot().shed, 1);
    }

    #[test]
    fn try_pop_never_blocks() {
        let ring = Ring::new(4, OverflowPolicy::Block);
        assert_eq!(ring.try_pop(), None);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.try_pop(), Some(1));
        assert_eq!(ring.try_pop(), Some(2));
        assert_eq!(ring.try_pop(), None);
        assert_eq!(ring.snapshot().popped, 2);
    }

    #[test]
    fn close_drains_then_none() {
        let ring = Ring::new(4, OverflowPolicy::Block);
        ring.push(7);
        ring.close();
        assert!(matches!(ring.push(8), PushOutcome::Closed(8)));
        assert_eq!(ring.pop(), Some(7));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn block_policy_parks_producer_until_space() {
        let ring = Arc::new(Ring::new(1, OverflowPolicy::Block));
        ring.push(1);
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(2))
        };
        // Give the producer a chance to park, then free a slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(ring.pop(), Some(1));
        assert!(matches!(producer.join().unwrap(), PushOutcome::Stored));
        assert_eq!(ring.pop(), Some(2));
    }

    #[test]
    fn close_unblocks_parked_producer() {
        let ring = Arc::new(Ring::new(1, OverflowPolicy::Block));
        ring.push(1);
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(2))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        ring.close();
        assert!(matches!(producer.join().unwrap(), PushOutcome::Closed(2)));
    }

    #[test]
    fn attached_metrics_mirror_ring_stats() {
        let metrics = RingMetrics {
            pushed: Arc::new(Counter::new()),
            popped: Arc::new(Counter::new()),
            shed: Arc::new(Counter::new()),
            depth: Arc::new(Gauge::new()),
        };
        let ring = Ring::with_metrics(2, OverflowPolicy::DropOldest, metrics.clone());
        ring.push(1);
        ring.push(2);
        ring.push(3); // evicts 1
        assert_eq!(metrics.pushed.get(), 3);
        assert_eq!(metrics.shed.get(), 1);
        assert_eq!(metrics.depth.get(), 2);
        ring.pop();
        assert_eq!(metrics.popped.get(), 1);
        assert_eq!(metrics.depth.get(), 1);
        let stats = ring.snapshot();
        assert_eq!(stats.pushed, metrics.pushed.get());
        assert_eq!(stats.shed, metrics.shed.get());
    }

    #[test]
    fn high_water_tracks_deepest_point() {
        let ring = Ring::new(8, OverflowPolicy::Block);
        ring.push(1);
        ring.push(2);
        ring.push(3);
        ring.pop();
        ring.push(4);
        assert_eq!(ring.snapshot().depth_high_water, 3);
    }
}
