//! Fault-injection seam and supervision vocabulary.
//!
//! The runtime itself contains *no* fault logic — it only exposes a hook
//! consulted once per window per stage. A [`FaultHook`] implementation
//! (the `affect-fault` crate ships a deterministic, seeded one) decides
//! whether that window proceeds untouched, is delayed, is dropped, or
//! panics the worker mid-flight. The supervision machinery in
//! [`crate::runtime`] then has to earn its keep: caught panics restart the
//! worker with backoff, repeated classify failures trip a circuit breaker,
//! and the accounting invariant `produced == processed + dropped` must
//! survive all of it.

use std::any::Any;

/// Pipeline stage identifiers, as seen by a [`FaultHook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The submit path (producer thread) before the ingest queue.
    Ingest,
    /// Feature-extraction workers.
    Feature,
    /// Classifier workers.
    Classify,
    /// The control (policy) worker.
    Control,
    /// The actuate worker.
    Actuate,
}

impl Stage {
    /// Stable lowercase name, used as a metric label.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Feature => "feature",
            Stage::Classify => "classify",
            Stage::Control => "control",
            Stage::Actuate => "actuate",
        }
    }

    /// All stages, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Ingest,
        Stage::Feature,
        Stage::Classify,
        Stage::Control,
        Stage::Actuate,
    ];
}

/// What a [`FaultHook`] tells a stage to do with one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Process normally.
    None,
    /// Account the window as dropped without processing it.
    DropWindow,
    /// Sleep this many wall-clock nanoseconds, then process normally
    /// (latency/jitter injection).
    DelayNs(u64),
    /// Panic the worker while holding the window. Supported by the
    /// supervised feature and classify stages; the single-threaded ingest,
    /// control and actuate stages treat it as [`FaultAction::DropWindow`]
    /// (panicking the producer or an unsupervised worker would take the
    /// whole pipeline down, which is not an interesting experiment).
    Panic,
}

/// Decides the fate of each window at each stage.
///
/// Called from every worker thread, so implementations must be cheap and
/// must not block. Determinism is the implementor's job: the `affect-fault`
/// crate derives each decision from a pure hash of `(seed, stage, session,
/// seq)`, which makes a chaos run reproducible regardless of thread
/// interleaving.
pub trait FaultHook: Send + Sync {
    /// Consulted once per window per stage, before the stage does any work.
    fn inject(&self, stage: Stage, session: usize, seq: u64) -> FaultAction;
}

/// Panic payload used for injected worker panics, so supervision (and the
/// optional quiet hook) can tell injected chaos from organic bugs.
#[derive(Debug)]
pub struct InjectedPanic;

/// Installs a global panic hook that stays silent for [`InjectedPanic`]
/// payloads and forwards everything else to the previous hook. Idempotent;
/// chaos tests call it so ten thousand injected panics don't bury real
/// diagnostics in backtrace spam.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// `true` when a caught panic payload is an [`InjectedPanic`].
pub fn is_injected(payload: &(dyn Any + Send)) -> bool {
    payload.downcast_ref::<InjectedPanic>().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(
            names,
            ["ingest", "feature", "classify", "control", "actuate"]
        );
    }

    #[test]
    fn injected_panic_payload_is_recognizable() {
        silence_injected_panics();
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(InjectedPanic))
            .expect_err("panicked");
        assert!(is_injected(caught.as_ref()));
        let organic = std::panic::catch_unwind(|| panic!("organic failure")).expect_err("panicked");
        assert!(!is_injected(organic.as_ref()));
    }

    #[test]
    fn hook_objects_are_usable_through_dyn() {
        struct AlwaysDrop;
        impl FaultHook for AlwaysDrop {
            fn inject(&self, _: Stage, _: usize, _: u64) -> FaultAction {
                FaultAction::DropWindow
            }
        }
        let hook: std::sync::Arc<dyn FaultHook> = std::sync::Arc::new(AlwaysDrop);
        assert_eq!(hook.inject(Stage::Feature, 0, 0), FaultAction::DropWindow);
    }
}
