//! Actuation endpoints: where control decisions leave the runtime.
//!
//! Each session owns one [`Actuator`]; the actuate stage calls it from a
//! dedicated thread, so implementations need `Send` but no internal
//! locking. Adapters for the two managed subsystems of the paper are
//! provided: [`VideoActuator`] retargets the H.264 decoder's power mode
//! and [`AppActuator`] re-ranks the app manager's background list.

use affect_core::controller::ControlEvent;
use affect_core::emotion::Emotion;
use affect_core::policy::VideoPowerMode;
use h264::adaptive::ModeSwitchDriver;
use h264::decoder::DecodeOutput;
use h264::CodecError;
use mobile_sim::affect_table::EmotionReranker;

use crate::wire::{WireReport, WireSession};

/// A session's sink for control decisions.
pub trait Actuator: Send {
    /// Applies one control event. `now_nanos` is the runtime clock at
    /// actuation time, for timestamped audit logs.
    fn actuate(&mut self, event: ControlEvent, now_nanos: u64);

    /// Called once per window that reaches the actuate stage, *before* its
    /// events (if any) are applied and before the window's end-to-end
    /// latency is measured. The default does nothing; tests use this hook
    /// to gate the pipeline and make latency deterministic.
    fn on_window(&mut self, seq: u64) {
        let _ = seq;
    }
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullActuator;

impl Actuator for NullActuator {
    fn actuate(&mut self, _event: ControlEvent, _now_nanos: u64) {}
}

/// Records every event with its actuation timestamp; for tests and demos.
#[derive(Debug, Default)]
pub struct CollectActuator {
    /// `(now_nanos, event)` in actuation order.
    pub events: Vec<(u64, ControlEvent)>,
    /// Number of windows that reached the actuate stage.
    pub windows: u64,
}

impl Actuator for CollectActuator {
    fn actuate(&mut self, event: ControlEvent, now_nanos: u64) {
        self.events.push((now_nanos, event));
    }

    fn on_window(&mut self, _seq: u64) {
        self.windows += 1;
    }
}

/// Drives the affect-adaptive H.264 decoder: [`ControlEvent::VideoMode`]
/// retargets the [`ModeSwitchDriver`]; other events are ignored.
#[derive(Debug)]
pub struct VideoActuator {
    driver: ModeSwitchDriver,
    /// `(now_nanos, mode)` for every *effective* switch, in order.
    switch_log: Vec<(u64, VideoPowerMode)>,
}

impl VideoActuator {
    /// Wraps a mode-switch driver.
    pub fn new(driver: ModeSwitchDriver) -> Self {
        Self {
            driver,
            switch_log: Vec::new(),
        }
    }

    /// The wrapped driver (current mode, switch count, segment decoding).
    pub fn driver(&self) -> &ModeSwitchDriver {
        &self.driver
    }

    /// Mutable access to the wrapped driver, for configuration (kernels,
    /// resilience, metrics) before the session starts.
    pub fn driver_mut(&mut self) -> &mut ModeSwitchDriver {
        &mut self.driver
    }

    /// Timestamped effective mode switches.
    pub fn switch_log(&self) -> &[(u64, VideoPowerMode)] {
        &self.switch_log
    }

    /// Streams one encoded segment through this actuator's driver over
    /// `wire`, under whatever power mode the affect loop has selected.
    /// See [`WireSession::ingest_segment`].
    pub fn ingest_segment(
        &self,
        wire: &mut WireSession,
        stream: &[u8],
        tap: impl FnMut(u64, &mut Vec<u8>),
    ) -> Result<(DecodeOutput, WireReport), CodecError> {
        wire.ingest_segment(&self.driver, stream, tap)
    }
}

impl Actuator for VideoActuator {
    fn actuate(&mut self, event: ControlEvent, now_nanos: u64) {
        if let ControlEvent::VideoMode(mode) = event {
            if self.driver.set_mode(mode) {
                self.switch_log.push((now_nanos, mode));
            }
        }
    }
}

/// Drives the emotion-aware app manager: [`ControlEvent::EmotionChanged`]
/// re-conditions the [`EmotionReranker`]; other events are ignored.
#[derive(Debug)]
pub struct AppActuator {
    reranker: EmotionReranker,
    /// `(now_nanos, emotion)` for every *effective* re-rank, in order.
    rerank_log: Vec<(u64, Emotion)>,
}

impl AppActuator {
    /// Wraps an emotion reranker.
    pub fn new(reranker: EmotionReranker) -> Self {
        Self {
            reranker,
            rerank_log: Vec::new(),
        }
    }

    /// The wrapped reranker (current emotion, retention ordering).
    pub fn reranker(&self) -> &EmotionReranker {
        &self.reranker
    }

    /// Timestamped effective re-ranks.
    pub fn rerank_log(&self) -> &[(u64, Emotion)] {
        &self.rerank_log
    }
}

impl Actuator for AppActuator {
    fn actuate(&mut self, event: ControlEvent, now_nanos: u64) {
        if let ControlEvent::EmotionChanged(emotion) = event {
            if self.reranker.observe(emotion) {
                self.rerank_log.push((now_nanos, emotion));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobile_sim::affect_table::AppAffectTable;
    use mobile_sim::subjects::SubjectProfile;

    #[test]
    fn collect_actuator_records_in_order() {
        let mut a = CollectActuator::default();
        a.on_window(0);
        a.actuate(ControlEvent::EmotionChanged(Emotion::Happy), 10);
        a.on_window(1);
        a.actuate(ControlEvent::VideoMode(VideoPowerMode::Combined), 20);
        assert_eq!(a.windows, 2);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.events[0].0, 10);
    }

    #[test]
    fn video_actuator_logs_only_effective_switches() {
        let mut a = VideoActuator::new(ModeSwitchDriver::new(VideoPowerMode::Standard));
        a.actuate(ControlEvent::VideoMode(VideoPowerMode::Standard), 1);
        a.actuate(ControlEvent::VideoMode(VideoPowerMode::Combined), 2);
        a.actuate(ControlEvent::EmotionChanged(Emotion::Sad), 3);
        a.actuate(ControlEvent::VideoMode(VideoPowerMode::Combined), 4);
        assert_eq!(a.switch_log(), &[(2, VideoPowerMode::Combined)]);
        assert_eq!(a.driver().mode(), VideoPowerMode::Combined);
    }

    #[test]
    fn app_actuator_logs_only_effective_reranks() {
        let table = AppAffectTable::from_subject(&SubjectProfile::subject3(), 0.0);
        let mut a = AppActuator::new(EmotionReranker::new(table, Emotion::Neutral));
        a.actuate(ControlEvent::EmotionChanged(Emotion::Neutral), 1);
        a.actuate(ControlEvent::EmotionChanged(Emotion::Happy), 2);
        a.actuate(ControlEvent::VideoMode(VideoPowerMode::Standard), 3);
        assert_eq!(a.rerank_log(), &[(2, Emotion::Happy)]);
        assert_eq!(a.reranker().emotion(), Emotion::Happy);
    }
}
