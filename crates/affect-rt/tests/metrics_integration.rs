//! Integration test for the runtime's observability: a deterministic
//! `VirtualClock` run must leave the attached registry consistent with
//! the runtime's own report, and the Prometheus rendering must parse.

use std::sync::Arc;

use affect_core::emotion::Emotion;
use affect_core::pipeline::FeatureConfig;
use affect_obs::{render_prometheus, MetricsRegistry};
use affect_rt::{CollectActuator, RuntimeBuilder, RuntimeConfig, VirtualClock};
use biosignal::VoiceWindowStream;

fn fast_config() -> RuntimeConfig {
    RuntimeConfig {
        feature: FeatureConfig {
            frame_len: 256,
            hop: 128,
            n_mfcc: 8,
            n_mels: 20,
            ..FeatureConfig::default()
        },
        window_samples: 1024,
        ..RuntimeConfig::default()
    }
}

/// Minimal Prometheus text-format check: every non-comment line must be
/// `name{labels} value` with a parseable numeric value, every referenced
/// name must have been announced by a `# TYPE` line, and `# HELP` must
/// precede `# TYPE` for each name.
fn assert_parses(text: &str) {
    let mut announced: Vec<&str> = Vec::new();
    let mut helped: Vec<&str> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP has a name");
            helped.push(name);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE has a name");
            let kind = parts.next().expect("TYPE has a kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown kind {kind:?} in {line:?}"
            );
            assert!(helped.contains(&name), "TYPE before HELP for {name}");
            announced.push(name);
            continue;
        }
        assert!(!line.is_empty(), "blank line in exposition");
        let (series, value) = line.rsplit_once(' ').expect("line has a value");
        let name = series.split('{').next().unwrap();
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| announced.contains(b))
            .unwrap_or(name);
        assert!(announced.contains(&base), "sample before TYPE: {line:?}");
        if let Some(labels) = series.strip_prefix(name) {
            if !labels.is_empty() {
                assert!(
                    labels.starts_with('{') && labels.ends_with('}'),
                    "malformed labels in {line:?}"
                );
            }
        }
    }
    assert!(!announced.is_empty(), "no metrics rendered");
}

#[test]
fn virtual_clock_run_renders_consistent_prometheus_page() {
    const SESSIONS: usize = 3;
    const WINDOWS: u32 = 12;

    let registry = Arc::new(MetricsRegistry::new());
    let clock = Arc::new(VirtualClock::new());
    let mut config = fast_config();
    config.workers = 2;
    config.deadline_ns = 60_000_000_000; // nothing misses under virtual time
    let mut builder = RuntimeBuilder::new(config)
        .unwrap()
        .clock(Arc::clone(&clock) as _)
        .metrics(Arc::clone(&registry));
    let handles: Vec<_> = (0..SESSIONS)
        .map(|_| builder.add_session(Box::new(CollectActuator::default())))
        .collect();
    let runtime = builder.start().unwrap();

    for (i, &session) in handles.iter().enumerate() {
        let stream = VoiceWindowStream::new(
            vec![(Emotion::Happy, WINDOWS)],
            1024,
            16_000.0,
            100 + i as u64,
        )
        .unwrap();
        for window in stream {
            runtime.submit(session, window.samples);
            clock.advance(1_000_000); // 1 ms of virtual time per window
        }
    }
    runtime.wait_idle();
    let outcome = runtime.shutdown();

    // The registry agrees with the runtime's own accounting.
    let get = |name: &str| registry.counter(name, "", &[]).get();
    let produced: u64 = outcome.report.sessions.iter().map(|s| s.produced).sum();
    let processed: u64 = outcome.report.sessions.iter().map(|s| s.processed).sum();
    let dropped: u64 = outcome.report.sessions.iter().map(|s| s.dropped).sum();
    assert_eq!(produced, u64::from(WINDOWS) * SESSIONS as u64);
    assert_eq!(get("affect_rt_windows_submitted_total"), produced);
    assert_eq!(get("affect_rt_windows_processed_total"), processed);
    assert_eq!(get("affect_rt_windows_dropped_total"), dropped);
    assert_eq!(get("affect_rt_deadline_misses_total"), 0);
    let e2e = registry.histogram("affect_rt_e2e_latency_ns", "", &[]);
    assert_eq!(
        e2e.count(),
        processed,
        "one e2e sample per processed window"
    );
    let ingest_pushed = registry
        .counter("affect_rt_queue_pushed_total", "", &[("stage", "ingest")])
        .get();
    assert!(ingest_pushed > 0 && ingest_pushed <= produced);

    // The exposed page is well-formed Prometheus text.
    let text = render_prometheus(&registry);
    assert_parses(&text);
    assert!(text.contains("# TYPE affect_rt_stage_latency_ns histogram"));
    assert!(text.contains("affect_rt_queue_depth{stage=\"ingest\"} 0"));
    assert!(text.contains(&format!("affect_rt_windows_submitted_total {produced}")));
}
