//! Memory-pressure governor integration tests: a deterministic walk
//! through all four pressure bands on a virtual clock must collapse the
//! classify batch, step sessions down the degradation ladder (and back up
//! on Green), keep the accounting invariant at every band, and leave a
//! faithful [`MemReport`] behind. Eviction freezes a session's ledger
//! exactly; readmission resumes it.

use std::sync::Arc;

use affect_core::classifier::ClassifierKind;
use affect_core::pipeline::FeatureConfig;
use affect_rt::{
    CollectActuator, MemConsumer, PressureBand, RuntimeBuilder, RuntimeConfig, VirtualClock,
};

fn fast_config() -> RuntimeConfig {
    RuntimeConfig {
        feature: FeatureConfig {
            frame_len: 256,
            hop: 128,
            n_mfcc: 8,
            n_mels: 20,
            ..FeatureConfig::default()
        },
        window_samples: 1024,
        ..RuntimeConfig::default()
    }
}

const BUDGET: u64 = 1 << 30; // 1 GiB: real charges stay far below 700‰

/// Phantom bytes that land the budget in `permille` of `BUDGET`.
fn phantom_permille(permille: u64) -> u64 {
    BUDGET / 1000 * permille
}

/// The acceptance walk: Green → Yellow → Red → Critical → Green on a
/// virtual clock. Every band transition is recorded, sustained pressure
/// (latency never misses — the clock is frozen) walks the session
/// LSTM → CNN → MLP → HDC, and a Green band climbs it all the way back.
#[test]
fn pressure_walk_hits_all_bands_and_walks_the_ladder_both_ways() {
    let config = RuntimeConfig {
        workers: 1,
        miss_streak: 1, // every pressured window is a ladder step
        ok_streak: 1,   // every calm window is a recovery step
        memory_budget_bytes: BUDGET,
        ..fast_config()
    };
    let mut builder = RuntimeBuilder::new(config).unwrap();
    let session = builder.add_session(Box::<CollectActuator>::default());
    let runtime = builder
        .clock(Arc::new(VirtualClock::new()))
        .start()
        .unwrap();
    let mem = Arc::clone(runtime.memory_budget());

    assert_eq!(mem.refresh(), PressureBand::Green);

    // One window at a time, fully drained, so every window is actuated
    // under exactly the band set for its phase. The return value is not
    // asserted: once the ladder widens the decision interval, every other
    // submit is decimated (accounted as dropped) by design.
    let submit_one = || {
        runtime.submit(session, vec![0.2; 1024]);
        runtime.wait_idle();
    };

    // Green: no pressure, no movement.
    for _ in 0..3 {
        submit_one();
    }
    assert_eq!(runtime.report().sessions[0].family, ClassifierKind::Lstm);
    // By now the real consumers are all charged: rings, the worker's
    // scratch arena and the classifier pool's tables count against the
    // budget — and still leave this roomy budget deep in Green.
    assert!(mem.used_by(MemConsumer::ModelTables) > 0, "tables charged");
    assert!(mem.used_by(MemConsumer::ScratchPools) > 0, "arena charged");
    assert!(mem.used_by(MemConsumer::RingQueues) > 0, "rings charged");
    assert!(mem.used_bytes() < BUDGET / 2, "test budget is roomy");

    // Yellow: the first pressured window steps LSTM → CNN and widens the
    // decision interval to 2, so from here every other submit is
    // decimated; the windows that do run keep walking CNN → MLP → HDC.
    mem.set_phantom(phantom_permille(720));
    assert_eq!(mem.refresh(), PressureBand::Yellow);
    submit_one(); // seq 3: runs, LSTM → CNN, interval 1 → 2
    assert_eq!(runtime.report().sessions[0].family, ClassifierKind::Cnn);
    submit_one(); // seq 4: runs, CNN → MLP
    submit_one(); // seq 5: decimated
    submit_one(); // seq 6: runs, MLP → HDC
    assert_eq!(runtime.report().sessions[0].family, ClassifierKind::Hdc);

    // Red and Critical: already at the floor — the band still registers
    // and the accounting invariant holds window by window.
    mem.set_phantom(phantom_permille(870));
    assert_eq!(mem.refresh(), PressureBand::Red);
    submit_one(); // seq 7: decimated
    submit_one(); // seq 8: runs under Red
    mem.set_phantom(phantom_permille(960));
    assert_eq!(mem.refresh(), PressureBand::Critical);
    submit_one(); // seq 9: decimated
    submit_one(); // seq 10: runs under Critical
    assert!(runtime.report().all_accounted());
    assert_eq!(runtime.report().sessions[0].family, ClassifierKind::Hdc);

    // Green again: the first processed window restores the interval, the
    // next three climb HDC → MLP → CNN → LSTM.
    mem.set_phantom(0);
    assert_eq!(mem.refresh(), PressureBand::Green);
    submit_one(); // seq 11: decimated (interval still 2)
    submit_one(); // seq 12: runs, interval 2 → 1
    for _ in 0..3 {
        submit_one(); // seqs 13-15 run, HDC → MLP → CNN → LSTM
    }
    let report = runtime.shutdown().report;
    let s = &report.sessions[0];
    assert_eq!(s.family, ClassifierKind::Lstm, "fully recovered");
    assert_eq!(s.decision_interval, 1);
    assert_eq!(s.produced, 16);
    assert_eq!(s.processed, 12, "the decimated windows never ran");
    assert_eq!(s.dropped, 4, "seqs 5, 7, 9 and 11");
    assert_eq!(s.degradations, 3);
    assert_eq!(s.recoveries, 4, "interval + three family climbs");
    assert!(report.all_accounted());

    // The report's memory section tells the same story: every band was
    // entered at least once, every degradation was pressure-triggered
    // (the frozen clock cannot miss a deadline), and the phantom release
    // ended the run Green.
    assert_eq!(report.mem.budget_bytes, BUDGET);
    assert_eq!(report.mem.pressure_degradations, 3);
    assert_eq!(report.mem.band, PressureBand::Green as u8);
    for (band, count) in PressureBand::ALL.iter().zip(report.mem.band_transitions) {
        assert!(count >= 1, "band {band:?} never entered: {report:?}");
    }
}

/// Under a Yellow-or-worse band the classify batching window collapses to
/// one window per wakeup, so a burst never piles feature tensors up in one
/// worker's batch buffer.
#[test]
fn classify_batch_collapses_to_one_under_pressure() {
    let config = RuntimeConfig {
        workers: 1,
        classify_batch: 4,
        memory_budget_bytes: BUDGET,
        ..fast_config()
    };
    let mut builder = RuntimeBuilder::new(config).unwrap();
    let session = builder.add_session(Box::<CollectActuator>::default());
    let runtime = builder
        .clock(Arc::new(VirtualClock::new()))
        .start()
        .unwrap();

    let mem = Arc::clone(runtime.memory_budget());
    mem.set_phantom(phantom_permille(720));
    assert_eq!(mem.refresh(), PressureBand::Yellow);

    for _ in 0..10 {
        assert!(runtime.submit(session, vec![0.2; 1024]));
    }
    runtime.wait_idle();
    let report = runtime.shutdown().report;
    assert!(report.all_accounted());
    assert_eq!(
        report.classify.max_batch, 1,
        "pressured batches must not exceed one window"
    );
    assert_eq!(report.classify.batches, report.classify.windows);
}

/// Eviction freezes a session's ledger exactly — `produced` stops moving,
/// `produced == processed + dropped` holds the moment `remove_session`
/// returns — and readmission resumes the same session in place.
#[test]
fn eviction_freezes_accounting_and_readmission_resumes() {
    let mut builder = RuntimeBuilder::new(fast_config()).unwrap();
    let victim = builder.add_session(Box::<CollectActuator>::default());
    let survivor = builder.add_session(Box::<CollectActuator>::default());
    let runtime = builder.start().unwrap();

    for _ in 0..3 {
        assert!(runtime.submit(victim, vec![0.2; 1024]));
        assert!(runtime.submit(survivor, vec![0.2; 1024]));
    }
    runtime.wait_idle();

    assert!(!runtime.session_evicted(victim));
    assert!(runtime.remove_session(victim), "first eviction wins");
    assert!(!runtime.remove_session(victim), "second is a no-op");
    assert!(runtime.session_evicted(victim));

    // remove_session blocked until in-flight windows were accounted, so
    // the frozen ledger is exact right now, not just at shutdown.
    let frozen = runtime.report();
    let v = &frozen.sessions[victim.index()];
    assert_eq!(v.produced, 3);
    assert_eq!(v.produced, v.processed + v.dropped);
    assert!(v.evicted);

    // Submits bounce off the evicted session before being produced; the
    // survivor is untouched.
    assert!(!runtime.submit(victim, vec![0.2; 1024]));
    assert!(runtime.submit(survivor, vec![0.2; 1024]));
    runtime.wait_idle();
    assert_eq!(runtime.report().sessions[victim.index()].produced, 3);

    assert!(runtime.readmit_session(victim), "was evicted");
    assert!(!runtime.readmit_session(victim), "already back");
    assert!(runtime.submit(victim, vec![0.2; 1024]));
    runtime.wait_idle();

    let report = runtime.shutdown().report;
    assert!(report.all_accounted());
    let v = &report.sessions[victim.index()];
    assert_eq!(v.produced, 4, "readmitted session kept producing");
    assert!(!v.evicted, "readmission cleared the flag");
    assert_eq!(report.sessions[survivor.index()].produced, 4);
}
