//! Supervision integration tests: injected worker panics must cost only
//! the windows they land on, never the session, the accounting invariant,
//! or the other sessions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use affect_core::pipeline::FeatureConfig;
use affect_rt::{
    silence_injected_panics, CollectActuator, FaultAction, FaultHook, RuntimeBuilder,
    RuntimeConfig, Stage, SupervisionConfig, WatchdogConfig,
};

fn fast_config() -> RuntimeConfig {
    RuntimeConfig {
        feature: FeatureConfig {
            frame_len: 256,
            hop: 128,
            n_mfcc: 8,
            n_mels: 20,
            ..FeatureConfig::default()
        },
        window_samples: 1024,
        ..RuntimeConfig::default()
    }
}

/// Panics the feature stage for one session's every window.
struct PanicSessionFeatures(usize);

impl FaultHook for PanicSessionFeatures {
    fn inject(&self, stage: Stage, session: usize, _seq: u64) -> FaultAction {
        if stage == Stage::Feature && session == self.0 {
            FaultAction::Panic
        } else {
            FaultAction::None
        }
    }
}

#[test]
fn panicking_session_is_isolated_and_accounted() {
    silence_injected_panics();
    let config = RuntimeConfig {
        supervision: SupervisionConfig {
            restart_budget: 1_000, // workers must survive the whole run
            backoff_base_ms: 0,
            backoff_max_ms: 0,
            ..SupervisionConfig::default()
        },
        ..fast_config()
    };
    let mut builder = RuntimeBuilder::new(config).unwrap();
    let victim = builder.add_session(Box::<CollectActuator>::default());
    let healthy = builder.add_session(Box::<CollectActuator>::default());
    let runtime = builder
        .fault_hook(Arc::new(PanicSessionFeatures(victim.index())))
        .start()
        .unwrap();

    for _ in 0..12 {
        runtime.submit(victim, vec![0.2; 1024]);
        runtime.submit(healthy, vec![0.2; 1024]);
    }
    runtime.wait_idle();
    let outcome = runtime.shutdown();
    let report = outcome.report;

    assert!(report.all_accounted(), "invariant survives injected panics");
    let v = &report.sessions[victim.index()];
    assert_eq!(v.produced, 12);
    assert_eq!(v.processed, 0, "every victim window died in the panic");
    assert_eq!(v.dropped, 12);
    let h = &report.sessions[healthy.index()];
    assert_eq!(h.produced, 12);
    assert_eq!(
        h.processed, 12,
        "the healthy session is untouched by its neighbour's chaos"
    );
    assert_eq!(report.faults.worker_panics, 12);
    assert_eq!(report.faults.worker_restarts, 12);
    assert_eq!(report.faults.workers_lost, 0);
}

/// Panics every feature window, with a budget small enough to retire the
/// whole pool mid-run.
struct PanicEverything;

impl FaultHook for PanicEverything {
    fn inject(&self, stage: Stage, _session: usize, _seq: u64) -> FaultAction {
        if stage == Stage::Feature {
            FaultAction::Panic
        } else {
            FaultAction::None
        }
    }
}

#[test]
fn exhausted_restart_budget_retires_workers_without_losing_windows() {
    silence_injected_panics();
    let config = RuntimeConfig {
        workers: 2,
        supervision: SupervisionConfig {
            restart_budget: 2,
            backoff_base_ms: 0,
            backoff_max_ms: 0,
            ..SupervisionConfig::default()
        },
        ..fast_config()
    };
    let mut builder = RuntimeBuilder::new(config).unwrap();
    let session = builder.add_session(Box::<CollectActuator>::default());
    let runtime = builder
        .fault_hook(Arc::new(PanicEverything))
        .start()
        .unwrap();

    // 2 workers × (2 survivable + 1 fatal) = 6 panics retire the pool;
    // everything after that must still be accounted (closed-ring drops).
    for _ in 0..30 {
        runtime.submit(session, vec![0.2; 1024]);
    }
    runtime.wait_idle();
    let outcome = runtime.shutdown();
    let report = outcome.report;

    assert!(report.all_accounted(), "no window lost to retirement");
    let s = &report.sessions[session.index()];
    assert_eq!(s.produced, 30);
    assert_eq!(s.processed, 0);
    assert_eq!(s.dropped, 30);
    assert_eq!(report.faults.workers_lost, 2, "whole pool retired");
    assert_eq!(report.faults.worker_panics, 6);
    assert_eq!(report.faults.worker_restarts, 4);
}

#[test]
fn backoff_schedule_is_exponential_and_capped() {
    let sup = SupervisionConfig {
        backoff_base_ms: 3,
        backoff_max_ms: 50,
        ..SupervisionConfig::default()
    };
    // No panic yet → no pause.
    assert_eq!(sup.backoff_for(0), 0);
    // Exponential from the base: 3, 6, 12, 24, 48 …
    assert_eq!(sup.backoff_for(1), 3);
    assert_eq!(sup.backoff_for(2), 6);
    assert_eq!(sup.backoff_for(3), 12);
    assert_eq!(sup.backoff_for(4), 24);
    assert_eq!(sup.backoff_for(5), 48);
    // … clamped at the ceiling from then on.
    assert_eq!(sup.backoff_for(6), 50);
    assert_eq!(sup.backoff_for(1_000), 50);
    // The shift itself saturates long before u32::MAX consecutive panics,
    // so huge streaks cannot overflow into a zero-length pause.
    let uncapped = SupervisionConfig {
        backoff_base_ms: 1,
        backoff_max_ms: u64::MAX,
        ..sup
    };
    assert_eq!(uncapped.backoff_for(17), 1 << 16);
    assert_eq!(uncapped.backoff_for(u32::MAX), 1 << 16);
    // A zero base disables backoff entirely regardless of streak length.
    let disabled = SupervisionConfig {
        backoff_base_ms: 0,
        ..sup
    };
    assert_eq!(disabled.backoff_for(7), 0);
}

#[test]
fn windows_submitted_after_retirement_drain_from_the_closed_ring() {
    silence_injected_panics();
    let config = RuntimeConfig {
        workers: 1,
        supervision: SupervisionConfig {
            restart_budget: 0, // first panic retires the only worker
            backoff_base_ms: 0,
            backoff_max_ms: 0,
            ..SupervisionConfig::default()
        },
        ..fast_config()
    };
    let mut builder = RuntimeBuilder::new(config).unwrap();
    let session = builder.add_session(Box::<CollectActuator>::default());
    let runtime = builder
        .fault_hook(Arc::new(PanicEverything))
        .start()
        .unwrap();

    // One window retires the pool …
    runtime.submit(session, vec![0.2; 1024]);
    runtime.wait_idle();
    // … and everything offered afterwards must still drain out of the
    // closed ring as drops, not wedge the accounting invariant.
    for _ in 0..16 {
        runtime.submit(session, vec![0.2; 1024]);
    }
    runtime.wait_idle();
    let report = runtime.shutdown().report;

    assert!(report.all_accounted(), "closed ring drains to drops");
    let s = &report.sessions[session.index()];
    assert_eq!(s.produced, 17);
    assert_eq!(s.processed, 0);
    assert_eq!(s.dropped, 17);
    assert_eq!(report.faults.workers_lost, 1, "the lone worker retired");
    assert_eq!(report.faults.worker_panics, 1);
    assert_eq!(report.faults.worker_restarts, 0, "budget 0 allows none");
}

/// Drops every window at a chosen stage.
struct DropAt(Stage);

impl FaultHook for DropAt {
    fn inject(&self, stage: Stage, _session: usize, _seq: u64) -> FaultAction {
        if stage == self.0 {
            FaultAction::DropWindow
        } else {
            FaultAction::None
        }
    }
}

#[test]
fn drops_at_every_stage_keep_the_invariant() {
    for stage in Stage::ALL {
        let mut builder = RuntimeBuilder::new(fast_config()).unwrap();
        let session = builder.add_session(Box::<CollectActuator>::default());
        let runtime = builder.fault_hook(Arc::new(DropAt(stage))).start().unwrap();
        for _ in 0..8 {
            runtime.submit(session, vec![0.2; 1024]);
        }
        runtime.wait_idle();
        let report = runtime.shutdown().report;
        let s = &report.sessions[session.index()];
        assert!(s.accounted(), "stage {stage:?}");
        assert_eq!(s.produced, 8, "stage {stage:?}");
        assert_eq!(s.processed, 0, "stage {stage:?}: all dropped");
    }
}

#[test]
fn non_finite_windows_cost_one_window_not_the_session() {
    let mut builder = RuntimeBuilder::new(fast_config()).unwrap();
    let session = builder.add_session(Box::<CollectActuator>::default());
    let runtime = builder.start().unwrap();

    runtime.submit(session, vec![0.2; 1024]);
    let mut burst = vec![0.2; 1024];
    burst[500] = f32::NAN;
    runtime.submit(session, burst);
    let mut inf = vec![0.2; 1024];
    inf[0] = f32::INFINITY;
    runtime.submit(session, inf);
    runtime.submit(session, vec![0.2; 1024]);

    runtime.wait_idle();
    let report = runtime.shutdown().report;
    let s = &report.sessions[session.index()];
    assert!(s.accounted());
    assert_eq!(s.produced, 4);
    assert_eq!(s.processed, 2, "the two clean windows survive");
    assert_eq!(s.dropped, 2, "each faulty window costs exactly itself");
    assert_eq!(report.faults.rejected_windows, 2);
}

/// An actuator stand-in: the hook delays nothing, but we use a counter to
/// prove the watchdog run below made progress before shedding.
struct CountingHook(AtomicU64);

impl FaultHook for CountingHook {
    fn inject(&self, _stage: Stage, _session: usize, _seq: u64) -> FaultAction {
        self.0.fetch_add(1, Ordering::SeqCst);
        FaultAction::None
    }
}

#[test]
fn watchdog_on_a_healthy_run_sheds_nothing() {
    let config = RuntimeConfig {
        watchdog: Some(WatchdogConfig {
            poll_ms: 5,
            stall_polls: 2,
        }),
        ..fast_config()
    };
    let mut builder = RuntimeBuilder::new(config).unwrap();
    let session = builder.add_session(Box::<CollectActuator>::default());
    let hook = Arc::new(CountingHook(AtomicU64::new(0)));
    let runtime = builder.fault_hook(Arc::clone(&hook) as _).start().unwrap();
    for _ in 0..10 {
        runtime.submit(session, vec![0.2; 1024]);
    }
    runtime.wait_idle();
    let report = runtime.shutdown().report;
    assert!(report.all_accounted());
    assert_eq!(report.sessions[0].processed, 10);
    assert_eq!(report.faults.watchdog_sheds, 0);
    assert!(hook.0.load(Ordering::SeqCst) >= 50, "hook saw every stage");
}
