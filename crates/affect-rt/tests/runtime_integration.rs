//! Integration tests for the streaming runtime: multi-session accounting,
//! overload shedding, and deterministic deadline-driven degradation.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

use affect_core::classifier::ClassifierKind;
use affect_core::emotion::Emotion;
use affect_core::pipeline::FeatureConfig;
use affect_rt::{
    Actuator, CollectActuator, OverflowPolicy, RuntimeBuilder, RuntimeConfig, StageConfig,
    VirtualClock,
};
use biosignal::VoiceWindowStream;

/// Fast feature configuration: 1024-sample windows, 7 frames, 14 features
/// per frame — small enough that untrained models classify in microseconds.
fn fast_config() -> RuntimeConfig {
    RuntimeConfig {
        feature: FeatureConfig {
            frame_len: 256,
            hop: 128,
            n_mfcc: 8,
            n_mels: 20,
            ..FeatureConfig::default()
        },
        window_samples: 1024,
        ..RuntimeConfig::default()
    }
}

/// An actuator that parks each window in `on_window` until the test sends
/// a permit. Latency is measured *after* `on_window` returns, so a test
/// that advances the virtual clock before sending the permit dictates the
/// window's observed latency exactly.
struct GatedActuator {
    permits: Receiver<()>,
    seqs: Arc<Mutex<Vec<u64>>>,
}

impl GatedActuator {
    fn new() -> (Self, Sender<()>, Arc<Mutex<Vec<u64>>>) {
        let (tx, rx) = channel();
        let seqs = Arc::new(Mutex::new(Vec::new()));
        (
            Self {
                permits: rx,
                seqs: Arc::clone(&seqs),
            },
            tx,
            seqs,
        )
    }
}

impl Actuator for GatedActuator {
    fn actuate(&mut self, _event: affect_core::controller::ControlEvent, _now_nanos: u64) {}

    fn on_window(&mut self, seq: u64) {
        // `Err` only when the test dropped the sender (shutdown path).
        let _ = self.permits.recv();
        self.seqs.lock().unwrap().push(seq);
    }
}

#[test]
fn eight_concurrent_sessions_account_every_window() {
    const SESSIONS: usize = 8;
    const WINDOWS: u32 = 24;

    let mut config = fast_config();
    config.workers = 4;
    // Lossless queues and a generous budget: nothing should be shed.
    config.deadline_ns = 60_000_000_000;
    let mut builder = RuntimeBuilder::new(config).unwrap();
    let handles: Vec<_> = (0..SESSIONS)
        .map(|_| builder.add_session(Box::new(CollectActuator::default())))
        .collect();
    let runtime = Arc::new(builder.start().unwrap());

    // One producer thread per session, all submitting concurrently.
    let producers: Vec<_> = handles
        .iter()
        .map(|&session| {
            let runtime = Arc::clone(&runtime);
            std::thread::spawn(move || {
                let emotion = Emotion::ALL[session.index() % Emotion::ALL.len()];
                let stream = VoiceWindowStream::new(
                    vec![(emotion, WINDOWS)],
                    1024,
                    16_000.0,
                    100 + session.index() as u64,
                )
                .unwrap();
                for window in stream {
                    runtime.submit(session, window.samples);
                }
            })
        })
        .collect();
    for producer in producers {
        producer.join().unwrap();
    }

    runtime.wait_idle();
    let runtime = Arc::try_unwrap(runtime).unwrap_or_else(|_| panic!("producers joined"));
    let outcome = runtime.shutdown();

    assert_eq!(outcome.report.sessions.len(), SESSIONS);
    assert!(outcome.report.all_accounted(), "silent window loss");
    for session in &outcome.report.sessions {
        assert_eq!(session.produced, u64::from(WINDOWS));
        assert_eq!(
            session.processed,
            u64::from(WINDOWS),
            "lossless run sheds nothing"
        );
        assert_eq!(session.dropped, 0);
        assert!(session.latency.count > 0, "report must be non-empty");
        assert!(session.latency.p95_ns >= session.latency.p50_ns);
        assert!(session.latency.max_ns > 0);
    }
    // Queue accounting is consistent stage by stage.
    for stage in &outcome.report.stages {
        assert_eq!(stage.pushed, stage.popped, "{} not drained", stage.stage);
        assert_eq!(stage.shed, 0, "{} shed under lossless policy", stage.stage);
        assert!(stage.depth_high_water <= stage.capacity);
    }
    assert_eq!(
        outcome.report.total_processed(),
        u64::from(WINDOWS) * SESSIONS as u64
    );
    // Classify-stage hot-path accounting: every processed window was
    // classified, in at least one batch, and the scratch arenas settled
    // into reuse after their cold-start allocations.
    let classify = &outcome.report.classify;
    assert_eq!(classify.windows, u64::from(WINDOWS) * SESSIONS as u64);
    assert!(classify.batches > 0 && classify.batches <= classify.windows);
    assert!(classify.max_batch >= 1);
    assert!(classify.mean_batch() >= 1.0);
    assert!(
        classify.scratch_reuses > classify.scratch_allocs,
        "scratch arenas should mostly reuse: {} allocs vs {} reuses",
        classify.scratch_allocs,
        classify.scratch_reuses
    );
}

#[test]
fn drop_oldest_sheds_stale_windows_but_keeps_latest() {
    const SUBMITTED: u64 = 24;

    let mut config = fast_config();
    config.workers = 1;
    config.ingest = StageConfig::new(2, OverflowPolicy::DropOldest);
    config.classify = StageConfig::new(2, OverflowPolicy::Block);
    config.control = StageConfig::new(2, OverflowPolicy::Block);
    config.actuate_capacity = 2;
    config.deadline_ns = 60_000_000_000;
    let clock = Arc::new(VirtualClock::new());
    let (actuator, permits, seqs) = GatedActuator::new();
    let mut builder = RuntimeBuilder::new(config)
        .unwrap()
        .clock(clock.clone() as Arc<dyn affect_rt::Clock>);
    let session = builder.add_session(Box::new(actuator));
    let runtime = builder.start().unwrap();

    // With the actuate stage gated shut, the pipeline backs up into the
    // ingest ring; drop-oldest evicts stale windows as fresh ones arrive.
    let window = vec![0.1f32; 1024];
    for _ in 0..SUBMITTED {
        runtime.submit(session, window.clone());
    }
    // Open the gate wide and let the survivors drain.
    for _ in 0..SUBMITTED {
        let _ = permits.send(());
    }
    runtime.wait_idle();
    let outcome = runtime.shutdown();

    let report = &outcome.report.sessions[session.index()];
    assert!(report.accounted(), "silent window loss under overload");
    assert_eq!(report.produced, SUBMITTED);
    assert!(report.dropped > 0, "overload must shed");
    assert_eq!(report.processed + report.dropped, SUBMITTED);

    let ingest = &outcome.report.stages[0];
    assert_eq!(ingest.stage, "ingest");
    assert!(ingest.shed > 0, "ingest ring must have evicted");
    assert_eq!(ingest.depth_high_water, 2, "bounded queue respected");

    // Drop-oldest keeps the freshest data: the last submitted window
    // always survives, and the processed sequence is strictly increasing.
    let seqs = seqs.lock().unwrap();
    assert_eq!(*seqs.last().unwrap(), SUBMITTED - 1, "latest window lost");
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "order not preserved");
}

#[test]
fn sustained_misses_degrade_then_recovery_climbs_back() {
    let mut config = fast_config();
    config.workers = 1;
    config.initial_family = ClassifierKind::Lstm;
    config.deadline_ns = 1_000; // 1 µs virtual budget
    config.miss_streak = 3;
    config.ok_streak = 2;
    config.degraded_interval = 4;
    let clock = Arc::new(VirtualClock::new());
    let (actuator, permits, _seqs) = GatedActuator::new();
    let mut builder = RuntimeBuilder::new(config)
        .unwrap()
        .clock(clock.clone() as Arc<dyn affect_rt::Clock>);
    let session = builder.add_session(Box::new(actuator));
    let runtime = builder.start().unwrap();

    let window = vec![0.1f32; 1024];

    // Phase A — overload: each window is held at the actuator while the
    // virtual clock advances past the deadline, so every one is a miss.
    for _ in 0..3 {
        assert!(runtime.submit(session, window.clone()));
        clock.advance(10_000);
        permits.send(()).unwrap();
        runtime.wait_idle();
    }
    // Three consecutive misses: one degradation step = family falls back
    // one rung and the decision interval widens.
    assert_eq!(runtime.session_family(session), ClassifierKind::Cnn);
    assert_eq!(runtime.session_interval(session), 4);
    let mid = runtime.report();
    assert_eq!(mid.sessions[0].deadline_misses, 3);
    assert_eq!(mid.sessions[0].degradations, 1);
    assert!((mid.sessions[0].miss_rate() - 1.0).abs() < 1e-12);

    // Phase B — load lifts: the clock stops advancing, so every window
    // that still enters the pipeline lands at zero latency. The widened
    // interval decimates three of every four submissions (counted as
    // dropped, not lost), and two on-time windows per recovery step first
    // restore the interval, then climb the family ladder back to LSTM.
    let mut processed_on_time = 0;
    let mut decimated = 0u64;
    while processed_on_time < 4 {
        if runtime.submit(session, window.clone()) {
            permits.send(()).unwrap();
            runtime.wait_idle();
            processed_on_time += 1;
        } else {
            decimated += 1;
        }
    }
    assert!(decimated > 0, "widened interval must decimate");
    assert_eq!(runtime.session_interval(session), 1, "interval restored");
    assert_eq!(
        runtime.session_family(session),
        ClassifierKind::Lstm,
        "family climbs back to the configured initial"
    );

    let outcome = runtime.shutdown();
    let report = &outcome.report.sessions[0];
    assert!(report.accounted());
    // No further misses after the switch: the miss rate dropped from 100%
    // in the overload phase to 3/7 overall.
    assert_eq!(report.deadline_misses, 3);
    assert_eq!(report.processed, 7);
    assert!(report.miss_rate() < 0.5);
    assert_eq!(report.recoveries, 2);
    assert_eq!(report.dropped, decimated);
}

#[test]
fn drop_newest_rejects_under_pressure_and_accounts() {
    let mut config = fast_config();
    config.workers = 1;
    config.ingest = StageConfig::new(1, OverflowPolicy::DropNewest);
    config.deadline_ns = 60_000_000_000;
    let (actuator, permits, seqs) = GatedActuator::new();
    let mut builder = RuntimeBuilder::new(config).unwrap();
    let session = builder.add_session(Box::new(actuator));
    let runtime = builder.start().unwrap();

    let window = vec![0.1f32; 1024];
    let mut admitted = 0u64;
    for _ in 0..16 {
        if runtime.submit(session, window.clone()) {
            admitted += 1;
        }
    }
    for _ in 0..16 {
        let _ = permits.send(());
    }
    runtime.wait_idle();
    let outcome = runtime.shutdown();

    let report = &outcome.report.sessions[0];
    assert!(report.accounted());
    assert_eq!(report.produced, 16);
    assert_eq!(report.processed, admitted);
    // Drop-newest preserves in-flight work: the first window always wins.
    assert_eq!(*seqs.lock().unwrap().first().unwrap(), 0);
}
