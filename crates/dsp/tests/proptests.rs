//! Property-based tests for the DSP kernels.

use dsp::fft::{fft_inplace, ifft_inplace, Complex, FftPlan};
use dsp::stats::{histogram, mean, min_max, variance};
use dsp::{rms, zero_crossing_rate, Frames, MelFilterBank, Window};
use proptest::prelude::*;

/// Textbook O(n²) DFT — the oracle the fast transforms are checked against.
fn naive_dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::new(0.0, 0.0);
            for (t, x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k as f64) * (t as f64) / n as f64;
                let (re, im) = (ang.cos() as f32, ang.sin() as f32);
                acc.re += x.re * re - x.im * im;
                acc.im += x.re * im + x.im * re;
            }
            acc
        })
        .collect()
}

fn signal_strategy(max_pow: u32) -> impl Strategy<Value = Vec<f32>> {
    (1u32..=max_pow)
        .prop_flat_map(|p| prop::collection::vec(-1.0f32..1.0, 1usize << p..=1usize << p))
}

proptest! {
    /// `ifft(fft(x)) == x` for any power-of-two real signal.
    #[test]
    fn fft_round_trip(signal in signal_strategy(9)) {
        let orig: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let mut buf = orig.clone();
        fft_inplace(&mut buf).unwrap();
        ifft_inplace(&mut buf).unwrap();
        for (a, b) in orig.iter().zip(&buf) {
            prop_assert!((a.re - b.re).abs() < 1e-3, "{} vs {}", a.re, b.re);
            prop_assert!(b.im.abs() < 1e-3);
        }
    }

    /// Parseval: time-domain energy equals frequency-domain energy / N.
    #[test]
    fn fft_preserves_energy(signal in signal_strategy(8)) {
        let n = signal.len() as f32;
        let te: f32 = signal.iter().map(|x| x * x).sum();
        let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft_inplace(&mut buf).unwrap();
        let fe: f32 = buf.iter().map(|c| c.abs() * c.abs()).sum::<f32>() / n;
        prop_assert!((te - fe).abs() < 1e-2 * (1.0 + te), "{te} vs {fe}");
    }

    /// A precomputed plan produces the same spectrum as the ad-hoc
    /// `fft_inplace` (within accumulation tolerance) for every
    /// power-of-two size, and both match the naive O(n²) DFT oracle.
    #[test]
    fn fft_plan_matches_fft_inplace_and_dft_oracle(signal in signal_strategy(7)) {
        let input: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let plan = FftPlan::new(input.len()).unwrap();
        let mut planned = input.clone();
        plan.process(&mut planned).unwrap();
        let mut adhoc = input.clone();
        fft_inplace(&mut adhoc).unwrap();
        let oracle = naive_dft(&input);
        let tol = 1e-3 * input.len() as f32;
        for ((p, a), o) in planned.iter().zip(&adhoc).zip(&oracle) {
            prop_assert!((p.re - a.re).abs() < tol, "plan {} vs inplace {}", p.re, a.re);
            prop_assert!((p.im - a.im).abs() < tol, "plan {} vs inplace {}", p.im, a.im);
            prop_assert!((p.re - o.re).abs() < tol, "plan {} vs dft {}", p.re, o.re);
            prop_assert!((p.im - o.im).abs() < tol, "plan {} vs dft {}", p.im, o.im);
        }
    }

    /// A plan is reusable: processing the same input twice through one plan
    /// is bit-for-bit deterministic.
    #[test]
    fn fft_plan_is_deterministic_across_calls(signal in signal_strategy(6)) {
        let plan = FftPlan::new(signal.len()).unwrap();
        let mut first: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let mut second = first.clone();
        plan.process(&mut first).unwrap();
        plan.process(&mut second).unwrap();
        for (a, b) in first.iter().zip(&second) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    /// ZCR is always in [0, 1].
    #[test]
    fn zcr_bounded(signal in prop::collection::vec(-10.0f32..10.0, 2..512)) {
        let z = zero_crossing_rate(&signal).unwrap();
        prop_assert!((0.0..=1.0).contains(&z));
    }

    /// RMS is nonnegative and bounded by the peak magnitude.
    #[test]
    fn rms_bounded_by_peak(signal in prop::collection::vec(-10.0f32..10.0, 1..512)) {
        let r = rms(&signal).unwrap();
        let peak = signal.iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        prop_assert!(r >= 0.0);
        prop_assert!(r <= peak + 1e-4);
    }

    /// Frame iterator yields exactly `count_frames()` frames of `frame_len`.
    #[test]
    fn frames_consistent(
        signal in prop::collection::vec(0.0f32..1.0, 0..256),
        frame_len in 1usize..32,
        hop in 1usize..16,
    ) {
        let frames = Frames::new(&signal, frame_len, hop).unwrap();
        let expected = frames.count_frames();
        let collected: Vec<_> = frames.collect();
        prop_assert_eq!(collected.len(), expected);
        prop_assert!(collected.iter().all(|f| f.len() == frame_len));
    }

    /// Mel filterbank output is nonnegative for nonnegative spectra and
    /// scales linearly with the input.
    #[test]
    fn mel_filterbank_linear(scale in 0.1f32..10.0) {
        let bank = MelFilterBank::new(16_000.0, 256, 20).unwrap();
        let spectrum: Vec<f32> = (0..129).map(|i| (i % 13) as f32 * 0.1).collect();
        let scaled: Vec<f32> = spectrum.iter().map(|&x| x * scale).collect();
        let e1 = bank.apply(&spectrum).unwrap();
        let e2 = bank.apply(&scaled).unwrap();
        for (a, b) in e1.iter().zip(&e2) {
            prop_assert!((a * scale - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }

    /// Histogram fractions sum to 1 and every fraction is in [0, 1].
    #[test]
    fn histogram_is_distribution(
        xs in prop::collection::vec(-100.0f32..100.0, 1..200),
        bins in 1usize..32,
    ) {
        let h = histogram(&xs, bins).unwrap();
        prop_assert_eq!(h.len(), bins);
        let total: f32 = h.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-4);
        prop_assert!(h.iter().all(|&b| (0.0..=1.0).contains(&b)));
    }

    /// Mean lies between min and max; variance is nonnegative.
    #[test]
    fn moments_sane(xs in prop::collection::vec(-50.0f32..50.0, 1..200)) {
        let m = mean(&xs).unwrap();
        let (lo, hi) = min_max(&xs).unwrap();
        prop_assert!(m >= lo - 1e-4 && m <= hi + 1e-4);
        prop_assert!(variance(&xs).unwrap() >= -1e-6);
    }

    /// Window coefficients stay in [0, 1] and application never increases
    /// the peak magnitude.
    #[test]
    fn window_attenuates(len in 2usize..256) {
        for w in [Window::Rectangular, Window::Hann, Window::Hamming, Window::Blackman] {
            let mut frame = vec![1.0f32; len];
            w.apply(&mut frame).unwrap();
            prop_assert!(frame.iter().all(|&x| (-1e-6..=1.0 + 1e-6).contains(&x)));
        }
    }
}
