//! Scalar statistics over signal windows.
//!
//! The paper's smartphone-side feature extraction includes "time-based
//! features such as mean, histogram, and variance" computed over biosignal
//! windows; these helpers provide them for the classification pipeline.

use crate::DspError;

/// Arithmetic mean of a slice.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice.
pub fn mean(xs: &[f32]) -> Result<f32, DspError> {
    if xs.is_empty() {
        return Err(DspError::EmptyInput);
    }
    Ok(xs.iter().sum::<f32>() / xs.len() as f32)
}

/// Population variance of a slice.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice.
pub fn variance(xs: &[f32]) -> Result<f32, DspError> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m).powi(2)).sum::<f32>() / xs.len() as f32)
}

/// Population standard deviation.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice.
pub fn std_dev(xs: &[f32]) -> Result<f32, DspError> {
    Ok(variance(xs)?.sqrt())
}

/// Fisher skewness (third standardized moment); `0.0` when the variance is
/// (numerically) zero.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice.
pub fn skewness(xs: &[f32]) -> Result<f32, DspError> {
    let m = mean(xs)?;
    let var = variance(xs)?;
    if var < 1e-12 {
        return Ok(0.0);
    }
    let n = xs.len() as f32;
    let m3 = xs.iter().map(|x| (x - m).powi(3)).sum::<f32>() / n;
    Ok(m3 / var.powf(1.5))
}

/// Excess kurtosis (fourth standardized moment minus three); `0.0` when the
/// variance is (numerically) zero.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice.
pub fn kurtosis(xs: &[f32]) -> Result<f32, DspError> {
    let m = mean(xs)?;
    let var = variance(xs)?;
    if var < 1e-12 {
        return Ok(0.0);
    }
    let n = xs.len() as f32;
    let m4 = xs.iter().map(|x| (x - m).powi(4)).sum::<f32>() / n;
    Ok(m4 / (var * var) - 3.0)
}

/// Normalized histogram of `xs` with `bins` equal-width bins spanning
/// `[min, max]` of the data. Returns a vector of bin fractions that sums to
/// one. When all values are identical every sample falls in the first bin.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice and
/// [`DspError::InvalidParameter`] for zero `bins`.
///
/// # Example
///
/// ```
/// use dsp::stats::histogram;
/// # fn main() -> Result<(), dsp::DspError> {
/// let h = histogram(&[0.0, 0.1, 0.9, 1.0], 2)?;
/// assert_eq!(h.len(), 2);
/// assert!((h[0] - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn histogram(xs: &[f32], bins: usize) -> Result<Vec<f32>, DspError> {
    if xs.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if bins == 0 {
        return Err(DspError::InvalidParameter {
            name: "bins",
            reason: "must be non-zero",
        });
    }
    let lo = xs.iter().fold(f32::INFINITY, |a, &b| a.min(b));
    let hi = xs.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f32;
    for &x in xs {
        let idx = if width <= 0.0 {
            0
        } else {
            (((x - lo) / width) as usize).min(bins - 1)
        };
        counts[idx] += 1;
    }
    let n = xs.len() as f32;
    Ok(counts.iter().map(|&c| c as f32 / n).collect())
}

/// Minimum and maximum of a slice as `(min, max)`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice.
pub fn min_max(xs: &[f32]) -> Result<(f32, f32), DspError> {
    if xs.is_empty() {
        return Err(DspError::EmptyInput);
    }
    Ok(xs
        .iter()
        .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < 1e-6);
        assert!((variance(&xs).unwrap() - 4.0).abs() < 1e-6);
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[]).is_err());
        assert!(skewness(&[]).is_err());
        assert!(kurtosis(&[]).is_err());
        assert!(histogram(&[], 4).is_err());
        assert!(min_max(&[]).is_err());
    }

    #[test]
    fn constant_data_has_zero_moments() {
        let xs = [3.0f32; 10];
        assert_eq!(variance(&xs).unwrap(), 0.0);
        assert_eq!(skewness(&xs).unwrap(), 0.0);
        assert_eq!(kurtosis(&xs).unwrap(), 0.0);
    }

    #[test]
    fn right_tail_gives_positive_skew() {
        let xs = [1.0, 1.0, 1.0, 1.0, 1.0, 10.0];
        assert!(skewness(&xs).unwrap() > 0.5);
    }

    #[test]
    fn histogram_sums_to_one() {
        let xs: Vec<f32> = (0..97).map(|i| (i as f32).sin()).collect();
        let h = histogram(&xs, 8).unwrap();
        let total: f32 = h.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn histogram_constant_data_all_in_first_bin() {
        let h = histogram(&[5.0; 12], 4).unwrap();
        assert!((h[0] - 1.0).abs() < 1e-6);
        assert!(h[1..].iter().all(|&b| b == 0.0));
    }

    #[test]
    fn histogram_rejects_zero_bins() {
        assert!(histogram(&[1.0], 0).is_err());
    }

    #[test]
    fn min_max_correct() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]).unwrap(), (-1.0, 3.0));
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let h = histogram(&[0.0, 1.0], 10).unwrap();
        assert!((h[9] - 0.5).abs() < 1e-6);
    }
}
