//! Mel filterbank and MFCC extraction.
//!
//! The paper's feature set is dominated by Mel-frequency cepstral
//! coefficients (MFCC): a magnitude spectrum is warped onto the mel scale by
//! a bank of triangular filters, log-compressed, and decorrelated with a
//! DCT-II. This module implements that path exactly.

use crate::fft::{Complex, FftPlan};
use crate::window::Window;
use crate::DspError;

/// Converts a frequency in hertz to mels (O'Shaughnessy's formula).
///
/// # Example
///
/// ```
/// use dsp::hz_to_mel;
/// assert!((hz_to_mel(0.0)).abs() < 1e-6);
/// assert!(hz_to_mel(1000.0) > hz_to_mel(500.0));
/// ```
#[inline]
pub fn hz_to_mel(hz: f32) -> f32 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts mels back to hertz; inverse of [`hz_to_mel`].
#[inline]
pub fn mel_to_hz(mel: f32) -> f32 {
    700.0 * (10.0f32.powf(mel / 2595.0) - 1.0)
}

/// A bank of triangular filters equally spaced on the mel scale.
///
/// # Example
///
/// ```
/// use dsp::MelFilterBank;
/// # fn main() -> Result<(), dsp::DspError> {
/// let bank = MelFilterBank::new(16_000.0, 512, 26)?;
/// let spectrum = vec![1.0f32; 257];
/// let energies = bank.apply(&spectrum)?;
/// assert_eq!(energies.len(), 26);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MelFilterBank {
    /// `filters[m]` holds `(start_bin, weights)` for filter `m`.
    filters: Vec<(usize, Vec<f32>)>,
    spectrum_len: usize,
}

impl MelFilterBank {
    /// Builds a filterbank for `n_filters` triangles covering 0 Hz to the
    /// Nyquist frequency of `sample_rate`, for spectra produced by an FFT of
    /// `fft_len` points (so spectra have `fft_len / 2 + 1` bins).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when `sample_rate` is not
    /// positive, `fft_len` is not a power of two, or `n_filters` is zero or
    /// too large for the spectral resolution.
    pub fn new(sample_rate: f32, fft_len: usize, n_filters: usize) -> Result<Self, DspError> {
        if !(sample_rate > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        if fft_len == 0 || fft_len & (fft_len - 1) != 0 {
            return Err(DspError::NonPowerOfTwoFft { len: fft_len });
        }
        if n_filters == 0 {
            return Err(DspError::InvalidParameter {
                name: "n_filters",
                reason: "must be non-zero",
            });
        }
        let spectrum_len = fft_len / 2 + 1;
        if n_filters + 2 > spectrum_len {
            return Err(DspError::InvalidParameter {
                name: "n_filters",
                reason: "too many filters for the fft resolution",
            });
        }

        let max_mel = hz_to_mel(sample_rate / 2.0);
        // n_filters + 2 boundary points on the mel axis.
        let mel_points: Vec<f32> = (0..n_filters + 2)
            .map(|i| max_mel * i as f32 / (n_filters + 1) as f32)
            .collect();
        // Map to FFT bin indices (fractional bins are kept to build smooth
        // triangles even at low resolution).
        let bin_of = |mel: f32| mel_to_hz(mel) * fft_len as f32 / sample_rate;
        let bins: Vec<f32> = mel_points.iter().map(|&m| bin_of(m)).collect();

        let mut filters = Vec::with_capacity(n_filters);
        for m in 0..n_filters {
            let (lo, mid, hi) = (bins[m], bins[m + 1], bins[m + 2]);
            let start = lo.floor().max(0.0) as usize;
            let end = (hi.ceil() as usize).min(spectrum_len - 1);
            let mut weights = Vec::with_capacity(end.saturating_sub(start) + 1);
            for bin in start..=end {
                let b = bin as f32;
                let w = if b < lo || b > hi {
                    0.0
                } else if b <= mid {
                    if mid > lo {
                        (b - lo) / (mid - lo)
                    } else {
                        1.0
                    }
                } else if hi > mid {
                    (hi - b) / (hi - mid)
                } else {
                    1.0
                };
                weights.push(w.max(0.0));
            }
            filters.push((start, weights));
        }
        Ok(Self {
            filters,
            spectrum_len,
        })
    }

    /// Number of filters in the bank.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Returns `true` when the bank has no filters (never, for a bank built
    /// by [`MelFilterBank::new`]).
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Expected magnitude-spectrum length (`fft_len / 2 + 1`).
    pub fn spectrum_len(&self) -> usize {
        self.spectrum_len
    }

    /// Applies the bank to a magnitude spectrum, returning one energy per
    /// filter.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] when `spectrum.len()` differs
    /// from [`MelFilterBank::spectrum_len`].
    pub fn apply(&self, spectrum: &[f32]) -> Result<Vec<f32>, DspError> {
        let mut out = Vec::with_capacity(self.filters.len());
        self.apply_into(spectrum, &mut out)?;
        Ok(out)
    }

    /// [`MelFilterBank::apply`] writing into a caller-provided buffer,
    /// allocation-free once the buffer has capacity. Results are bit-for-bit
    /// identical to `apply`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] when `spectrum.len()` differs
    /// from [`MelFilterBank::spectrum_len`].
    pub fn apply_into(&self, spectrum: &[f32], out: &mut Vec<f32>) -> Result<(), DspError> {
        if spectrum.len() != self.spectrum_len {
            return Err(DspError::LengthMismatch {
                expected: self.spectrum_len,
                actual: spectrum.len(),
            });
        }
        out.clear();
        out.extend(self.filters.iter().map(|(start, weights)| {
            weights
                .iter()
                .enumerate()
                .map(|(i, &w)| w * spectrum[start + i])
                .sum::<f32>()
        }));
        Ok(())
    }
}

/// Type-II discrete cosine transform (orthonormal scaling), used to
/// decorrelate log mel energies into cepstral coefficients.
///
/// Direct O(N·K) evaluation: the paper uses at most 40 mel bands and 13
/// coefficients, where a fast algorithm would gain nothing.
pub fn dct_ii(input: &[f32], n_out: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(n_out);
    dct_ii_into(input, n_out, &mut out);
    out
}

/// [`dct_ii`] writing into a caller-provided buffer, allocation-free once
/// the buffer has capacity. Results are bit-for-bit identical to `dct_ii`.
pub fn dct_ii_into(input: &[f32], n_out: usize, out: &mut Vec<f32>) {
    let n = input.len() as f32;
    out.clear();
    out.extend((0..n_out).map(|k| {
        let sum: f32 = input
            .iter()
            .enumerate()
            .map(|(i, &x)| x * (std::f32::consts::PI * k as f32 * (i as f32 + 0.5) / n).cos())
            .sum();
        let scale = if k == 0 {
            (1.0 / n).sqrt()
        } else {
            (2.0 / n).sqrt()
        };
        scale * sum
    }));
}

/// End-to-end MFCC extractor: window → FFT magnitude → mel filterbank →
/// log → DCT-II.
///
/// The extractor precomputes everything the per-frame path needs — the
/// [`FftPlan`], the window coefficients, the mel filterbank, and the DCT-II
/// basis — and owns scratch buffers, so [`MfccExtractor::extract_into`]
/// performs **zero heap allocations** in the steady state. The borrowing
/// [`MfccExtractor::extract`] produces identical coefficients through the
/// same precomputed tables but allocates its temporaries per call.
///
/// # Example
///
/// ```
/// use dsp::MfccExtractor;
/// # fn main() -> Result<(), dsp::DspError> {
/// let mut ex = MfccExtractor::new(16_000.0, 256, 20, 13)?;
/// let frame = vec![0.25f32; 256];
/// let mfcc = ex.extract(&frame)?;
/// assert_eq!(mfcc.len(), 13);
/// let mut out = Vec::new();
/// ex.extract_into(&frame, &mut out)?;
/// assert_eq!(out, mfcc);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MfccExtractor {
    bank: MelFilterBank,
    window: Window,
    frame_len: usize,
    n_coeffs: usize,
    plan: FftPlan,
    /// Window coefficients for `frame_len` samples.
    window_coeffs: Vec<f32>,
    /// Row-major `[n_coeffs, n_filters]` DCT-II basis with the orthonormal
    /// scale folded in.
    dct_basis: Vec<f32>,
    // Reusable per-frame scratch (only touched by `extract_into`).
    fft_buf: Vec<Complex>,
    spectrum: Vec<f32>,
    energies: Vec<f32>,
}

/// Shared frame pipeline over caller-provided buffers: window+pack into
/// `fft_buf`, FFT, magnitudes into `spectrum`, filterbank into `energies`,
/// log in place, DCT basis matmul into `out`.
#[allow(clippy::too_many_arguments)]
fn mfcc_with_buffers(
    plan: &FftPlan,
    bank: &MelFilterBank,
    window_coeffs: &[f32],
    dct_basis: &[f32],
    n_coeffs: usize,
    frame: &[f32],
    fft_buf: &mut Vec<Complex>,
    spectrum: &mut Vec<f32>,
    energies: &mut Vec<f32>,
    out: &mut Vec<f32>,
) -> Result<(), DspError> {
    fft_buf.clear();
    fft_buf.extend(
        frame
            .iter()
            .zip(window_coeffs)
            .map(|(&x, &w)| Complex::new(x * w, 0.0)),
    );
    plan.process(fft_buf)?;
    spectrum.clear();
    spectrum.extend(fft_buf[..frame.len() / 2 + 1].iter().map(|c| c.abs()));
    bank.apply_into(spectrum, energies)?;
    // Floor avoids log(0); 1e-10 is ~-200 dB, far below any real signal.
    for e in energies.iter_mut() {
        *e = (e.max(1e-10)).ln();
    }
    let n_filters = energies.len();
    out.clear();
    out.extend((0..n_coeffs).map(|k| {
        let row = &dct_basis[k * n_filters..(k + 1) * n_filters];
        row.iter()
            .zip(energies.iter())
            .map(|(&b, &e)| b * e)
            .sum::<f32>()
    }));
    Ok(())
}

impl MfccExtractor {
    /// Creates an extractor for frames of `frame_len` samples at
    /// `sample_rate`, using `n_filters` mel bands and producing `n_coeffs`
    /// cepstral coefficients. Uses a Hann window.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`MelFilterBank::new`]; also
    /// rejects `n_coeffs` of zero or greater than `n_filters`.
    pub fn new(
        sample_rate: f32,
        frame_len: usize,
        n_filters: usize,
        n_coeffs: usize,
    ) -> Result<Self, DspError> {
        if n_coeffs == 0 || n_coeffs > n_filters {
            return Err(DspError::InvalidParameter {
                name: "n_coeffs",
                reason: "must be in 1..=n_filters",
            });
        }
        let bank = MelFilterBank::new(sample_rate, frame_len, n_filters)?;
        let plan = FftPlan::new(frame_len)?;
        let window = Window::Hann;
        let window_coeffs = window.coefficients(frame_len);
        let n = n_filters as f32;
        let mut dct_basis = Vec::with_capacity(n_coeffs * n_filters);
        for k in 0..n_coeffs {
            let scale = if k == 0 {
                (1.0 / n).sqrt()
            } else {
                (2.0 / n).sqrt()
            };
            for i in 0..n_filters {
                dct_basis
                    .push(scale * (std::f32::consts::PI * k as f32 * (i as f32 + 0.5) / n).cos());
            }
        }
        Ok(Self {
            bank,
            window,
            frame_len,
            n_coeffs,
            plan,
            window_coeffs,
            dct_basis,
            fft_buf: Vec::new(),
            spectrum: Vec::new(),
            energies: Vec::new(),
        })
    }

    /// The window function applied to each frame.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Frame length in samples this extractor expects.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Number of cepstral coefficients produced per frame.
    pub fn n_coeffs(&self) -> usize {
        self.n_coeffs
    }

    /// Extracts MFCCs from one frame.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] when the frame length differs
    /// from [`MfccExtractor::frame_len`].
    pub fn extract(&self, frame: &[f32]) -> Result<Vec<f32>, DspError> {
        if frame.len() != self.frame_len {
            return Err(DspError::LengthMismatch {
                expected: self.frame_len,
                actual: frame.len(),
            });
        }
        let mut fft_buf = Vec::new();
        let mut spectrum = Vec::new();
        let mut energies = Vec::new();
        let mut out = Vec::new();
        mfcc_with_buffers(
            &self.plan,
            &self.bank,
            &self.window_coeffs,
            &self.dct_basis,
            self.n_coeffs,
            frame,
            &mut fft_buf,
            &mut spectrum,
            &mut energies,
            &mut out,
        )?;
        Ok(out)
    }

    /// [`MfccExtractor::extract`] writing into a caller-provided buffer and
    /// drawing every temporary from the extractor's own scratch — zero heap
    /// allocations in the steady state, bit-for-bit identical coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] when the frame length differs
    /// from [`MfccExtractor::frame_len`].
    pub fn extract_into(&mut self, frame: &[f32], out: &mut Vec<f32>) -> Result<(), DspError> {
        if frame.len() != self.frame_len {
            return Err(DspError::LengthMismatch {
                expected: self.frame_len,
                actual: frame.len(),
            });
        }
        let Self {
            bank,
            plan,
            window_coeffs,
            dct_basis,
            n_coeffs,
            fft_buf,
            spectrum,
            energies,
            ..
        } = self;
        mfcc_with_buffers(
            plan,
            bank,
            window_coeffs,
            dct_basis,
            *n_coeffs,
            frame,
            fft_buf,
            spectrum,
            energies,
            out,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mel_scale_round_trip() {
        for hz in [0.0f32, 100.0, 440.0, 1000.0, 4000.0, 8000.0] {
            let back = mel_to_hz(hz_to_mel(hz));
            assert!((back - hz).abs() < 0.5, "{hz} -> {back}");
        }
    }

    #[test]
    fn filterbank_rejects_bad_params() {
        assert!(MelFilterBank::new(0.0, 512, 26).is_err());
        assert!(MelFilterBank::new(16000.0, 300, 26).is_err());
        assert!(MelFilterBank::new(16000.0, 512, 0).is_err());
        assert!(MelFilterBank::new(16000.0, 16, 20).is_err());
    }

    #[test]
    fn filterbank_energies_nonnegative_for_nonnegative_spectrum() {
        let bank = MelFilterBank::new(16_000.0, 512, 26).unwrap();
        let spectrum: Vec<f32> = (0..257).map(|i| (i % 7) as f32).collect();
        let e = bank.apply(&spectrum).unwrap();
        assert!(e.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn filterbank_length_mismatch() {
        let bank = MelFilterBank::new(16_000.0, 512, 26).unwrap();
        assert_eq!(
            bank.apply(&[0.0; 100]),
            Err(DspError::LengthMismatch {
                expected: 257,
                actual: 100
            })
        );
    }

    #[test]
    fn filters_overlap_to_cover_midband() {
        // The summed response across filters should be positive through the
        // middle of the band (triangles tile the axis).
        let bank = MelFilterBank::new(16_000.0, 512, 26).unwrap();
        let mut coverage = vec![0.0f32; bank.spectrum_len()];
        for (start, weights) in &bank.filters {
            for (i, &w) in weights.iter().enumerate() {
                coverage[start + i] += w;
            }
        }
        for (bin, &c) in coverage.iter().enumerate().take(250).skip(10) {
            assert!(c > 0.0, "bin {bin} uncovered");
        }
    }

    #[test]
    fn dct_of_constant_is_dc_only() {
        let out = dct_ii(&[2.0; 16], 8);
        assert!(out[0] > 0.0);
        for &c in &out[1..] {
            assert!(c.abs() < 1e-4);
        }
    }

    #[test]
    fn dct_orthonormal_energy() {
        // Full-length orthonormal DCT preserves energy.
        let input: Vec<f32> = (0..16).map(|i| ((i * 13) % 7) as f32 - 3.0).collect();
        let out = dct_ii(&input, 16);
        let ein: f32 = input.iter().map(|x| x * x).sum();
        let eout: f32 = out.iter().map(|x| x * x).sum();
        assert!((ein - eout).abs() < 1e-2, "{ein} vs {eout}");
    }

    #[test]
    fn mfcc_rejects_wrong_frame_len() {
        let ex = MfccExtractor::new(16_000.0, 256, 20, 13).unwrap();
        assert!(ex.extract(&[0.0; 100]).is_err());
    }

    #[test]
    fn mfcc_distinguishes_tones() {
        // Low tone vs high tone must produce different cepstra.
        let ex = MfccExtractor::new(16_000.0, 512, 26, 13).unwrap();
        let lo: Vec<f32> = (0..512)
            .map(|i| (2.0 * std::f32::consts::PI * 200.0 * i as f32 / 16_000.0).sin())
            .collect();
        let hi: Vec<f32> = (0..512)
            .map(|i| (2.0 * std::f32::consts::PI * 3000.0 * i as f32 / 16_000.0).sin())
            .collect();
        let a = ex.extract(&lo).unwrap();
        let b = ex.extract(&hi).unwrap();
        let dist: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).powi(2)).sum();
        assert!(dist > 1.0, "cepstra too similar: {dist}");
    }

    #[test]
    fn mfcc_rejects_zero_coeffs() {
        assert!(MfccExtractor::new(16_000.0, 256, 20, 0).is_err());
        assert!(MfccExtractor::new(16_000.0, 256, 20, 21).is_err());
    }

    #[test]
    fn extract_into_matches_extract_bitwise() {
        let mut ex = MfccExtractor::new(16_000.0, 512, 26, 13).unwrap();
        let frame: Vec<f32> = (0..512)
            .map(|i| (2.0 * std::f32::consts::PI * 440.0 * i as f32 / 16_000.0).sin())
            .collect();
        let reference = ex.extract(&frame).unwrap();
        let mut out = Vec::new();
        // Repeated calls reuse the same scratch; each must match exactly.
        for _ in 0..3 {
            ex.extract_into(&frame, &mut out).unwrap();
            assert_eq!(reference, out);
        }
    }

    #[test]
    fn extract_into_rejects_wrong_frame_len() {
        let mut ex = MfccExtractor::new(16_000.0, 256, 20, 13).unwrap();
        let mut out = Vec::new();
        assert_eq!(
            ex.extract_into(&[0.0; 100], &mut out),
            Err(DspError::LengthMismatch {
                expected: 256,
                actual: 100
            })
        );
    }

    #[test]
    fn apply_into_and_dct_into_match_allocating_variants() {
        let bank = MelFilterBank::new(16_000.0, 512, 26).unwrap();
        let spectrum: Vec<f32> = (0..257).map(|i| ((i * 3) % 11) as f32).collect();
        let reference = bank.apply(&spectrum).unwrap();
        let mut into = Vec::new();
        bank.apply_into(&spectrum, &mut into).unwrap();
        assert_eq!(reference, into);

        let input: Vec<f32> = (0..26).map(|i| ((i * 7) % 5) as f32 - 2.0).collect();
        let reference = dct_ii(&input, 13);
        let mut into = Vec::new();
        dct_ii_into(&input, 13, &mut into);
        assert_eq!(reference, into);
    }
}
