//! Radix-2 decimation-in-time fast Fourier transform.
//!
//! The affect classifier front end needs magnitude spectra for the mel
//! filterbank ([`crate::mel`]) and spectral features ([`crate::features`]).
//! A plain iterative Cooley–Tukey FFT is more than fast enough for the frame
//! sizes the paper uses (256–1024 samples) and keeps the crate free of
//! external numeric dependencies.

use crate::DspError;

/// A complex number with `f32` components.
///
/// Deliberately minimal: only the operations the FFT and its tests need.
///
/// # Example
///
/// ```
/// use dsp::Complex;
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// let c = a * b;
/// assert!((c.re - 5.0).abs() < 1e-6);
/// assert!((c.im - 5.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    #[inline]
    pub fn zero() -> Self {
        Self { re: 0.0, im: 0.0 }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f32 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl From<f32> for Complex {
    fn from(re: f32) -> Self {
        Self::new(re, 0.0)
    }
}

/// Returns `true` when `n` is a power of two (and non-zero).
#[inline]
fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place forward FFT of a power-of-two-length buffer.
///
/// Uses the iterative radix-2 decimation-in-time algorithm with bit-reversal
/// permutation. The transform is unnormalized: `ifft(fft(x)) == x` because
/// [`ifft_inplace`] applies the `1/N` factor.
///
/// # Errors
///
/// Returns [`DspError::NonPowerOfTwoFft`] when `buf.len()` is not a power of
/// two, and [`DspError::EmptyInput`] when it is empty.
///
/// # Example
///
/// ```
/// use dsp::{fft_inplace, Complex};
/// # fn main() -> Result<(), dsp::DspError> {
/// let mut buf = vec![Complex::new(1.0, 0.0); 8];
/// fft_inplace(&mut buf)?;
/// // DC bin holds the sum, all other bins are zero for a constant signal.
/// assert!((buf[0].re - 8.0).abs() < 1e-5);
/// assert!(buf[1].abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
pub fn fft_inplace(buf: &mut [Complex]) -> Result<(), DspError> {
    let n = buf.len();
    if n == 0 {
        return Err(DspError::EmptyInput);
    }
    if !is_pow2(n) {
        return Err(DspError::NonPowerOfTwoFft { len: n });
    }
    if n == 1 {
        return Ok(());
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }

    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f32::consts::PI / len as f32;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for chunk in buf.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// A precomputed FFT plan for one transform size.
///
/// [`fft_inplace`] recomputes the bit-reversal permutation and accumulates
/// twiddle factors (`w *= w_len`) on every call. A plan trades a one-time
/// setup for a leaner hot loop: the permutation table and the per-stage
/// twiddles (`n - 1` of them, evaluated directly from `cos`/`sin` so they
/// are also slightly *more* accurate than the accumulated product) are
/// computed once and reused for every frame. `process` takes `&self`, so one
/// plan can serve any number of callers.
///
/// # Example
///
/// ```
/// use dsp::{fft_inplace, Complex, FftPlan};
/// # fn main() -> Result<(), dsp::DspError> {
/// let plan = FftPlan::new(64)?;
/// let signal: Vec<Complex> = (0..64).map(|i| Complex::new((i % 7) as f32, 0.0)).collect();
/// let mut a = signal.clone();
/// let mut b = signal;
/// plan.process(&mut a)?;
/// fft_inplace(&mut b)?;
/// for (x, y) in a.iter().zip(&b) {
///     assert!((x.re - y.re).abs() < 1e-3 && (x.im - y.im).abs() < 1e-3);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index of each position.
    rev: Vec<usize>,
    /// Twiddles for every butterfly stage, concatenated: `len/2` entries for
    /// each stage `len = 2, 4, …, n` (`n - 1` in total).
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of `n` points.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NonPowerOfTwoFft`] when `n` is not a power of
    /// two, and [`DspError::EmptyInput`] when it is zero.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyInput);
        }
        if !is_pow2(n) {
            return Err(DspError::NonPowerOfTwoFft { len: n });
        }
        let bits = n.trailing_zeros();
        let rev = if n == 1 {
            vec![0]
        } else {
            (0..n)
                .map(|i| i.reverse_bits() >> (usize::BITS - bits))
                .collect()
        };
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            for k in 0..half {
                let ang = -2.0 * std::f32::consts::PI * k as f32 / len as f32;
                twiddles.push(Complex::new(ang.cos(), ang.sin()));
            }
            len <<= 1;
        }
        Ok(Self { n, rev, twiddles })
    }

    /// The transform size this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: plans cannot be built for zero points.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward FFT of `buf` using the precomputed tables.
    /// Unnormalized, exactly like [`fft_inplace`].
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] when `buf.len()` differs from
    /// the planned size.
    pub fn process(&self, buf: &mut [Complex]) -> Result<(), DspError> {
        if buf.len() != self.n {
            return Err(DspError::LengthMismatch {
                expected: self.n,
                actual: buf.len(),
            });
        }
        if self.n == 1 {
            return Ok(());
        }
        for (i, &j) in self.rev.iter().enumerate() {
            if j > i {
                buf.swap(i, j);
            }
        }
        let mut len = 2;
        let mut offset = 0;
        while len <= self.n {
            let half = len / 2;
            let tw = &self.twiddles[offset..offset + half];
            for chunk in buf.chunks_mut(len) {
                for (k, &w) in tw.iter().enumerate() {
                    let u = chunk[k];
                    let v = chunk[k + half] * w;
                    chunk[k] = u + v;
                    chunk[k + half] = u - v;
                }
            }
            offset += half;
            len <<= 1;
        }
        Ok(())
    }

    /// Magnitude spectrum of a real signal (first `n/2 + 1` bins), writing
    /// into caller-provided buffers so the steady state allocates nothing:
    /// `work` holds the complex transform, `out` the magnitudes.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] when `signal.len()` differs from
    /// the planned size.
    pub fn rfft_magnitude_into(
        &self,
        signal: &[f32],
        work: &mut Vec<Complex>,
        out: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        if signal.len() != self.n {
            return Err(DspError::LengthMismatch {
                expected: self.n,
                actual: signal.len(),
            });
        }
        work.clear();
        work.extend(signal.iter().map(|&x| Complex::new(x, 0.0)));
        self.process(work)?;
        out.clear();
        out.extend(work[..self.n / 2 + 1].iter().map(|c| c.abs()));
        Ok(())
    }
}

/// In-place inverse FFT, normalized by `1/N`.
///
/// # Errors
///
/// Same conditions as [`fft_inplace`].
///
/// # Example
///
/// ```
/// use dsp::{fft_inplace, ifft_inplace, Complex};
/// # fn main() -> Result<(), dsp::DspError> {
/// let orig: Vec<Complex> = (0..16).map(|i| Complex::new(i as f32, 0.0)).collect();
/// let mut buf = orig.clone();
/// fft_inplace(&mut buf)?;
/// ifft_inplace(&mut buf)?;
/// for (a, b) in orig.iter().zip(&buf) {
///     assert!((a.re - b.re).abs() < 1e-3);
/// }
/// # Ok(())
/// # }
/// ```
pub fn ifft_inplace(buf: &mut [Complex]) -> Result<(), DspError> {
    for v in buf.iter_mut() {
        *v = v.conj();
    }
    fft_inplace(buf)?;
    let scale = 1.0 / buf.len() as f32;
    for v in buf.iter_mut() {
        *v = Complex::new(v.re * scale, -v.im * scale);
    }
    Ok(())
}

/// Magnitude spectrum of a real signal: `|FFT(x)|` for the first `N/2 + 1`
/// bins (the rest are conjugate-symmetric and carry no extra information).
///
/// # Errors
///
/// Returns [`DspError::NonPowerOfTwoFft`] when `signal.len()` is not a power
/// of two, and [`DspError::EmptyInput`] when it is empty.
///
/// # Example
///
/// ```
/// use dsp::rfft_magnitude;
/// # fn main() -> Result<(), dsp::DspError> {
/// // A pure cosine at bin 4 of a 64-point transform.
/// let signal: Vec<f32> = (0..64)
///     .map(|i| (2.0 * std::f32::consts::PI * 4.0 * i as f32 / 64.0).cos())
///     .collect();
/// let mag = rfft_magnitude(&signal)?;
/// assert_eq!(mag.len(), 33);
/// let peak = mag
///     .iter()
///     .enumerate()
///     .max_by(|a, b| a.1.total_cmp(b.1))
///     .map(|(i, _)| i);
/// assert_eq!(peak, Some(4));
/// # Ok(())
/// # }
/// ```
pub fn rfft_magnitude(signal: &[f32]) -> Result<Vec<f32>, DspError> {
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft_inplace(&mut buf)?;
    Ok(buf[..signal.len() / 2 + 1]
        .iter()
        .map(|c| c.abs())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut buf = vec![Complex::zero(); 12];
        assert_eq!(
            fft_inplace(&mut buf),
            Err(DspError::NonPowerOfTwoFft { len: 12 })
        );
    }

    #[test]
    fn rejects_empty() {
        let mut buf: Vec<Complex> = vec![];
        assert_eq!(fft_inplace(&mut buf), Err(DspError::EmptyInput));
    }

    #[test]
    fn length_one_is_identity() {
        let mut buf = vec![Complex::new(3.5, -1.0)];
        fft_inplace(&mut buf).unwrap();
        assert_eq!(buf[0], Complex::new(3.5, -1.0));
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut buf = vec![Complex::zero(); 32];
        buf[0] = Complex::new(1.0, 0.0);
        fft_inplace(&mut buf).unwrap();
        for c in &buf {
            assert_close(c.abs(), 1.0, 1e-5);
        }
    }

    #[test]
    fn sine_concentrates_in_two_bins() {
        let n = 128;
        let k = 7;
        let signal: Vec<Complex> = (0..n)
            .map(|i| {
                Complex::new(
                    (2.0 * std::f32::consts::PI * k as f32 * i as f32 / n as f32).sin(),
                    0.0,
                )
            })
            .collect();
        let mut buf = signal;
        fft_inplace(&mut buf).unwrap();
        assert_close(buf[k].abs(), n as f32 / 2.0, 1e-2);
        assert_close(buf[n - k].abs(), n as f32 / 2.0, 1e-2);
        // Everything else is near zero.
        for (i, c) in buf.iter().enumerate() {
            if i != k && i != n - k {
                assert!(c.abs() < 1e-2, "bin {i} = {}", c.abs());
            }
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 64;
        let signal: Vec<f32> = (0..n).map(|i| ((i * 37 % 17) as f32 - 8.0) / 8.0).collect();
        let time_energy: f32 = signal.iter().map(|x| x * x).sum();
        let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft_inplace(&mut buf).unwrap();
        let freq_energy: f32 = buf.iter().map(|c| c.abs() * c.abs()).sum::<f32>() / n as f32;
        assert_close(time_energy, freq_energy, 1e-2);
    }

    #[test]
    fn plan_matches_fft_inplace() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            let plan = FftPlan::new(n).unwrap();
            assert_eq!(plan.len(), n);
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
                .collect();
            let mut a = signal.clone();
            let mut b = signal;
            plan.process(&mut a).unwrap();
            fft_inplace(&mut b).unwrap();
            let scale = (n as f32).max(1.0);
            for (x, y) in a.iter().zip(&b) {
                assert_close(x.re, y.re, 1e-3 * scale);
                assert_close(x.im, y.im, 1e-3 * scale);
            }
        }
    }

    #[test]
    fn plan_rejects_bad_sizes() {
        assert!(matches!(FftPlan::new(0), Err(DspError::EmptyInput)));
        assert!(matches!(
            FftPlan::new(12),
            Err(DspError::NonPowerOfTwoFft { len: 12 })
        ));
        let plan = FftPlan::new(8).unwrap();
        let mut buf = vec![Complex::zero(); 4];
        assert_eq!(
            plan.process(&mut buf),
            Err(DspError::LengthMismatch {
                expected: 8,
                actual: 4
            })
        );
    }

    #[test]
    fn plan_rfft_matches_rfft_magnitude() {
        let n = 128;
        let signal: Vec<f32> = (0..n).map(|i| (i as f32 * 0.23).sin()).collect();
        let plan = FftPlan::new(n).unwrap();
        let mut work = Vec::new();
        let mut out = Vec::new();
        plan.rfft_magnitude_into(&signal, &mut work, &mut out)
            .unwrap();
        let reference = rfft_magnitude(&signal).unwrap();
        assert_eq!(out.len(), reference.len());
        for (a, b) in out.iter().zip(&reference) {
            assert_close(*a, *b, 1e-2);
        }
        assert!(plan
            .rfft_magnitude_into(&signal[..64], &mut work, &mut out)
            .is_err());
    }

    #[test]
    fn rfft_magnitude_len_is_half_plus_one() {
        let signal = vec![0.0f32; 256];
        assert_eq!(rfft_magnitude(&signal).unwrap().len(), 129);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Complex> = (0..n).map(|i| Complex::new((i % 5) as f32, 0.0)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new((i % 3) as f32, 0.5)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();

        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        fft_inplace(&mut fa).unwrap();
        fft_inplace(&mut fb).unwrap();
        fft_inplace(&mut fs).unwrap();
        for i in 0..n {
            let expect = fa[i] + fb[i];
            assert_close(fs[i].re, expect.re, 1e-3);
            assert_close(fs[i].im, expect.im, 1e-3);
        }
    }
}
