//! Overlapping frame segmentation of a signal.

use crate::DspError;

/// Iterator over overlapping frames of a signal.
///
/// Created by [`Frames::new`]. Frames shorter than `frame_len` at the end of
/// the signal are dropped (standard practice for feature extraction — a
/// partial frame would bias spectral estimates).
///
/// # Example
///
/// ```
/// use dsp::Frames;
/// # fn main() -> Result<(), dsp::DspError> {
/// let signal: Vec<f32> = (0..10).map(|i| i as f32).collect();
/// let frames: Vec<&[f32]> = Frames::new(&signal, 4, 2)?.collect();
/// assert_eq!(frames.len(), 4);
/// assert_eq!(frames[1], &[2.0, 3.0, 4.0, 5.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Frames<'a> {
    signal: &'a [f32],
    frame_len: usize,
    hop: usize,
    pos: usize,
}

impl<'a> Frames<'a> {
    /// Creates a frame iterator with the given frame length and hop size.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when `frame_len` or `hop` is
    /// zero.
    pub fn new(signal: &'a [f32], frame_len: usize, hop: usize) -> Result<Self, DspError> {
        if frame_len == 0 {
            return Err(DspError::InvalidParameter {
                name: "frame_len",
                reason: "must be non-zero",
            });
        }
        if hop == 0 {
            return Err(DspError::InvalidParameter {
                name: "hop",
                reason: "must be non-zero",
            });
        }
        Ok(Self {
            signal,
            frame_len,
            hop,
            pos: 0,
        })
    }

    /// Number of full frames this iterator will yield.
    pub fn count_frames(&self) -> usize {
        if self.signal.len() < self.frame_len {
            0
        } else {
            (self.signal.len() - self.frame_len) / self.hop + 1
        }
    }
}

impl<'a> Iterator for Frames<'a> {
    type Item = &'a [f32];

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos + self.frame_len > self.signal.len() {
            return None;
        }
        let frame = &self.signal[self.pos..self.pos + self.frame_len];
        self.pos += self.hop;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.pos + self.frame_len > self.signal.len() {
            0
        } else {
            (self.signal.len() - self.pos - self.frame_len) / self.hop + 1
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Frames<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_parameters() {
        let s = [1.0f32; 8];
        assert!(Frames::new(&s, 0, 1).is_err());
        assert!(Frames::new(&s, 4, 0).is_err());
    }

    #[test]
    fn short_signal_yields_nothing() {
        let s = [1.0f32; 3];
        let mut it = Frames::new(&s, 4, 2).unwrap();
        assert_eq!(it.next(), None);
        assert_eq!(it.count_frames(), 0);
    }

    #[test]
    fn exact_fit_yields_one_frame() {
        let s = [1.0f32, 2.0, 3.0, 4.0];
        let frames: Vec<_> = Frames::new(&s, 4, 4).unwrap().collect();
        assert_eq!(frames.len(), 1);
    }

    #[test]
    fn non_overlapping() {
        let s: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let frames: Vec<_> = Frames::new(&s, 2, 2).unwrap().collect();
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[3], &[6.0, 7.0]);
    }

    #[test]
    fn count_matches_iteration() {
        let s: Vec<f32> = vec![0.0; 100];
        for (fl, hop) in [(10, 5), (16, 16), (7, 3), (100, 1)] {
            let it = Frames::new(&s, fl, hop).unwrap();
            assert_eq!(it.count_frames(), it.clone().count(), "fl={fl} hop={hop}");
        }
    }

    #[test]
    fn size_hint_is_exact() {
        let s: Vec<f32> = vec![0.0; 50];
        let mut it = Frames::new(&s, 10, 4).unwrap();
        let mut expected = it.count_frames();
        while let (lo, Some(hi)) = it.size_hint() {
            assert_eq!(lo, hi);
            assert_eq!(lo, expected);
            if it.next().is_none() {
                break;
            }
            expected -= 1;
        }
    }
}
