//! Signal-processing kernels used throughout the `affectsys` reproduction of
//! *"Human Emotion Based Real-time Memory and Computation Management on
//! Resource-Limited Edge Devices"* (DAC 2022).
//!
//! The paper's affect classifiers consume audio features — Mel-frequency
//! cepstral coefficients (MFCC), zero-crossing rate, root-mean-square energy,
//! pitch, and spectral magnitude — extracted from short windows of the input
//! signal. This crate provides those kernels from scratch, with no external
//! numeric dependencies, so the whole feature path is auditable and
//! deterministic.
//!
//! # Example
//!
//! Extract a 13-coefficient MFCC vector from one frame of a synthetic tone:
//!
//! ```
//! use dsp::{mel::MfccExtractor, window::Window};
//!
//! # fn main() -> Result<(), dsp::DspError> {
//! let sample_rate = 16_000.0;
//! let frame: Vec<f32> = (0..512)
//!     .map(|i| (2.0 * std::f32::consts::PI * 440.0 * i as f32 / sample_rate).sin())
//!     .collect();
//! let extractor = MfccExtractor::new(sample_rate, 512, 26, 13)?;
//! let mfcc = extractor.extract(&frame)?;
//! assert_eq!(mfcc.len(), 13);
//! # Ok(())
//! # }
//! ```

// `!(x > 0.0)` guards are deliberate: unlike `x <= 0.0` they also reject
// NaN, which is exactly what the parameter validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod error;
pub mod features;
pub mod fft;
pub mod frame;
pub mod mel;
pub mod stats;
pub mod window;

pub use error::DspError;
pub use features::{pitch_autocorrelation, rms, spectral_magnitude, zero_crossing_rate};
pub use fft::{fft_inplace, ifft_inplace, rfft_magnitude, Complex, FftPlan};
pub use frame::Frames;
pub use mel::{hz_to_mel, mel_to_hz, MelFilterBank, MfccExtractor};
pub use window::Window;
