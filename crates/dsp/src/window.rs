//! Analysis window functions.
//!
//! Emotional-speech features in the paper are computed over short overlapping
//! frames; windows taper frame edges to limit spectral leakage before the FFT.

use crate::DspError;

/// A window function applied to an analysis frame before the FFT.
///
/// # Example
///
/// ```
/// use dsp::Window;
/// let coeffs = Window::Hann.coefficients(8);
/// assert_eq!(coeffs.len(), 8);
/// assert!(coeffs[0].abs() < 1e-6); // Hann starts at zero
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Window {
    /// No tapering; all coefficients are one.
    Rectangular,
    /// Hann (raised cosine) window — the default for MFCC extraction.
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window (three-term).
    Blackman,
}

impl Window {
    /// Returns the window coefficients for a frame of `len` samples.
    ///
    /// For `len == 1` the single coefficient is `1.0` for every window so a
    /// degenerate frame is passed through unchanged.
    pub fn coefficients(self, len: usize) -> Vec<f32> {
        if len <= 1 {
            return vec![1.0; len];
        }
        let denom = (len - 1) as f32;
        (0..len)
            .map(|i| {
                let x = i as f32 / denom;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * (2.0 * std::f32::consts::PI * x).cos(),
                    Window::Hamming => 0.54 - 0.46 * (2.0 * std::f32::consts::PI * x).cos(),
                    Window::Blackman => {
                        0.42 - 0.5 * (2.0 * std::f32::consts::PI * x).cos()
                            + 0.08 * (4.0 * std::f32::consts::PI * x).cos()
                    }
                }
            })
            .collect()
    }

    /// Multiplies `frame` by this window in place.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty frame.
    ///
    /// # Example
    ///
    /// ```
    /// use dsp::Window;
    /// # fn main() -> Result<(), dsp::DspError> {
    /// let mut frame = vec![1.0f32; 16];
    /// Window::Hamming.apply(&mut frame)?;
    /// assert!(frame[0] < frame[8]); // edges are attenuated
    /// # Ok(())
    /// # }
    /// ```
    pub fn apply(self, frame: &mut [f32]) -> Result<(), DspError> {
        if frame.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let coeffs = self.coefficients(frame.len());
        for (s, c) in frame.iter_mut().zip(coeffs) {
            *s *= c;
        }
        Ok(())
    }
}

impl std::fmt::Display for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Window::Rectangular => "rectangular",
            Window::Hann => "hann",
            Window::Hamming => "hamming",
            Window::Blackman => "blackman",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(9)
            .iter()
            .all(|&c| c == 1.0));
    }

    #[test]
    fn hann_is_symmetric_and_peaks_in_middle() {
        let c = Window::Hann.coefficients(33);
        for i in 0..c.len() {
            assert!((c[i] - c[c.len() - 1 - i]).abs() < 1e-6);
        }
        assert!((c[16] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hamming_edges_are_nonzero() {
        let c = Window::Hamming.coefficients(16);
        assert!((c[0] - 0.08).abs() < 1e-6);
    }

    #[test]
    fn blackman_edges_near_zero() {
        let c = Window::Blackman.coefficients(16);
        assert!(c[0].abs() < 1e-6);
    }

    #[test]
    fn apply_rejects_empty() {
        let mut frame: Vec<f32> = vec![];
        assert_eq!(Window::Hann.apply(&mut frame), Err(DspError::EmptyInput));
    }

    #[test]
    fn single_sample_passthrough() {
        let mut frame = vec![2.0f32];
        Window::Hann.apply(&mut frame).unwrap();
        assert_eq!(frame[0], 2.0);
    }

    #[test]
    fn all_windows_bounded_zero_to_one() {
        for w in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
        ] {
            for c in w.coefficients(64) {
                assert!((-1e-6..=1.0 + 1e-6).contains(&c), "{w}: {c}");
            }
        }
    }
}
