//! Time-domain and spectral features used by the affect classifiers.
//!
//! Besides MFCCs the paper lists zero-crossing rate, root-mean-square energy
//! (`rmse`), pitch, and spectral magnitude as classifier inputs.

use crate::fft::rfft_magnitude;
use crate::DspError;

/// Zero-crossing rate: fraction of adjacent sample pairs whose signs differ.
///
/// Returns a value in `[0, 1]`. Unvoiced/fricative (and noisy, agitated)
/// speech has a markedly higher ZCR than voiced speech, which is why it is a
/// cheap arousal cue.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for signals with fewer than two samples.
///
/// # Example
///
/// ```
/// use dsp::zero_crossing_rate;
/// # fn main() -> Result<(), dsp::DspError> {
/// let alternating = [1.0f32, -1.0, 1.0, -1.0, 1.0];
/// assert!((zero_crossing_rate(&alternating)? - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn zero_crossing_rate(signal: &[f32]) -> Result<f32, DspError> {
    if signal.len() < 2 {
        return Err(DspError::EmptyInput);
    }
    let crossings = signal
        .windows(2)
        .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
        .count();
    Ok(crossings as f32 / (signal.len() - 1) as f32)
}

/// Root-mean-square amplitude of a signal (the paper's `rmse` feature).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
///
/// # Example
///
/// ```
/// use dsp::rms;
/// # fn main() -> Result<(), dsp::DspError> {
/// assert!((rms(&[3.0, -4.0])? - (12.5f32).sqrt()).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn rms(signal: &[f32]) -> Result<f32, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let energy: f32 = signal.iter().map(|x| x * x).sum();
    Ok((energy / signal.len() as f32).sqrt())
}

/// Fundamental-frequency estimate by normalized autocorrelation peak picking.
///
/// Searches lags corresponding to `min_hz..=max_hz` and returns the frequency
/// whose normalized autocorrelation is maximal, or `None` when the frame is
/// aperiodic (peak below an internal voicing threshold of 0.3) or silent.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when the frequency range is empty
/// or not representable at this `sample_rate`/frame length.
///
/// # Example
///
/// ```
/// use dsp::pitch_autocorrelation;
/// # fn main() -> Result<(), dsp::DspError> {
/// let sr = 8000.0;
/// let frame: Vec<f32> = (0..800)
///     .map(|i| (2.0 * std::f32::consts::PI * 200.0 * i as f32 / sr).sin())
///     .collect();
/// let f0 = pitch_autocorrelation(&frame, sr, 80.0, 400.0)?.expect("voiced");
/// assert!((f0 - 200.0).abs() < 10.0);
/// # Ok(())
/// # }
/// ```
pub fn pitch_autocorrelation(
    frame: &[f32],
    sample_rate: f32,
    min_hz: f32,
    max_hz: f32,
) -> Result<Option<f32>, DspError> {
    if !(sample_rate > 0.0) {
        return Err(DspError::InvalidParameter {
            name: "sample_rate",
            reason: "must be positive",
        });
    }
    if !(min_hz > 0.0) || max_hz <= min_hz {
        return Err(DspError::InvalidParameter {
            name: "min_hz/max_hz",
            reason: "need 0 < min_hz < max_hz",
        });
    }
    let min_lag = (sample_rate / max_hz).floor() as usize;
    let max_lag = (sample_rate / min_hz).ceil() as usize;
    if min_lag == 0 || max_lag >= frame.len() {
        return Err(DspError::InvalidParameter {
            name: "frame",
            reason: "frame too short for the requested pitch range",
        });
    }

    let energy: f32 = frame.iter().map(|x| x * x).sum();
    if energy < 1e-12 {
        return Ok(None); // silence
    }

    let mut corrs = Vec::with_capacity(max_lag - min_lag + 1);
    let mut best_corr = 0.0f32;
    for lag in min_lag..=max_lag {
        let n = frame.len() - lag;
        let mut num = 0.0f32;
        let mut e0 = 0.0f32;
        let mut e1 = 0.0f32;
        for i in 0..n {
            num += frame[i] * frame[i + lag];
            e0 += frame[i] * frame[i];
            e1 += frame[i + lag] * frame[i + lag];
        }
        let denom = (e0 * e1).sqrt();
        let corr = if denom > 1e-12 { num / denom } else { 0.0 };
        corrs.push(corr);
        best_corr = best_corr.max(corr);
    }

    const VOICING_THRESHOLD: f32 = 0.3;
    if best_corr < VOICING_THRESHOLD {
        return Ok(None);
    }
    // Sub-octave correction: a lag of 2×, 3×… the true period correlates
    // just as well, so take the *smallest* lag whose correlation is within a
    // small tolerance of the peak.
    const OCTAVE_TOLERANCE: f32 = 0.02;
    let lag = corrs
        .iter()
        .position(|&c| c >= best_corr - OCTAVE_TOLERANCE)
        .map(|i| i + min_lag)
        .unwrap_or(min_lag);
    Ok(Some(sample_rate / lag as f32))
}

/// Summary statistics of the magnitude spectrum: `(mean, peak, centroid_hz)`.
///
/// The paper's feature list includes a raw "magnitude" feature; the spectral
/// centroid is included because it is the standard scalar summary of where
/// the magnitude mass sits, and brightness correlates with arousal.
///
/// # Errors
///
/// Propagates FFT errors (non-power-of-two or empty frames) and rejects a
/// non-positive `sample_rate`.
pub fn spectral_magnitude(frame: &[f32], sample_rate: f32) -> Result<SpectralSummary, DspError> {
    if !(sample_rate > 0.0) {
        return Err(DspError::InvalidParameter {
            name: "sample_rate",
            reason: "must be positive",
        });
    }
    let mag = rfft_magnitude(frame)?;
    let sum: f32 = mag.iter().sum();
    let mean = sum / mag.len() as f32;
    let peak = mag.iter().fold(0.0f32, |a, &b| a.max(b));
    let centroid_hz = if sum > 1e-12 {
        let bin_hz = sample_rate / frame.len() as f32;
        mag.iter()
            .enumerate()
            .map(|(i, &m)| i as f32 * bin_hz * m)
            .sum::<f32>()
            / sum
    } else {
        0.0
    };
    Ok(SpectralSummary {
        mean,
        peak,
        centroid_hz,
    })
}

/// Scalar summary of a magnitude spectrum returned by [`spectral_magnitude`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpectralSummary {
    /// Mean bin magnitude.
    pub mean: f32,
    /// Largest bin magnitude.
    pub peak: f32,
    /// Magnitude-weighted mean frequency in hertz.
    pub centroid_hz: f32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcr_of_constant_is_zero() {
        assert_eq!(zero_crossing_rate(&[1.0; 16]).unwrap(), 0.0);
    }

    #[test]
    fn zcr_rejects_tiny_input() {
        assert!(zero_crossing_rate(&[1.0]).is_err());
        assert!(zero_crossing_rate(&[]).is_err());
    }

    #[test]
    fn zcr_scales_with_frequency() {
        let sr = 8000.0;
        let tone = |hz: f32| -> Vec<f32> {
            (0..800)
                .map(|i| (2.0 * std::f32::consts::PI * hz * i as f32 / sr).sin())
                .collect()
        };
        let low = zero_crossing_rate(&tone(100.0)).unwrap();
        let high = zero_crossing_rate(&tone(1000.0)).unwrap();
        assert!(high > low * 5.0, "low={low} high={high}");
    }

    #[test]
    fn rms_of_unit_square_wave_is_one() {
        let sq: Vec<f32> = (0..64)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!((rms(&sq).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rms_rejects_empty() {
        assert_eq!(rms(&[]), Err(DspError::EmptyInput));
    }

    #[test]
    fn pitch_detects_150hz() {
        let sr = 16_000.0;
        let frame: Vec<f32> = (0..1600)
            .map(|i| (2.0 * std::f32::consts::PI * 150.0 * i as f32 / sr).sin())
            .collect();
        let f0 = pitch_autocorrelation(&frame, sr, 60.0, 500.0)
            .unwrap()
            .expect("voiced frame");
        assert!((f0 - 150.0).abs() < 8.0, "f0={f0}");
    }

    #[test]
    fn pitch_returns_none_for_silence() {
        let frame = vec![0.0f32; 1600];
        assert_eq!(
            pitch_autocorrelation(&frame, 16_000.0, 60.0, 500.0).unwrap(),
            None
        );
    }

    #[test]
    fn pitch_returns_none_for_white_noise() {
        // Deterministic pseudo-noise via an LCG.
        let mut state = 0x2545F491u64;
        let frame: Vec<f32> = (0..1600)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f32 / (1u64 << 30) as f32) - 1.0
            })
            .collect();
        let result = pitch_autocorrelation(&frame, 16_000.0, 60.0, 500.0).unwrap();
        assert_eq!(result, None, "noise should be unvoiced, got {result:?}");
    }

    #[test]
    fn pitch_rejects_invalid_range() {
        let frame = vec![0.0f32; 100];
        assert!(pitch_autocorrelation(&frame, 16_000.0, 500.0, 100.0).is_err());
        assert!(pitch_autocorrelation(&frame, 16_000.0, 0.0, 100.0).is_err());
        // Frame too short for 60 Hz at 16 kHz (needs lag 267).
        assert!(pitch_autocorrelation(&frame, 16_000.0, 60.0, 500.0).is_err());
    }

    #[test]
    fn centroid_tracks_tone_frequency() {
        let sr = 16_000.0;
        let tone = |hz: f32| -> Vec<f32> {
            (0..512)
                .map(|i| (2.0 * std::f32::consts::PI * hz * i as f32 / sr).sin())
                .collect()
        };
        let lo = spectral_magnitude(&tone(500.0), sr).unwrap();
        let hi = spectral_magnitude(&tone(4000.0), sr).unwrap();
        assert!(hi.centroid_hz > lo.centroid_hz + 2000.0);
        assert!((lo.centroid_hz - 500.0).abs() < 400.0, "{}", lo.centroid_hz);
    }

    #[test]
    fn spectral_summary_of_silence_is_zero() {
        let s = spectral_magnitude(&[0.0; 256], 16_000.0).unwrap();
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.peak, 0.0);
        assert_eq!(s.centroid_hz, 0.0);
    }
}
