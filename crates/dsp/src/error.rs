//! Error type shared by all DSP kernels.

use std::error::Error;
use std::fmt;

/// Error returned by fallible DSP operations.
///
/// Every variant carries enough context to diagnose the failing call without
/// a debugger; messages are lowercase and concise per Rust API guidelines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DspError {
    /// An FFT length that is not a power of two was requested.
    NonPowerOfTwoFft {
        /// The offending length.
        len: usize,
    },
    /// A frame or buffer had a different length than the kernel expects.
    LengthMismatch {
        /// Length the kernel expected.
        expected: usize,
        /// Length it received.
        actual: usize,
    },
    /// A configuration parameter was zero or otherwise out of range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: &'static str,
    },
    /// The input signal was empty where a non-empty signal is required.
    EmptyInput,
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::NonPowerOfTwoFft { len } => {
                write!(f, "fft length {len} is not a power of two")
            }
            DspError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            DspError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DspError::EmptyInput => write!(f, "input signal is empty"),
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = DspError::NonPowerOfTwoFft { len: 300 };
        let msg = e.to_string();
        assert!(msg.contains("300"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }

    #[test]
    fn length_mismatch_reports_both_lengths() {
        let e = DspError::LengthMismatch {
            expected: 512,
            actual: 256,
        };
        let msg = e.to_string();
        assert!(msg.contains("512") && msg.contains("256"));
    }
}
