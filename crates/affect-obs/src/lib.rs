//! `affect-obs`: the workspace's observability layer — live metrics and
//! span timing for the closed affect loop, with zero allocations on the
//! warm path.
//!
//! The paper's system (DAC 2022) reacts to *measured* state: emotion
//! decisions flip decoder knobs, deadline misses degrade classifier
//! families, memory pressure kills apps. Until this crate, all of that was
//! visible only post-hoc through `affect_rt`'s `RuntimeReport`. `affect-obs`
//! makes it visible *live*:
//!
//! - [`MetricsRegistry`] — a process-wide (or per-component) registry of
//!   named metrics: monotonic [`Counter`]s, last-value [`Gauge`]s, and
//!   log2-bucketed [`Histogram`]s. Registration (cold path) allocates;
//!   every update (warm path) is a handful of relaxed atomics and never
//!   touches the heap — proven by the `alloc-counter` tests.
//! - [`Span`] — RAII stage timing: [`Span::enter`] stamps a start time from
//!   a pluggable [`Clock`] and the drop records the elapsed nanoseconds
//!   into a histogram. The same [`Clock`] trait the `affect-rt` runtime
//!   uses ([`SystemClock`] in production, [`VirtualClock`] in tests), so
//!   span durations are deterministic under test.
//! - [`Recorder`] — a visitor over the registry's current values.
//!   [`render_prometheus`] is one recorder (Prometheus text exposition
//!   format); tests swap in a [`CaptureRecorder`] and assert on the
//!   captured samples directly.
//! - `server` (feature `obs-server`) — a tiny blocking TCP endpoint that
//!   serves `GET /metrics` so `curl localhost:9464/metrics` works against
//!   a running example with no HTTP dependency.
//!
//! # Conventions
//!
//! Metric names follow Prometheus style: `snake_case`, subsystem prefix
//! (`affect_rt_`, `h264_`, `mobile_sim_`), unit suffix (`_total` for
//! counters, `_ns` / `_bytes` for quantities). Labels are fixed at
//! registration time — the registry hands out one handle per distinct
//! `(name, labels)` pair, so the warm path never formats or hashes label
//! strings. See `docs/OBSERVABILITY.md` for the full metric catalogue.
//!
//! # Example
//!
//! ```
//! use affect_obs::{MetricsRegistry, Span, VirtualClock};
//!
//! let registry = MetricsRegistry::new();
//! let windows = registry.counter("demo_windows_total", "Windows processed.", &[]);
//! let latency = registry.histogram("demo_latency_ns", "Per-window latency.", &[]);
//!
//! let clock = VirtualClock::new();
//! {
//!     let _span = Span::enter(&latency, &clock);
//!     clock.advance(1_500); // the timed work
//!     windows.inc();
//! } // span drop records 1500 ns
//!
//! assert_eq!(windows.get(), 1);
//! assert_eq!(latency.count(), 1);
//! let text = registry.render_prometheus();
//! assert!(text.contains("demo_windows_total 1"));
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod prometheus;
pub mod recorder;
pub mod registry;
#[cfg(feature = "obs-server")]
pub mod server;
pub mod span;

pub use clock::{Clock, SystemClock, VirtualClock};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, LatencySummary, BUCKETS};
pub use prometheus::render_prometheus;
pub use recorder::{
    CaptureRecorder, CapturedSample, CapturedValue, MetricDesc, Observation, Recorder,
};
pub use registry::{MetricKind, MetricsRegistry};
#[cfg(feature = "obs-server")]
pub use server::MetricsServer;
pub use span::Span;
