//! A tiny blocking `/metrics` endpoint (feature `obs-server`).
//!
//! One listener thread, one connection at a time, HTTP/1.0-style
//! responses: exactly enough for `curl localhost:9464/metrics` or a
//! Prometheus scrape against a demo, with zero dependencies. Not a web
//! server — anything other than `GET /metrics` gets a 404 and the
//! connection closes after every response.
//!
//! ```no_run
//! use std::sync::Arc;
//! use affect_obs::{MetricsRegistry, MetricsServer};
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let server = MetricsServer::serve(Arc::clone(&registry), "127.0.0.1:9464").unwrap();
//! println!("metrics at http://{}/metrics", server.local_addr());
//! // ... run the workload; drop the server to stop it.
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::registry::MetricsRegistry;

/// A running metrics endpoint. Stops (and joins its thread) on drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`, or port 0 for an ephemeral
    /// port) and serves `registry`'s Prometheus rendering at
    /// `GET /metrics` until the server is dropped.
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission) verbatim.
    pub fn serve(
        registry: Arc<MetricsRegistry>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    // One request per connection; errors just drop the
                    // connection (the scraper retries).
                    let _ = handle_connection(stream, &registry);
                }
            }
        });
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn handle_connection(stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers until the blank line so curl sees a clean exchange.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method == "GET" && (path == "/metrics" || path == "/") {
        let body = registry.render_prometheus();
        write!(
            stream,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    } else {
        let body = "not found; try /metrics\n";
        write!(
            stream,
            "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("served_total", "hits", &[]).add(42);
        let server = MetricsServer::serve(Arc::clone(&registry), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let ok = http_get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.0 200"), "{ok}");
        assert!(ok.contains("served_total 42"), "{ok}");

        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");

        // Values are read at request time, not bind time.
        registry.counter("served_total", "hits", &[]).inc();
        let again = http_get(addr, "/metrics");
        assert!(again.contains("served_total 43"), "{again}");
    }
}
