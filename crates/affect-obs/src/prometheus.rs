//! Prometheus text exposition (format version 0.0.4).
//!
//! [`render_prometheus`] walks a registry and renders every series as
//! `# HELP` / `# TYPE` headers plus one `name{labels} value` line per
//! sample. Histograms expose the standard `_bucket{le=...}` cumulative
//! series (the log2 buckets' inclusive upper bounds), `_sum`, and
//! `_count`, so any Prometheus scraper — or a plain `curl` — can consume
//! the output.
//!
//! Rendering is a cold-path operation: it takes the registry lock, reads
//! every atomic once, and allocates the output string. The warm path
//! (metric updates) is untouched.

use std::fmt::Write as _;

use crate::metrics::Histogram;
use crate::recorder::{MetricDesc, Observation, Recorder};
use crate::registry::{MetricKind, MetricsRegistry};

/// Renders every registered series in the Prometheus text format.
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    let mut r = PrometheusRecorder::default();
    registry.visit(&mut r);
    r.out
}

#[derive(Default)]
struct PrometheusRecorder {
    out: String,
    /// Names whose HELP/TYPE header is already emitted (label variants of
    /// one name share a single header).
    announced: Vec<String>,
}

impl PrometheusRecorder {
    fn announce(&mut self, desc: &MetricDesc<'_>) {
        if self.announced.iter().any(|n| n == desc.name) {
            return;
        }
        let kind = match desc.kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        };
        let _ = writeln!(self.out, "# HELP {} {}", desc.name, escape_help(desc.help));
        let _ = writeln!(self.out, "# TYPE {} {}", desc.name, kind);
        self.announced.push(desc.name.to_string());
    }

    fn label_block(labels: &[(String, String)]) -> String {
        if labels.is_empty() {
            return String::new();
        }
        let body: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    fn label_block_with(labels: &[(String, String)], extra_key: &str, extra_val: &str) -> String {
        let mut body: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        body.push(format!("{extra_key}=\"{}\"", escape_label(extra_val)));
        format!("{{{}}}", body.join(","))
    }
}

impl Recorder for PrometheusRecorder {
    fn record(&mut self, desc: &MetricDesc<'_>, value: Observation<'_>) {
        self.announce(desc);
        let labels = Self::label_block(desc.labels);
        match value {
            Observation::Counter(v) => {
                let _ = writeln!(self.out, "{}{} {}", desc.name, labels, v);
            }
            Observation::Gauge(v) => {
                let _ = writeln!(self.out, "{}{} {}", desc.name, labels, v);
            }
            Observation::Histogram(h) => {
                let top = h.highest_bucket().map(|i| i + 1).unwrap_or(0);
                let mut cumulative = 0u64;
                for i in 0..top {
                    cumulative += h.buckets[i];
                    let le = Histogram::bucket_upper_bound(i);
                    let lb = Self::label_block_with(desc.labels, "le", &le.to_string());
                    let _ = writeln!(self.out, "{}_bucket{} {}", desc.name, lb, cumulative);
                }
                let inf = Self::label_block_with(desc.labels, "le", "+Inf");
                let _ = writeln!(self.out, "{}_bucket{} {}", desc.name, inf, h.count);
                let _ = writeln!(self.out, "{}_sum{} {}", desc.name, labels, h.sum);
                let _ = writeln!(self.out, "{}_count{} {}", desc.name, labels, h.count);
            }
        }
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_one_line_each() {
        let r = MetricsRegistry::new();
        r.counter("a_total", "events", &[("stage", "ingest")])
            .add(7);
        r.gauge("b_depth", "queue depth", &[]).set(-3);
        let text = render_prometheus(&r);
        assert!(text.contains("# HELP a_total events"), "{text}");
        assert!(text.contains("# TYPE a_total counter"), "{text}");
        assert!(text.contains("a_total{stage=\"ingest\"} 7"), "{text}");
        assert!(text.contains("# TYPE b_depth gauge"), "{text}");
        assert!(text.contains("b_depth -3"), "{text}");
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat_ns", "latency", &[]);
        h.record(1); // bucket 0, le=1
        h.record(2); // bucket 1, le=3
        h.record(5); // bucket 2, le=7
        let text = render_prometheus(&r);
        assert!(text.contains("# TYPE lat_ns histogram"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 2"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"7\"} 3"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_ns_sum 8"), "{text}");
        assert!(text.contains("lat_ns_count 3"), "{text}");
    }

    #[test]
    fn label_variants_share_one_header() {
        let r = MetricsRegistry::new();
        r.counter("k_total", "kills", &[("policy", "fifo")]).inc();
        r.counter("k_total", "kills", &[("policy", "emotion")])
            .inc();
        let text = render_prometheus(&r);
        assert_eq!(text.matches("# TYPE k_total").count(), 1, "{text}");
        assert_eq!(text.matches("k_total{policy=").count(), 2, "{text}");
    }

    #[test]
    fn empty_histogram_still_parses() {
        let r = MetricsRegistry::new();
        r.histogram("empty_ns", "never recorded", &[]);
        let text = render_prometheus(&r);
        assert!(text.contains("empty_ns_bucket{le=\"+Inf\"} 0"), "{text}");
        assert!(text.contains("empty_ns_count 0"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.counter("e_total", "h", &[("s", "a\"b\\c")]).inc();
        let text = render_prometheus(&r);
        assert!(text.contains("e_total{s=\"a\\\"b\\\\c\"} 1"), "{text}");
    }
}
