//! Time sources for span timing and latency accounting.
//!
//! Every duration this crate (and the `affect-rt` runtime, which re-exports
//! these types) measures goes through the [`Clock`] trait, so tests can
//! substitute a [`VirtualClock`] and dictate exactly how much time every
//! timed region appears to take. The trait lived in `affect-rt` first; it
//! moved here so the observability layer sits below the runtime in the
//! dependency DAG and both share one notion of time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond time source.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's origin.
    fn now_nanos(&self) -> u64;

    /// Blocks until the clock reads at least `deadline_nanos`.
    ///
    /// The default implementation sleeps the remaining wall-clock delta,
    /// which is right for [`SystemClock`]; [`VirtualClock`] overrides it to
    /// jump virtual time to the deadline instead, so paced playback (e.g.
    /// `WireSession` with a chunk interval) is deterministic under test.
    fn sleep_until(&self, deadline_nanos: u64) {
        let now = self.now_nanos();
        if now < deadline_nanos {
            std::thread::sleep(std::time::Duration::from_nanos(deadline_nanos - now));
        }
    }
}

/// Wall-clock time anchored at construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock whose zero is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A manually advanced clock for deterministic tests.
///
/// Time only moves when [`VirtualClock::advance`] (or `set`) is called, so
/// a test controls exactly how much latency every in-flight window accrues.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// Creates a clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `delta_nanos`.
    pub fn advance(&self, delta_nanos: u64) {
        self.nanos.fetch_add(delta_nanos, Ordering::SeqCst);
    }

    /// Jumps to an absolute time (must not move backwards in sane tests,
    /// but the clock does not enforce it).
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }

    fn sleep_until(&self, deadline_nanos: u64) {
        // Virtual time never passes on its own: jump to the deadline
        // (monotonically — a stale deadline does not rewind the clock).
        self.nanos.fetch_max(deadline_nanos, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_moves_only_on_advance() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(1_000);
        clock.advance(500);
        assert_eq!(clock.now_nanos(), 1_500);
        clock.set(10);
        assert_eq!(clock.now_nanos(), 10);
    }

    #[test]
    fn virtual_sleep_until_jumps_without_blocking() {
        let clock = VirtualClock::new();
        clock.set(100);
        clock.sleep_until(1_000);
        assert_eq!(clock.now_nanos(), 1_000);
        // A deadline already in the past must not rewind the clock.
        clock.sleep_until(500);
        assert_eq!(clock.now_nanos(), 1_000);
    }

    #[test]
    fn system_sleep_until_reaches_the_deadline() {
        let clock = SystemClock::new();
        let deadline = clock.now_nanos() + 2_000_000; // 2 ms
        clock.sleep_until(deadline);
        assert!(clock.now_nanos() >= deadline);
    }
}
