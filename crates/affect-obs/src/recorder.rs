//! The [`Recorder`] visitor: how metric values leave the registry.
//!
//! A `Recorder` receives every registered series' descriptor and current
//! value when [`crate::MetricsRegistry::visit`] walks the registry. The
//! Prometheus renderer is one implementation; [`CaptureRecorder`] is the
//! test sink — it copies each sample into a plain `Vec` so assertions can
//! inspect exactly what would have been exposed.

use crate::metrics::HistogramSnapshot;
use crate::registry::MetricKind;

/// Identity of one series during a [`crate::MetricsRegistry::visit`] walk.
#[derive(Debug, Clone, Copy)]
pub struct MetricDesc<'a> {
    /// Metric name (`snake_case`, subsystem prefix, unit suffix).
    pub name: &'a str,
    /// One-line help text for exposition.
    pub help: &'a str,
    /// The label pairs fixed at registration.
    pub labels: &'a [(String, String)],
    /// The instrument kind.
    pub kind: MetricKind,
}

/// One series' current value during a visit.
#[derive(Debug, Clone, Copy)]
pub enum Observation<'a> {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram buckets and totals.
    Histogram(&'a HistogramSnapshot),
}

/// A sink for metric samples. Implementations must not assume any
/// particular visit order beyond "registration order".
pub trait Recorder {
    /// Receives one series' descriptor and current value.
    fn record(&mut self, desc: &MetricDesc<'_>, value: Observation<'_>);
}

/// An owned copy of one visited sample, for test assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedSample {
    /// Metric name.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// Instrument kind.
    pub kind: MetricKind,
    /// The value at visit time.
    pub value: CapturedValue,
}

/// The value half of a [`CapturedSample`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CapturedValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram totals (buckets elided; use the live
    /// [`crate::Histogram`] handle for bucket-level assertions).
    Histogram {
        /// Total samples.
        count: u64,
        /// Sum of samples.
        sum: u64,
    },
}

/// A [`Recorder`] that copies every sample into [`CaptureRecorder::samples`].
#[derive(Debug, Default)]
pub struct CaptureRecorder {
    /// Samples in visit (= registration) order.
    pub samples: Vec<CapturedSample>,
}

impl CaptureRecorder {
    /// The captured value of the series `name` with exactly `labels`, if
    /// it was visited.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&CapturedValue> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((sk, sv), (qk, qv))| sk == qk && sv == qv)
            })
            .map(|s| &s.value)
    }
}

impl Recorder for CaptureRecorder {
    fn record(&mut self, desc: &MetricDesc<'_>, value: Observation<'_>) {
        self.samples.push(CapturedSample {
            name: desc.name.to_string(),
            labels: desc.labels.to_vec(),
            kind: desc.kind,
            value: match value {
                Observation::Counter(v) => CapturedValue::Counter(v),
                Observation::Gauge(v) => CapturedValue::Gauge(v),
                Observation::Histogram(h) => CapturedValue::Histogram {
                    count: h.count,
                    sum: h.sum,
                },
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn capture_find_matches_on_labels() {
        let r = MetricsRegistry::new();
        r.counter("k_total", "h", &[("policy", "fifo")]).add(2);
        r.counter("k_total", "h", &[("policy", "emotion")]).add(5);
        let mut cap = CaptureRecorder::default();
        r.visit(&mut cap);
        assert_eq!(
            cap.find("k_total", &[("policy", "emotion")]),
            Some(&CapturedValue::Counter(5))
        );
        assert_eq!(cap.find("k_total", &[]), None);
        assert_eq!(cap.find("missing", &[("policy", "fifo")]), None);
    }
}
