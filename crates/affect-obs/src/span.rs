//! RAII span timing: enter a span, do the work, let the drop record it.
//!
//! A [`Span`] reads the clock once on entry and once on drop, recording
//! the elapsed nanoseconds into a [`Histogram`]. That is the whole design:
//! no thread-local stack, no span ids, no allocation — which is what lets
//! the affect-rt workers time every stage of every window without
//! disturbing the zero-allocation warm path.
//!
//! Scoping is by *which histogram you enter*: the workspace registers one
//! `*_latency_ns` histogram per pipeline stage (labelled `stage="..."`),
//! so the span hierarchy is encoded in the metric catalogue rather than in
//! runtime state. Nested spans are just nested guards on different
//! histograms:
//!
//! ```
//! use affect_obs::{Histogram, Span, VirtualClock};
//!
//! let clock = VirtualClock::new();
//! let whole = Histogram::new();
//! let inner = Histogram::new();
//! {
//!     let _e2e = Span::enter(&whole, &clock);
//!     clock.advance(10);
//!     {
//!         let _stage = Span::enter(&inner, &clock);
//!         clock.advance(32);
//!     } // records 32 ns into `inner`
//!     clock.advance(8);
//! } // records 50 ns into `whole`
//! assert_eq!(inner.summary().max_ns, 32);
//! assert_eq!(whole.summary().max_ns, 50);
//! ```

use crate::clock::Clock;
use crate::metrics::Histogram;

/// An in-flight timed region. Created by [`Span::enter`]; the drop records
/// the elapsed time. Hold it in a `let` binding (`let _span = ...`) — a
/// bare `let _ =` would drop immediately and record zero.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    histogram: &'a Histogram,
    clock: &'a dyn Clock,
    start_ns: u64,
}

impl<'a> Span<'a> {
    /// Starts timing against `clock`, recording into `histogram` on drop.
    #[inline]
    pub fn enter(histogram: &'a Histogram, clock: &'a dyn Clock) -> Self {
        Self {
            histogram,
            clock,
            start_ns: clock.now_nanos(),
        }
    }

    /// Nanoseconds elapsed so far (the drop will record the final value).
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_nanos().saturating_sub(self.start_ns)
    }
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        self.histogram
            .record(self.clock.now_nanos().saturating_sub(self.start_ns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn span_records_exact_virtual_duration() {
        let clock = VirtualClock::new();
        let h = Histogram::new();
        {
            let span = Span::enter(&h, &clock);
            clock.advance(1_234);
            assert_eq!(span.elapsed_ns(), 1_234);
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.summary().max_ns, 1_234);
    }

    #[test]
    fn backwards_clock_records_zero() {
        let clock = VirtualClock::new();
        clock.set(100);
        let h = Histogram::new();
        {
            let _span = Span::enter(&h, &clock);
            clock.set(40); // pathological, but must not underflow
        }
        assert_eq!(h.summary().max_ns, 0);
    }
}
