//! The metrics registry: names, labels, and handle lifetime.
//!
//! The registry is the *cold* half of the design: registering a metric
//! takes a lock and allocates (name, help text, label pairs). The returned
//! handle (`Arc<Counter>` / `Arc<Gauge>` / `Arc<Histogram>`) is the *warm*
//! half — callers stash it in their own structs and update it with plain
//! atomics, never touching the registry again.
//!
//! Registration is idempotent per `(name, labels)` pair: asking for the
//! same metric twice returns the same underlying instrument, so two
//! subsystems (or two sessions) naturally aggregate into one series.

use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::recorder::{MetricDesc, Observation, Recorder};

/// What kind of instrument a registered metric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic event count ([`Counter`]).
    Counter,
    /// Last-value instrument ([`Gauge`]).
    Gauge,
    /// Log2-bucketed distribution ([`Histogram`]).
    Histogram,
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> MetricKind {
        match self {
            Instrument::Counter(_) => MetricKind::Counter,
            Instrument::Gauge(_) => MetricKind::Gauge,
            Instrument::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// A registry of named metrics. See the [module docs](self) for the
/// cold/warm split; see `docs/OBSERVABILITY.md` for the workspace's metric
/// catalogue.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) a counter.
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` was previously registered as a different
    /// metric kind — that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, labels, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a gauge.
    ///
    /// # Panics
    ///
    /// Panics on a kind mismatch with an earlier registration (see
    /// [`MetricsRegistry::counter`]).
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrument::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a histogram.
    ///
    /// # Panics
    ///
    /// Panics on a kind mismatch with an earlier registration (see
    /// [`MetricsRegistry::counter`]).
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.register(name, help, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new()))
        }) {
            Instrument::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let mut entries = self.entries.lock().expect("registry lock poisoned");
        if let Some(entry) = entries
            .iter()
            .find(|e| e.name == name && label_eq(&e.labels, labels))
        {
            return clone_instrument(&entry.instrument);
        }
        let instrument = make();
        let handle = clone_instrument(&instrument);
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            instrument,
        });
        handle
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("registry lock poisoned").len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The distinct metric names currently registered, in registration
    /// order (label variants of one name appear once).
    pub fn names(&self) -> Vec<String> {
        let entries = self.entries.lock().expect("registry lock poisoned");
        let mut names: Vec<String> = Vec::new();
        for e in entries.iter() {
            if !names.contains(&e.name) {
                names.push(e.name.clone());
            }
        }
        names
    }

    /// Walks every registered series in registration order, handing its
    /// descriptor and current value to `recorder`.
    pub fn visit(&self, recorder: &mut dyn Recorder) {
        let entries = self.entries.lock().expect("registry lock poisoned");
        for e in entries.iter() {
            let desc = MetricDesc {
                name: &e.name,
                help: &e.help,
                labels: &e.labels,
                kind: e.instrument.kind(),
            };
            match &e.instrument {
                Instrument::Counter(c) => recorder.record(&desc, Observation::Counter(c.get())),
                Instrument::Gauge(g) => recorder.record(&desc, Observation::Gauge(g.get())),
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    recorder.record(&desc, Observation::Histogram(&snap));
                }
            }
        }
    }

    /// Renders every series in the Prometheus text exposition format.
    /// Convenience for [`crate::render_prometheus`].
    pub fn render_prometheus(&self) -> String {
        crate::prometheus::render_prometheus(self)
    }
}

fn label_eq(registered: &[(String, String)], requested: &[(&str, &str)]) -> bool {
    registered.len() == requested.len()
        && registered
            .iter()
            .zip(requested)
            .all(|((rk, rv), (qk, qv))| rk == qk && rv == qv)
}

fn clone_instrument(i: &Instrument) -> Instrument {
    match i {
        Instrument::Counter(c) => Instrument::Counter(Arc::clone(c)),
        Instrument::Gauge(g) => Instrument::Gauge(Arc::clone(g)),
        Instrument::Histogram(h) => Instrument::Histogram(Arc::clone(h)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_name_and_labels() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total", "help", &[("stage", "ingest")]);
        let b = r.counter("x_total", "help", &[("stage", "ingest")]);
        let c = r.counter("x_total", "help", &[("stage", "classify")]);
        a.inc();
        b.inc();
        c.inc();
        assert_eq!(a.get(), 2, "same series shares the instrument");
        assert_eq!(c.get(), 1, "different labels are a different series");
        assert_eq!(r.len(), 2);
        assert_eq!(r.names(), vec!["x_total".to_string()]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x", "help", &[]);
        r.gauge("x", "help", &[]);
    }

    #[test]
    fn visit_sees_current_values() {
        use crate::recorder::{CaptureRecorder, CapturedValue};
        let r = MetricsRegistry::new();
        let c = r.counter("c_total", "count", &[]);
        let g = r.gauge("g", "gauge", &[]);
        let h = r.histogram("h_ns", "hist", &[]);
        c.add(3);
        g.set(-2);
        h.record(100);
        let mut cap = CaptureRecorder::default();
        r.visit(&mut cap);
        assert_eq!(cap.samples.len(), 3);
        assert_eq!(cap.samples[0].value, CapturedValue::Counter(3));
        assert_eq!(cap.samples[1].value, CapturedValue::Gauge(-2));
        match &cap.samples[2].value {
            CapturedValue::Histogram { count, sum } => {
                assert_eq!((*count, *sum), (1, 100));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
