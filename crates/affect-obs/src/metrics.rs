//! The metric primitives: atomic counters, gauges, and log2 histograms.
//!
//! Every update is a handful of relaxed atomic operations — no locks, no
//! allocation, no formatting — so instrumented hot paths (the affect-rt
//! classify workers, the decoder's per-block counters) pay nanoseconds,
//! not microseconds, and the `alloc-counter` zero-allocation proofs keep
//! holding with instrumentation enabled.
//!
//! The [`Histogram`] generalizes the log2-bucketed latency histogram that
//! `affect-rt`'s statistics introduced: one atomic per power-of-two bucket,
//! so a reported quantile is the upper bound of its bucket (within 2× of
//! the true value) — plenty for deadline triage and distribution shape.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of log2 buckets in a [`Histogram`] (one per power of two of a
/// `u64` sample).
pub const BUCKETS: usize = 64;

/// A monotonically increasing event count.
///
/// Updates are relaxed atomics; reads are point-in-time snapshots. Handles
/// from a [`crate::MetricsRegistry`] are `Arc`-shared, so clones observe
/// the same value.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value instrument for quantities that go up *and* down (queue
/// depth, resident processes, bytes in flight).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is below it (high-water marks).
    #[inline]
    pub fn max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log2-bucketed histogram with atomic buckets.
///
/// A sample `v` lands in bucket `floor(log2(max(v, 1)))`, i.e. bucket `i`
/// covers `[2^i, 2^(i+1) - 1]` (zero shares bucket 0). Quantiles are
/// bucket-upper-bound approximations, within 2× of the true value.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let bucket = (u64::BITS - value.max(1).leading_zeros() - 1) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The inclusive upper bound of bucket `i` (`2^(i+1) - 1`, saturating
    /// at `u64::MAX` for the top bucket).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i + 1 >= BUCKETS {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// The value at quantile `q` in `[0, 1]`, as the upper bound of the
    /// containing bucket; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        self.max()
    }

    /// Snapshot of count, mean, p50/p95/p99 and max.
    pub fn summary(&self) -> LatencySummary {
        let count = self.count();
        LatencySummary {
            count,
            mean_ns: self.sum().checked_div(count).unwrap_or(0),
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
            max_ns: self.max(),
        }
    }

    /// Copies the buckets and totals out for exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s buckets and totals.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` covers `[2^i, 2^(i+1) - 1]`).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample (exact).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Index of the highest non-empty bucket, or `None` when empty.
    pub fn highest_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&b| b > 0)
    }
}

/// Percentile snapshot of a latency distribution (nanoseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// Median (bucket upper bound).
    pub p50_ns: u64,
    /// 95th percentile (bucket upper bound).
    pub p95_ns: u64,
    /// 99th percentile (bucket upper bound).
    pub p99_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.max(7);
        assert_eq!(g.get(), 12, "max never lowers");
        g.max(20);
        assert_eq!(g.get(), 20);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket i covers [2^i, 2^(i+1) - 1]; zero lands in bucket 0.
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 2, "0 and 1 share bucket 0");
        assert_eq!(snap.buckets[1], 2, "2 and 3");
        assert_eq!(snap.buckets[2], 2, "4 and 7");
        assert_eq!(snap.buckets[3], 1, "8");
        assert_eq!(snap.buckets[9], 1, "1023 = 2^10 - 1");
        assert_eq!(snap.buckets[10], 1, "1024 = 2^10");
        assert_eq!(snap.count, 9);
        assert_eq!(snap.max, 1024);
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(Histogram::bucket_upper_bound(0), 1);
        assert_eq!(Histogram::bucket_upper_bound(3), 15);
        assert_eq!(Histogram::bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_bracket_samples() {
        let h = Histogram::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record(ns);
        }
        let s = h.summary();
        assert!(s.p50_ns >= 200 && s.p50_ns < 800, "p50 {}", s.p50_ns);
        assert!(s.p99_ns >= 100_000, "p99 {}", s.p99_ns);
        assert_eq!(s.max_ns, 100_000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.summary(), LatencySummary::default());
        assert!(h.snapshot().highest_bucket().is_none());
    }

    #[test]
    fn concurrent_counter_increments_all_land() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
        assert_eq!(
            h.snapshot().buckets.iter().sum::<u64>(),
            80_000,
            "every sample in exactly one bucket"
        );
    }
}
