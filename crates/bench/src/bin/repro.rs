//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- all
//! cargo run --release -p bench --bin repro -- fig3a
//! ```
//!
//! Subcommands: `fig3a`, `fig3b`, `fig3c`, `fig3d`, `fig6-modes`,
//! `fig6-playback`, `fig7`, `fig9`, `fig10`, `model-table`, `area-table`,
//! `all`. Add `--quick` to use the fast training profile.
//!
//! Tables are printed to stdout and CSV copies land in `results/`.

use bench::fig3::{full_grid, Fig3Config};
use bench::table::{pct, Table};
use bench::{ext, fig10, fig6, fig7, fig9, tables};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let command = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());

    let result = match command.as_str() {
        "fig3a" => fig3a(quick),
        "fig3b" => fig3b(quick),
        "fig3c" => fig3c(),
        "fig3d" => fig3d(quick),
        "fig6-modes" => fig6_modes(),
        "fig6-playback" => fig6_playback(),
        "fig6-classified" => fig6_classified(),
        "fig7" => fig7_cmd(),
        "fig9" => fig9_cmd(),
        "fig10" => fig10_cmd(),
        "ext-gru" => ext_gru(quick),
        "ext-limits" => ext_limits(),
        "ext-stream" => ext_stream(),
        "ext-subjects" => ext_subjects(),
        "model-table" => model_table(),
        "area-table" => area_table(),
        "all" => all(quick),
        other => {
            eprintln!("unknown subcommand `{other}`");
            eprintln!(
                "usage: repro [--quick] <fig3a|fig3b|fig3c|fig3d|fig6-modes|fig6-playback|fig6-classified|fig7|fig9|fig10|ext-gru|ext-limits|ext-stream|ext-subjects|model-table|area-table|all>"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type AnyResult = Result<(), Box<dyn std::error::Error>>;

fn fig3_config(quick: bool) -> Fig3Config {
    if quick {
        Fig3Config::quick()
    } else {
        Fig3Config::full()
    }
}

fn fig3a(quick: bool) -> AnyResult {
    use affect_core::classifier::ClassifierKind;
    use datasets::CorpusSpec;

    println!("== Fig. 3(a): confusion matrix, LSTM on RAVDESS-like ==");
    let r = bench::fig3::evaluate_classifier(
        ClassifierKind::Lstm,
        &CorpusSpec::ravdess_like(),
        &fig3_config(quick),
    )?;
    println!("{}", r.confusion);
    println!("overall accuracy: {}", pct(f64::from(r.accuracy)));

    let mut csv = Table::new(
        std::iter::once("actual\\predicted".to_string())
            .chain(r.confusion.labels().iter().cloned())
            .collect(),
    );
    for (i, row) in r.confusion.normalized().iter().enumerate() {
        csv.row(
            std::iter::once(r.confusion.labels()[i].clone())
                .chain(row.iter().map(|v| format!("{v:.3}")))
                .collect(),
        );
    }
    csv.write_csv("results/fig3a_confusion.csv")?;
    Ok(())
}

fn fig3b(quick: bool) -> AnyResult {
    println!("== Fig. 3(b): accuracy by model and corpus ==");
    let results = full_grid(&fig3_config(quick))?;
    let mut t = Table::new(vec![
        "corpus".into(),
        "model".into(),
        "accuracy".into(),
        "int8 accuracy".into(),
    ]);
    for r in &results {
        t.row(vec![
            r.corpus.clone(),
            r.kind.to_string(),
            pct(f64::from(r.accuracy)),
            pct(f64::from(r.int8_accuracy)),
        ]);
    }
    println!("{}", t.render());
    println!("paper: accuracies 50-85%; CNN and LSTM outperform the MLP.");
    t.write_csv("results/fig3b_accuracy.csv")?;
    Ok(())
}

fn fig3c() -> AnyResult {
    println!("== Fig. 3(c): weight size, float vs 8-bit (paper-scale models) ==");
    let mut t = Table::new(vec![
        "model".into(),
        "float KB".into(),
        "int8 KB".into(),
        "ratio".into(),
    ]);
    for (kind, float_kb, int8_kb) in bench::fig3::paper_weight_sizes() {
        t.row(vec![
            kind.to_string(),
            format!("{float_kb:.0}"),
            format!("{int8_kb:.0}"),
            format!("{:.2}x", float_kb / int8_kb),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("results/fig3c_weight_size.csv")?;
    Ok(())
}

fn fig3d(quick: bool) -> AnyResult {
    use datasets::CorpusSpec;

    println!("== Fig. 3(d): accuracy float vs 8-bit (EMOVO-like) ==");
    let cfg = fig3_config(quick);
    let mut t = Table::new(vec![
        "model".into(),
        "float".into(),
        "int8".into(),
        "loss".into(),
    ]);
    for kind in affect_core::classifier::ClassifierKind::ALL {
        let r = bench::fig3::evaluate_classifier(kind, &CorpusSpec::emovo_like(), &cfg)?;
        t.row(vec![
            kind.to_string(),
            pct(f64::from(r.accuracy)),
            pct(f64::from(r.int8_accuracy)),
            pct(f64::from(r.accuracy - r.int8_accuracy)),
        ]);
    }
    println!("{}", t.render());
    println!("paper: less than 3% accuracy loss at 8 bits.");
    t.write_csv("results/fig3d_quant_accuracy.csv")?;
    Ok(())
}

fn fig6_modes() -> AnyResult {
    println!("== Fig. 6 (middle): decoder power modes ==");
    let rows = fig6::mode_table(5)?;
    let mut t = Table::new(vec![
        "mode".into(),
        "norm. power".into(),
        "paper".into(),
        "psnr dB".into(),
        "ssim".into(),
        "deleted NALs".into(),
    ]);
    for (mode, power, target, psnr, ssim, deleted) in &rows {
        t.row(vec![
            mode.clone(),
            format!("{power:.3}"),
            format!("{target:.3}"),
            format!("{psnr:.2}"),
            format!("{ssim:.4}"),
            deleted.to_string(),
        ]);
    }
    println!("{}", t.render());

    // Standard-mode module breakdown (the calibrated model attributes the
    // paper's 31.4% to the deblocking filter).
    let (frames, stream) = h264::adaptive::paper_reference(5)?;
    let profile = h264::adaptive::ModeProfile::measure(&stream, &frames)?;
    let b = profile.model.breakdown(&profile.reports[0].activity);
    let mut bt = Table::new(vec!["module".into(), "share".into()]);
    for (name, share) in [
        ("static/clock", b.static_share),
        ("bitstream parser", b.parser),
        ("cavlc", b.cavlc),
        ("iqit", b.iqit),
        ("intra prediction", b.intra),
        ("inter prediction", b.inter),
        ("buffers", b.buffer),
        ("deblocking filter", b.deblock),
    ] {
        bt.row(vec![name.into(), pct(share)]);
    }
    println!("standard-mode module breakdown:");
    println!("{}", bt.render());
    bt.write_csv("results/fig6_breakdown.csv")?;
    t.write_csv("results/fig6_modes.csv")?;
    Ok(())
}

fn fig6_playback() -> AnyResult {
    println!("== Fig. 6 (bottom): affect-driven playback over the 40-min session ==");
    let report = fig6::playback(5)?;
    let mut t = Table::new(vec![
        "state".into(),
        "minutes".into(),
        "mode".into(),
        "norm. power".into(),
        "psnr dB".into(),
    ]);
    for s in &report.segments {
        t.row(vec![
            s.state.to_string(),
            format!("{:.0}", s.minutes),
            s.mode.to_string(),
            format!("{:.3}", s.normalized_power),
            format!("{:.2}", s.psnr_db),
        ]);
    }
    println!("{}", t.render());
    println!(
        "energy saving vs always-standard: {} (paper: 23.1%)",
        pct(report.saving)
    );
    t.write_csv("results/fig6_playback.csv")?;
    Ok(())
}

fn fig6_classified() -> AnyResult {
    println!("== Fig. 6 (closed loop): playback driven by the SC classifier ==");
    let r = fig6::playback_classified(5)?;
    let mut t = Table::new(vec!["metric".into(), "value".into()]);
    t.row(vec![
        "per-minute state accuracy".into(),
        pct(r.state_accuracy),
    ]);
    t.row(vec![
        "energy saving (classified states)".into(),
        pct(r.classified_saving),
    ]);
    t.row(vec![
        "energy saving (oracle labels)".into(),
        pct(r.oracle_saving),
    ]);
    for (mode, minutes) in affect_core::policy::VideoPowerMode::ALL
        .iter()
        .zip(r.classified_mode_minutes)
    {
        t.row(vec![
            format!("minutes in `{mode}`"),
            format!("{minutes:.0}"),
        ]);
    }
    println!("{}", t.render());
    println!("the paper reports the oracle-label run (23.1%); the closed loop shows");
    println!("how much of that survives a real SC-driven classifier.");
    t.write_csv("results/fig6_classified.csv")?;
    Ok(())
}

fn fig7_cmd() -> AnyResult {
    println!("== Fig. 7 (left): app usage share by category and subject ==");
    let mut t = Table::new(vec![
        "category".into(),
        "subject1".into(),
        "subject2".into(),
        "subject3".into(),
        "subject4".into(),
    ]);
    for (category, shares) in fig7::usage_rows() {
        t.row(
            std::iter::once(category.to_string())
                .chain(shares.iter().map(|&s| pct(f64::from(s))))
                .collect(),
        );
    }
    println!("{}", t.render());
    t.write_csv("results/fig7_usage.csv")?;

    println!("== Fig. 7 (right): emulator specification ==");
    let mut spec = Table::new(vec!["key".into(), "value".into()]);
    for (k, v) in fig7::spec_rows() {
        spec.row(vec![k, v]);
    }
    println!("{}", spec.render());
    spec.write_csv("results/fig7_spec.csv")?;
    Ok(())
}

fn fig9_cmd() -> AnyResult {
    println!("== Fig. 9: process lifespans, excited (12 min) then calm (8 min) ==");
    let runs = fig9::run(3)?;
    println!("{}", fig9::render(&runs, 100));
    println!(
        "baseline: {} kills, {} cold starts; emotion: {} kills, {} cold starts",
        runs.baseline.kills,
        runs.baseline.cold_starts,
        runs.emotion.kills,
        runs.emotion.cold_starts
    );
    let mut t = Table::new(vec![
        "policy".into(),
        "kills".into(),
        "cold starts".into(),
        "warm starts".into(),
    ]);
    for m in [&runs.baseline, &runs.emotion] {
        t.row(vec![
            m.policy.to_string(),
            m.kills.to_string(),
            m.cold_starts.to_string(),
            m.warm_starts.to_string(),
        ]);
    }
    t.write_csv("results/fig9_summary.csv")?;

    // Per-app lifespan spans for external plotting.
    let mut spans = Table::new(vec![
        "policy".into(),
        "app".into(),
        "start_s".into(),
        "end_s".into(),
    ]);
    for m in [&runs.baseline, &runs.emotion] {
        let timeline = m.timeline();
        for (app_id, intervals) in &timeline.rows {
            let name = runs
                .device
                .app(*app_id)
                .map(|a| a.name.clone())
                .unwrap_or_default();
            for (start, end) in intervals {
                spans.row(vec![
                    m.policy.to_string(),
                    name.clone(),
                    format!("{start:.1}"),
                    format!("{end:.1}"),
                ]);
            }
        }
    }
    spans.write_csv("results/fig9_timeline.csv")?;
    Ok(())
}

fn fig10_cmd() -> AnyResult {
    println!("== Fig. 10: memory loaded at app start and loading time ==");
    let r = fig10::run(100, 10)?;
    let mut t = Table::new(vec![
        "metric".into(),
        "emotion driven".into(),
        "baseline".into(),
        "saving".into(),
        "paper".into(),
    ]);
    t.row(vec![
        "total loaded memory (bytes)".into(),
        format!("{:.3e}", r.emotion_bytes),
        format!("{:.3e}", r.baseline_bytes),
        pct(r.memory_saving),
        "17%".into(),
    ]);
    t.row(vec![
        "total app loading time (s)".into(),
        format!("{:.1}", r.emotion_secs),
        format!("{:.1}", r.baseline_secs),
        pct(r.time_saving),
        "12%".into(),
    ]);
    println!("{}", t.render());
    println!(
        "saving split: flash file loading {} / allocated memory {} (paper: roughly equal)",
        pct(r.flash_saving),
        pct(r.allocated_saving)
    );
    println!("(averaged over {} workload seeds)", r.runs);
    t.write_csv("results/fig10_savings.csv")?;
    Ok(())
}

fn ext_gru(quick: bool) -> AnyResult {
    println!("== Extension: GRU vs LSTM on the wearable budget ==");
    let rows = ext::gru_vs_lstm(&fig3_config(quick))?;
    let mut t = Table::new(vec!["cell".into(), "params".into(), "accuracy".into()]);
    for r in &rows {
        t.row(vec![
            r.cell.into(),
            r.params.to_string(),
            pct(f64::from(r.accuracy)),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("results/ext_gru_vs_lstm.csv")?;
    Ok(())
}

fn ext_limits() -> AnyResult {
    println!("== Extension: background process limit sweep ==");
    let rows = ext::process_limit_sweep(100, 4)?;
    let mut t = Table::new(vec![
        "process limit".into(),
        "memory saving".into(),
        "time saving".into(),
    ]);
    for r in &rows {
        t.row(vec![
            r.limit.to_string(),
            pct(r.memory_saving),
            pct(r.time_saving),
        ]);
    }
    println!("{}", t.render());
    println!("the emotion manager's advantage is a memory-pressure effect:");
    println!("it grows as the limit tightens and vanishes without pressure.");
    t.write_csv("results/ext_process_limit.csv")?;
    Ok(())
}

fn ext_stream() -> AnyResult {
    println!("== Extension: reference-stream NAL composition ==");
    let (rows, fractions) = ext::stream_composition(5)?;
    let mut t = Table::new(vec![
        "type".into(),
        "count".into(),
        "mean bytes".into(),
        "size range".into(),
    ]);
    for r in &rows {
        t.row(vec![
            r.nal_type.clone(),
            r.count.to_string(),
            format!("{:.0}", r.mean_size),
            format!("{}..{}", r.size_range.0, r.size_range.1),
        ]);
    }
    println!("{}", t.render());
    let mut f = Table::new(vec!["S_th".into(), "droppable bytes".into()]);
    for (s_th, fraction) in &fractions {
        f.row(vec![s_th.to_string(), pct(*fraction)]);
    }
    println!("{}", f.render());
    t.write_csv("results/ext_nal_composition.csv")?;
    f.write_csv("results/ext_droppable_fraction.csv")?;
    Ok(())
}

fn ext_subjects() -> AnyResult {
    println!("== Extension: Fig. 10 savings per subject profile ==");
    let rows = ext::subject_sweep(200, 4)?;
    let mut t = Table::new(vec![
        "subject".into(),
        "trait".into(),
        "memory saving".into(),
        "time saving".into(),
    ]);
    for r in &rows {
        t.row(vec![
            r.subject.to_string(),
            r.trait_label.clone(),
            pct(r.memory_saving),
            pct(r.time_saving),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("results/ext_subjects.csv")?;
    Ok(())
}

fn model_table() -> AnyResult {
    println!("== Sec. 2: classifier parameter budgets ==");
    let mut t = Table::new(vec![
        "model".into(),
        "paper params".into(),
        "our params".into(),
        "error".into(),
    ]);
    for (name, paper, ours) in tables::model_rows() {
        let err = (ours as f64 - paper as f64).abs() / paper as f64;
        t.row(vec![name, paper.to_string(), ours.to_string(), pct(err)]);
    }
    println!("{}", t.render());
    t.write_csv("results/model_table.csv")?;
    Ok(())
}

fn area_table() -> AnyResult {
    println!("== Sec. 4: decoder silicon figures ==");
    let mut t = Table::new(vec!["key".into(), "value".into()]);
    for (k, v) in tables::silicon_rows() {
        t.row(vec![k, v]);
    }
    println!("{}", t.render());
    t.write_csv("results/area_table.csv")?;
    Ok(())
}

fn all(quick: bool) -> AnyResult {
    fig3a(quick)?;
    fig3b(quick)?;
    fig3c()?;
    fig3d(quick)?;
    fig6_modes()?;
    fig6_playback()?;
    fig6_classified()?;
    fig7_cmd()?;
    fig9_cmd()?;
    fig10_cmd()?;
    model_table()?;
    area_table()?;
    ext_gru(quick)?;
    ext_limits()?;
    ext_stream()?;
    ext_subjects()?;
    println!("\nall experiments regenerated; CSVs in results/");
    Ok(())
}
