//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `figN` module reproduces one evaluation artifact of *"Human Emotion
//! Based Real-time Memory and Computation Management on Resource-Limited
//! Edge Devices"* (DAC 2022); the `repro` binary drives them and writes
//! aligned text tables plus CSV files under `results/`. The Criterion
//! benches in `benches/` measure the performance-sensitive kernels and
//! end-to-end paths on the same harness.

pub mod ext;
pub mod fig10;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig9;
pub mod table;
pub mod tables;
