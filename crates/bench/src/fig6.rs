//! Fig. 6: decoder mode powers (middle panel) and the affect-driven
//! playback over the uulmMAC-like session (bottom panel).

use affect_core::policy::PolicyTable;
use biosignal::UulmmacSession;
use h264::adaptive::{adaptive_playback, paper_reference, ModeProfile, PlaybackReport};
use h264::CodecError;

/// The four-mode power/quality profile on the calibration clip, plus the
/// paper's targets for comparison. Rows:
/// `(mode name, normalized power, paper target, psnr_db, ssim, deleted units)`.
pub type ModeRow = (String, f64, f64, f64, f64, usize);

/// Measures the mode profile of Fig. 6 (middle).
///
/// # Errors
///
/// Propagates codec errors.
pub fn mode_table(seed: u64) -> Result<Vec<ModeRow>, CodecError> {
    let (frames, stream) = paper_reference(seed)?;
    let profile = ModeProfile::measure(&stream, &frames)?;
    let targets = [1.0, 0.894, 0.686, 0.631];
    Ok(profile
        .normalized_power()
        .into_iter()
        .zip(&profile.reports)
        .zip(targets)
        .map(|(((mode, power), report), target)| {
            (
                mode.to_string(),
                power,
                target,
                report.psnr_db,
                report.ssim,
                report.deleted_units,
            )
        })
        .collect())
}

/// Runs the Fig. 6 (bottom) playback experiment over the uulmMAC-like
/// session schedule using the paper's policy table.
///
/// # Errors
///
/// Propagates signal-generation and codec errors.
pub fn playback(seed: u64) -> Result<PlaybackReport, Box<dyn std::error::Error>> {
    let session = UulmmacSession::paper_fig6(seed)?;
    let schedule: Vec<(affect_core::emotion::CognitiveState, f32)> = session
        .segments()
        .iter()
        .map(|s| (s.state, s.duration_min()))
        .collect();
    let (frames, stream) = paper_reference(seed)?;
    Ok(adaptive_playback(
        &stream,
        &frames,
        &schedule,
        &PolicyTable::paper_defaults(),
    )?)
}

/// The closed-loop variant of the Fig. 6 experiment: instead of feeding the
/// decoder the session's *ground-truth* labels, a small MLP is trained on
/// skin-conductance window features and the playback is driven by its
/// (smoothed) classifications — the loop the paper's system actually runs
/// ("the results from the smartphone's AI classifier ... are used to
/// generate the accurate emotion labels used for the proposed real-time
/// affect-driven video decoder").
#[derive(Debug, Clone)]
pub struct ClassifiedPlayback {
    /// Fraction of session minutes whose classified state matched the
    /// ground-truth label.
    pub state_accuracy: f64,
    /// Energy saving with classified states.
    pub classified_saving: f64,
    /// Energy saving with oracle labels (the upper bound).
    pub oracle_saving: f64,
    /// Minutes spent in each mode under the classified run, in
    /// [`affect_core::policy::VideoPowerMode::ALL`] order.
    pub classified_mode_minutes: [f32; 4],
}

/// Runs the closed-loop experiment.
///
/// Training data comes from SC windows generated at each state's arousal
/// level (disjoint seeds from the evaluation session); evaluation slides a
/// 60-second window over the session's SC trace minute by minute,
/// classifies, smooths with a 3-vote majority, and integrates energy over
/// the induced mode schedule.
///
/// # Errors
///
/// Propagates signal, training and codec errors.
pub fn playback_classified(seed: u64) -> Result<ClassifiedPlayback, Box<dyn std::error::Error>> {
    use affect_core::emotion::CognitiveState;
    use affect_core::pipeline::{biosignal_window_features, BIOSIGNAL_FEATURES};
    use affect_core::smoothing::MajoritySmoother;
    use biosignal::sc::{ScConfig, ScGenerator};
    use biosignal::uulmmac::state_arousal;
    use datasets::features::{apply_normalization, normalize_in_place};
    use nn::optim::Adam;
    use nn::train::{fit, FitConfig};
    use nn::Tensor;

    const WINDOW_SECS: f32 = 60.0;

    // 1. Training set: per state, many SC windows at that state's arousal.
    let generator = ScGenerator::new(ScConfig::default())?;
    let mut train_x: Vec<Tensor> = Vec::new();
    let mut train_y: Vec<usize> = Vec::new();
    for (class, &state) in CognitiveState::ALL.iter().enumerate() {
        for k in 0..30u64 {
            let window = generator.generate(
                state_arousal(state),
                WINDOW_SECS,
                seed ^ 0xDEAD ^ (class as u64) << 8 ^ k,
            )?;
            train_x.push(biosignal_window_features(&window.samples)?);
            train_y.push(class);
        }
    }
    let (mean, std) = normalize_in_place(&mut train_x)?;

    // 2. A small MLP over the 8 SC features.
    let config = affect_core::classifier::ModelConfig::Mlp {
        input_dim: BIOSIGNAL_FEATURES,
        hidden: vec![16, 12],
        classes: CognitiveState::ALL.len(),
        dropout: 0.0,
    };
    let mut model = config.build(seed)?;
    let mut optimizer = Adam::new(0.01);
    fit(
        &mut model,
        &train_x,
        &train_y,
        &mut optimizer,
        &FitConfig {
            epochs: 60,
            batch_size: 8,
            seed,
            verbose: false,
        },
    )?;

    // 3. Classify the evaluation session minute by minute.
    let session = UulmmacSession::paper_fig6(seed)?;
    let trace = session.sc_trace();
    let mut smoother = MajoritySmoother::new(3, 0)?;
    let mut classified: Vec<CognitiveState> = Vec::new();
    let mut correct = 0usize;
    let total_minutes = session.duration_min() as usize;
    for minute in 0..total_minutes {
        let start = (minute as f32 * 60.0 - WINDOW_SECS).max(0.0);
        let end = (start + WINDOW_SECS).max(60.0);
        let window = trace.slice_secs(start, end)?;
        let mut features = vec![biosignal_window_features(window)?];
        apply_normalization(&mut features, &mean, &std)?;
        let probs = model.predict_proba(&features[0])?;
        let class = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let raw_state = CognitiveState::ALL[class];
        smoother.push(raw_state);
        let state = smoother.current().unwrap_or(raw_state);
        if state == session.state_at_min(minute as f32 + 0.5) {
            correct += 1;
        }
        classified.push(state);
    }
    let state_accuracy = correct as f64 / total_minutes as f64;

    // 4. Integrate energy over both schedules.
    let (frames, stream) = paper_reference(seed)?;
    let profile = ModeProfile::measure(&stream, &frames)?;
    let powers = profile.normalized_power();
    let policy = PolicyTable::paper_defaults();
    let power_of = |state: CognitiveState| {
        let mode = policy.video_mode_for_state(state);
        powers
            .iter()
            .find(|(m, _)| *m == mode)
            .map(|&(_, p)| p)
            .unwrap_or(1.0)
    };
    let mut classified_energy = 0.0;
    let mut oracle_energy = 0.0;
    let mut mode_minutes = [0.0f32; 4];
    for (minute, &state) in classified.iter().enumerate() {
        classified_energy += power_of(state);
        oracle_energy += power_of(session.state_at_min(minute as f32 + 0.5));
        let mode = policy.video_mode_for_state(state);
        let idx = affect_core::policy::VideoPowerMode::ALL
            .iter()
            .position(|&m| m == mode)
            .unwrap_or(0);
        mode_minutes[idx] += 1.0;
    }
    classified_energy /= total_minutes as f64;
    oracle_energy /= total_minutes as f64;

    Ok(ClassifiedPlayback {
        state_accuracy,
        classified_saving: 1.0 - classified_energy,
        oracle_saving: 1.0 - oracle_energy,
        classified_mode_minutes: mode_minutes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_table_matches_paper_shape() {
        let rows = mode_table(5).unwrap();
        assert_eq!(rows.len(), 4);
        // Power ordering: standard > deletion > deblock-off > combined.
        assert!(rows[0].1 > rows[1].1);
        assert!(rows[1].1 > rows[2].1);
        assert!(rows[2].1 > rows[3].1);
        // Each mode within 5 points of the paper target.
        for (name, power, target, _, _, _) in &rows {
            assert!((power - target).abs() < 0.05, "{name}: {power} vs {target}");
        }
    }

    #[test]
    fn classified_playback_closes_the_loop() {
        let r = playback_classified(5).unwrap();
        // The SC-driven classifier must recover most of the session labels
        // and most of the oracle saving.
        assert!(
            r.state_accuracy > 0.6,
            "state accuracy {:.2}",
            r.state_accuracy
        );
        assert!(
            r.classified_saving > 0.10,
            "saving {:.3}",
            r.classified_saving
        );
        assert!(
            r.classified_saving <= r.oracle_saving + 0.08,
            "classified {:.3} vs oracle {:.3}",
            r.classified_saving,
            r.oracle_saving
        );
        let total: f32 = r.classified_mode_minutes.iter().sum();
        assert!((total - 40.0).abs() < 1.0);
    }

    #[test]
    fn playback_saving_matches_paper() {
        let report = playback(5).unwrap();
        assert!(
            (report.saving - 0.231).abs() < 0.05,
            "saving {:.3}",
            report.saving
        );
        assert_eq!(report.segments.len(), 4);
    }
}
