//! Aligned text tables and CSV output for experiment results.

use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text/CSV table.
///
/// # Example
///
/// ```
/// use bench::table::Table;
/// let mut t = Table::new(vec!["model".into(), "accuracy".into()]);
/// t.row(vec!["LSTM".into(), "0.81".into()]);
/// let text = t.render();
/// assert!(text.contains("LSTM"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, mut cells: Vec<String>) {
        while cells.len() < self.header.len() {
            cells.push(String::new());
        }
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(cols) {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the CSV form (cells containing commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "long_header".into()]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("long_header"));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only".into()]);
        assert_eq!(t.len(), 1);
        assert!(t.to_csv().lines().nth(1).unwrap().contains("only,"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(vec!["x".into()]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.231), "23.1%");
    }
}
