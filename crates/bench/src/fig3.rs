//! Fig. 3: the classifier study — per-model/per-corpus accuracy (3b), the
//! LSTM/RAVDESS confusion matrix (3a), and the int8 quantization footprint
//! and accuracy comparison (3c/3d).

use affect_core::classifier::{ClassifierKind, ModelConfig};
use affect_core::pipeline::{FeatureConfig, FeaturePipeline};
use affect_core::AffectError;
use datasets::{
    extract_dataset, features::apply_normalization, features::normalize_in_place, Corpus,
    CorpusSpec, DatasetError, FeatureLayout, TrainTestSplit,
};
use nn::metrics::{accuracy, ConfusionMatrix};
use nn::optim::Adam;
use nn::quant::{quantize_weights_in_place, QuantReport};
use nn::train::{fit, FitConfig};
use nn::{Sequential, Tensor};

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Config {
    /// Actors per corpus (caps the spec's actor count).
    pub max_actors: usize,
    /// Utterances per actor per emotion.
    pub utterances: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Fig3Config {
    /// Fast profile for tests (~seconds per model).
    pub fn quick() -> Self {
        Self {
            max_actors: 4,
            utterances: 2,
            epochs: 12,
            seed: 7,
        }
    }

    /// The profile the repro harness uses (~a minute per model in release).
    pub fn full() -> Self {
        Self {
            max_actors: 10,
            utterances: 3,
            epochs: 30,
            seed: 7,
        }
    }
}

/// Result of training one classifier family on one corpus.
#[derive(Debug, Clone)]
pub struct ClassifierResult {
    /// Model family.
    pub kind: ClassifierKind,
    /// Corpus display name.
    pub corpus: String,
    /// Float test accuracy.
    pub accuracy: f32,
    /// Test accuracy after int8 weight quantization.
    pub int8_accuracy: f32,
    /// Quantization storage report (Fig. 3(c) for this model).
    pub quant: QuantReport,
    /// Confusion matrix of the float model on the test split (Fig. 3(a)
    /// when kind = LSTM and corpus = RAVDESS-like).
    pub confusion: ConfusionMatrix,
}

/// Error type of the study (dataset or model errors).
#[derive(Debug)]
pub enum Fig3Error {
    /// Dataset generation/extraction failed.
    Dataset(DatasetError),
    /// Model construction/training failed.
    Affect(AffectError),
    /// A model-level error.
    Nn(nn::NnError),
}

impl std::fmt::Display for Fig3Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fig3Error::Dataset(e) => write!(f, "dataset: {e}"),
            Fig3Error::Affect(e) => write!(f, "affect: {e}"),
            Fig3Error::Nn(e) => write!(f, "nn: {e}"),
        }
    }
}

impl std::error::Error for Fig3Error {}

impl From<DatasetError> for Fig3Error {
    fn from(e: DatasetError) -> Self {
        Fig3Error::Dataset(e)
    }
}
impl From<AffectError> for Fig3Error {
    fn from(e: AffectError) -> Self {
        Fig3Error::Affect(e)
    }
}
impl From<nn::NnError> for Fig3Error {
    fn from(e: nn::NnError) -> Self {
        Fig3Error::Nn(e)
    }
}

/// Feature pipeline matched to a corpus spec.
fn pipeline_for(spec: &CorpusSpec) -> Result<FeaturePipeline, AffectError> {
    FeaturePipeline::new(FeatureConfig {
        sample_rate: spec.sample_rate,
        frame_len: 256,
        hop: 128,
        n_mfcc: 13,
        n_mels: 24,
        pitch_range: (60.0, 500.0),
        deltas: false,
    })
}

/// Builds the scaled model for a family given the dataset's tensor shape.
fn model_for(
    kind: ClassifierKind,
    sample: &Tensor,
    classes: usize,
    seed: u64,
) -> Result<Sequential, AffectError> {
    let config = match kind {
        ClassifierKind::Mlp => ModelConfig::scaled_mlp(sample.shape()[0], classes),
        ClassifierKind::Cnn => ModelConfig::scaled_cnn(sample.shape()[1], classes),
        ClassifierKind::Lstm => ModelConfig::scaled_lstm(sample.shape()[1], classes),
        // The Fig. 3 study covers the paper's gradient-trained families;
        // the HDC rung is benchmarked separately (`accuracy_energy`).
        ClassifierKind::Hdc => {
            return Err(AffectError::InvalidParameter {
                name: "kind",
                reason: "HDC has no Sequential model; see the accuracy_energy bench",
            })
        }
    };
    config.build(seed)
}

/// Trains and evaluates one `(family, corpus)` cell of Fig. 3(b), also
/// producing the quantization numbers of Fig. 3(c)/(d) and the confusion
/// matrix of Fig. 3(a).
///
/// # Errors
///
/// Propagates dataset, feature and training errors.
pub fn evaluate_classifier(
    kind: ClassifierKind,
    spec: &CorpusSpec,
    config: &Fig3Config,
) -> Result<ClassifierResult, Fig3Error> {
    let spec = spec
        .clone()
        .with_actors(spec.actors.min(config.max_actors))
        .with_utterances(config.utterances);
    let corpus = Corpus::generate(&spec, config.seed)?;
    let mut pipeline = pipeline_for(&spec)?;
    let layout = FeatureLayout::for_kind(kind);
    let (xs, ys) = extract_dataset(&corpus, &mut pipeline, layout)?;

    let split = TrainTestSplit::by_actor(&corpus, 0.25, config.seed)?;
    let mut train_x = TrainTestSplit::gather(&split.train, &xs);
    let train_y = TrainTestSplit::gather(&split.train, &ys);
    let mut test_x = TrainTestSplit::gather(&split.test, &xs);
    let test_y = TrainTestSplit::gather(&split.test, &ys);
    // Flat vectors use per-dimension stats; sequence-shaped data uses
    // per-feature stats pooled over time (robust in the T×F >> samples
    // regime of the CNN/LSTM inputs).
    match layout {
        FeatureLayout::Flat => {
            let (mean, std) = normalize_in_place(&mut train_x)?;
            apply_normalization(&mut test_x, &mean, &std)?;
        }
        FeatureLayout::Flattened | FeatureLayout::Strip | FeatureLayout::Sequence => {
            let fpf = pipeline.features_per_frame();
            let (mean, std) = datasets::features::normalize_features_in_place(&mut train_x, fpf)?;
            datasets::features::apply_feature_normalization(&mut test_x, &mean, &std)?;
        }
    }

    let mut model = model_for(kind, &train_x[0], spec.emotions.len(), config.seed)?;
    let mut optimizer = Adam::new(0.004);
    fit(
        &mut model,
        &train_x,
        &train_y,
        &mut optimizer,
        &FitConfig {
            epochs: config.epochs,
            batch_size: 8,
            seed: config.seed,
            verbose: false,
        },
    )?;

    let float_accuracy = accuracy(&mut model, &test_x, &test_y)?;
    let mut confusion = ConfusionMatrix::new(spec.label_names())?;
    confusion.evaluate(&mut model, &test_x, &test_y)?;

    let quant = quantize_weights_in_place(&mut model)?;
    let int8_accuracy = accuracy(&mut model, &test_x, &test_y)?;

    Ok(ClassifierResult {
        kind,
        corpus: spec.name.clone(),
        accuracy: float_accuracy,
        int8_accuracy,
        quant,
        confusion,
    })
}

/// Runs the full Fig. 3(b) grid: every family on every corpus.
///
/// # Errors
///
/// Propagates cell errors.
pub fn full_grid(config: &Fig3Config) -> Result<Vec<ClassifierResult>, Fig3Error> {
    let mut results = Vec::new();
    for spec in CorpusSpec::paper_corpora() {
        for kind in ClassifierKind::NEURAL {
            results.push(evaluate_classifier(kind, &spec, config)?);
        }
    }
    Ok(results)
}

/// Fig. 3(c): float vs int8 weight footprints of the *paper-scale*
/// configurations (sizes are architecture facts and need no training).
/// Returns `(kind, float_kb, int8_kb)` rows.
pub fn paper_weight_sizes() -> Vec<(ClassifierKind, f64, f64)> {
    [
        ModelConfig::paper_mlp(),
        ModelConfig::paper_cnn(),
        ModelConfig::paper_lstm(),
    ]
    .into_iter()
    .map(|cfg| {
        let params = cfg.param_count();
        // Tensor count per architecture: each dense/conv layer has W+b,
        // each LSTM Wx+Wh+b. Scale overhead is negligible at this size;
        // approximate with the parameter payload alone plus one scale per
        // tensor estimated from the config shape.
        let tensors = match &cfg {
            ModelConfig::Mlp { hidden, .. } => 2 * (hidden.len() + 1),
            ModelConfig::Cnn { channels, .. } => 2 * (channels.len() + 2),
            ModelConfig::Lstm { hidden, .. } => 3 * hidden.len() + 2,
            _ => 4,
        };
        let float_kb = nn::quant::float_weight_bytes(params) as f64 / 1024.0;
        let int8_kb = nn::quant::int8_weight_bytes(params, tensors) as f64 / 1024.0;
        (cfg.kind(), float_kb, int8_kb)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cell_beats_chance() {
        let spec = CorpusSpec::emovo_like();
        let r = evaluate_classifier(ClassifierKind::Mlp, &spec, &Fig3Config::quick()).unwrap();
        let chance = 1.0 / spec.emotions.len() as f32;
        assert!(r.accuracy > chance, "{} <= chance {}", r.accuracy, chance);
        assert_eq!(r.confusion.num_classes(), 7);
    }

    #[test]
    fn quantization_loss_is_small() {
        let spec = CorpusSpec::emovo_like();
        let r = evaluate_classifier(ClassifierKind::Mlp, &spec, &Fig3Config::quick()).unwrap();
        // The paper: under 3% loss. Allow a slightly wider band for the
        // quick profile's tiny test split.
        assert!(
            r.accuracy - r.int8_accuracy <= 0.1,
            "{} -> {}",
            r.accuracy,
            r.int8_accuracy
        );
        assert!(r.quant.compression_ratio() > 3.0);
    }

    #[test]
    fn paper_sizes_show_4x_compression() {
        let rows = paper_weight_sizes();
        assert_eq!(rows.len(), 3);
        for (kind, float_kb, int8_kb) in rows {
            let ratio = float_kb / int8_kb;
            assert!((3.9..=4.1).contains(&ratio), "{kind}: {ratio}");
            assert!(float_kb > 1000.0, "{kind} paper model should be MB-scale");
        }
    }
}
