//! Fig. 7: per-subject app-usage shares (left) and the emulator
//! specification table (right).

use mobile_sim::app::AppCategory;
use mobile_sim::device::DeviceConfig;
use mobile_sim::subjects::SubjectProfile;

/// Usage-share rows: `(category, share per subject 1..=4)`.
pub fn usage_rows() -> Vec<(AppCategory, [f32; 4])> {
    let subjects = SubjectProfile::paper_subjects();
    AppCategory::ALL
        .iter()
        .map(|&c| {
            let shares = [
                subjects[0].usage_share(c),
                subjects[1].usage_share(c),
                subjects[2].usage_share(c),
                subjects[3].usage_share(c),
            ];
            (c, shares)
        })
        .filter(|(_, shares)| shares.iter().any(|&s| s > 0.0))
        .collect()
}

/// The emulator specification rows of Fig. 7 (right).
pub fn spec_rows() -> Vec<(String, String)> {
    let d = DeviceConfig::paper_emulator();
    vec![
        ("Platform".into(), d.platform.clone()),
        ("Emulator Version".into(), d.os.clone()),
        ("CPU CORE".into(), d.cpu_cores.to_string()),
        (
            "Ram Allocation".into(),
            format!("{} MB", d.ram_bytes / (1024 * 1024)),
        ),
        (
            "Rom Allocation".into(),
            format!("{} GB", d.flash_bytes / (1024 * 1024 * 1024)),
        ),
        ("# of Total Apps".into(), d.apps.len().to_string()),
        ("Resolution".into(), d.resolution.clone()),
        ("Process Limit".into(), d.process_limit.to_string()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_rows_cover_the_dominant_categories() {
        let rows = usage_rows();
        assert!(rows.len() >= 13);
        let messaging = rows
            .iter()
            .find(|(c, _)| *c == AppCategory::Messaging)
            .unwrap();
        assert!(messaging.1.iter().all(|&s| s > 0.3));
    }

    #[test]
    fn spec_rows_match_paper_values() {
        let rows = spec_rows();
        let get = |k: &str| {
            rows.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("CPU CORE"), "4");
        assert_eq!(get("Ram Allocation"), "4096 MB");
        assert_eq!(get("Rom Allocation"), "32 GB");
        assert_eq!(get("# of Total Apps"), "44");
        assert_eq!(get("Resolution"), "1920x1080");
    }
}
