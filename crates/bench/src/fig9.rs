//! Fig. 9: process-lifespan timelines under the default and the
//! emotion-driven background managers for the excited→calm scenario.

use mobile_sim::device::DeviceConfig;
use mobile_sim::manager::PolicyKind;
use mobile_sim::monkey::MonkeyScript;
use mobile_sim::sim::{SimMetrics, Simulator};
use mobile_sim::subjects::SubjectProfile;
use mobile_sim::SimError;

/// Both runs of the Fig. 9 experiment on the identical workload.
#[derive(Debug, Clone)]
pub struct Fig9Runs {
    /// Android-default FIFO run.
    pub baseline: SimMetrics,
    /// Emotion-driven run.
    pub emotion: SimMetrics,
    /// The device used (for rendering).
    pub device: DeviceConfig,
}

/// Runs the Fig. 9 scenario: 12 minutes excited then 8 minutes calm,
/// launches sampled from subject 3's usage pattern.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(seed: u64) -> Result<Fig9Runs, SimError> {
    let device = DeviceConfig::paper_emulator();
    let subject = SubjectProfile::subject3();
    let workload = MonkeyScript::new(&subject, seed)
        .paper_fig9()
        .build(&device)?;
    let mut baseline_sim =
        Simulator::with_subject(device.clone(), PolicyKind::Fifo, &subject, 0.05)?;
    let mut emotion_sim =
        Simulator::with_subject(device.clone(), PolicyKind::Emotion, &subject, 0.05)?;
    Ok(Fig9Runs {
        baseline: baseline_sim.run(&workload)?,
        emotion: emotion_sim.run(&workload)?,
        device,
    })
}

/// Renders both timelines as the paper's top/bottom panels.
pub fn render(runs: &Fig9Runs, columns: usize) -> String {
    let mut out = String::new();
    out.push_str("=== system default (fifo) ===\n");
    out.push_str(&runs.baseline.timeline().render_ascii(&runs.device, columns));
    out.push_str("\n=== proposed (emotion driven) ===\n");
    out.push_str(&runs.emotion.timeline().render_ascii(&runs.device, columns));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_share_workload_but_differ_in_kills() {
        let runs = run(3).unwrap();
        assert_eq!(runs.baseline.launches, runs.emotion.launches);
        // The emotion manager reloads less.
        assert!(runs.emotion.cold_starts <= runs.baseline.cold_starts);
    }

    #[test]
    fn render_shows_both_panels() {
        let runs = run(4).unwrap();
        let art = render(&runs, 60);
        assert!(art.contains("system default"));
        assert!(art.contains("emotion driven"));
        assert!(art.contains('━'));
    }
}
