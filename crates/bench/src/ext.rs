//! Extension studies beyond the paper's evaluation (DESIGN.md §7):
//! GRU versus LSTM on the wearable parameter budget, the Android process
//! limit sweep, and the NAL composition analysis behind the `S_th = 140`
//! operating point.

use crate::fig3::Fig3Config;
use affect_core::pipeline::{FeatureConfig, FeaturePipeline};
use datasets::features::{apply_feature_normalization, normalize_features_in_place};
use datasets::{extract_dataset, Corpus, CorpusSpec, FeatureLayout, TrainTestSplit};
use h264::adaptive::paper_reference;
use h264::nal::{NalType, StreamInfo};
use mobile_sim::device::DeviceConfig;
use mobile_sim::manager::PolicyKind;
use mobile_sim::monkey::MonkeyScript;
use mobile_sim::sim::compare_policies;
use mobile_sim::subjects::SubjectProfile;
use nn::layers::{Dense, Gru, Lstm};
use nn::metrics::accuracy;
use nn::optim::Adam;
use nn::train::{fit, FitConfig};
use nn::Sequential;

/// One row of the recurrent-cell comparison.
#[derive(Debug, Clone)]
pub struct RecurrentCellRow {
    /// Cell name (`"LSTM"` / `"GRU"`).
    pub cell: &'static str,
    /// Trainable parameters.
    pub params: usize,
    /// Test accuracy on the RAVDESS-like corpus.
    pub accuracy: f32,
}

/// Trains matched two-layer LSTM and GRU classifiers on the RAVDESS-like
/// corpus — the GRU reaches LSTM-class accuracy at 3/4 the parameters,
/// extending the paper's Sec. 2 model-choice guidance.
///
/// # Errors
///
/// Propagates dataset and training errors.
pub fn gru_vs_lstm(
    config: &Fig3Config,
) -> Result<Vec<RecurrentCellRow>, Box<dyn std::error::Error>> {
    let spec = CorpusSpec::ravdess_like()
        .with_actors(config.max_actors)
        .with_utterances(config.utterances);
    let corpus = Corpus::generate(&spec, config.seed)?;
    let mut pipeline = FeaturePipeline::new(FeatureConfig {
        sample_rate: spec.sample_rate,
        frame_len: 256,
        hop: 128,
        ..FeatureConfig::default()
    })?;
    let (xs, ys) = extract_dataset(&corpus, &mut pipeline, FeatureLayout::Sequence)?;
    let split = TrainTestSplit::by_actor(&corpus, 0.25, config.seed)?;
    let mut train_x = TrainTestSplit::gather(&split.train, &xs);
    let train_y = TrainTestSplit::gather(&split.train, &ys);
    let mut test_x = TrainTestSplit::gather(&split.test, &xs);
    let test_y = TrainTestSplit::gather(&split.test, &ys);
    let fpf = pipeline.features_per_frame();
    let (mean, std) = normalize_features_in_place(&mut train_x, fpf)?;
    apply_feature_normalization(&mut test_x, &mean, &std)?;

    let hidden = 32usize;
    let classes = spec.emotions.len();
    let mut rows = Vec::new();
    for cell in ["LSTM", "GRU"] {
        let mut model = Sequential::new();
        match cell {
            "LSTM" => {
                model.push(Lstm::new(fpf, hidden, true, config.seed)?);
                model.push(Lstm::new(hidden, hidden, false, config.seed + 1)?);
            }
            _ => {
                model.push(Gru::new(fpf, hidden, true, config.seed)?);
                model.push(Gru::new(hidden, hidden, false, config.seed + 1)?);
            }
        }
        model.push(Dense::new(hidden, classes, config.seed + 2)?);
        let params = model.param_count();
        let mut optimizer = Adam::new(0.004);
        fit(
            &mut model,
            &train_x,
            &train_y,
            &mut optimizer,
            &FitConfig {
                epochs: config.epochs,
                batch_size: 8,
                seed: config.seed,
                verbose: false,
            },
        )?;
        rows.push(RecurrentCellRow {
            cell,
            params,
            accuracy: accuracy(&mut model, &test_x, &test_y)?,
        });
    }
    Ok(rows)
}

/// One row of the process-limit sweep.
#[derive(Debug, Clone, Copy)]
pub struct LimitRow {
    /// Background process limit.
    pub limit: usize,
    /// Memory-loading saving of the emotion manager vs FIFO.
    pub memory_saving: f64,
    /// Loading-time saving.
    pub time_saving: f64,
}

/// Sweeps the Android background process limit: the emotion manager's
/// advantage exists because of memory pressure, so the saving should grow
/// as the limit tightens and vanish as it relaxes.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn process_limit_sweep(
    seed: u64,
    runs: u64,
) -> Result<Vec<LimitRow>, Box<dyn std::error::Error>> {
    let runs = runs.max(1);
    let subject = SubjectProfile::subject3();
    let mut rows = Vec::new();
    for limit in [6usize, 10, 15, 20, 30, 44] {
        let mut device = DeviceConfig::paper_emulator();
        device.process_limit = limit;
        // Relax the RAM cap so the process limit is the binding constraint.
        device.os_reserved_bytes = 0;
        device.ram_bytes = 64 * 1024 * 1024 * 1024;
        let mut memory = 0.0;
        let mut time = 0.0;
        for k in 0..runs {
            let workload = MonkeyScript::new(&subject, seed + k)
                .paper_fig9()
                .build(&device)?;
            let report = compare_policies(&device, &subject, &workload, PolicyKind::Fifo, 0.05)?;
            memory += report.memory_saving();
            time += report.time_saving();
        }
        rows.push(LimitRow {
            limit,
            memory_saving: memory / runs as f64,
            time_saving: time / runs as f64,
        });
    }
    Ok(rows)
}

/// One row of the subject sweep.
#[derive(Debug, Clone)]
pub struct SubjectRow {
    /// Subject id (1–4).
    pub subject: u8,
    /// The personality trait the paper highlights.
    pub trait_label: String,
    /// Memory-loading saving of the emotion manager vs FIFO.
    pub memory_saving: f64,
    /// Loading-time saving.
    pub time_saving: f64,
}

/// Runs the Fig. 10 comparison for each of the paper's four subjects —
/// the paper evaluates subject 3 only; this shows the manager's advantage
/// holds across personalities whose usage tails differ.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn subject_sweep(seed: u64, runs: u64) -> Result<Vec<SubjectRow>, Box<dyn std::error::Error>> {
    use affect_core::emotion::Emotion;
    let runs = runs.max(1);
    let device = DeviceConfig::paper_emulator();
    let mut rows = Vec::new();
    for subject in SubjectProfile::paper_subjects() {
        let mut memory = 0.0;
        let mut time = 0.0;
        for k in 0..runs {
            let workload = MonkeyScript::new(&subject, seed + k)
                .segment(Emotion::Happy, 12.0 * 60.0, 60)
                .segment(Emotion::Calm, 8.0 * 60.0, 40)
                .build(&device)?;
            let report = compare_policies(&device, &subject, &workload, PolicyKind::Fifo, 0.05)?;
            memory += report.memory_saving();
            time += report.time_saving();
        }
        rows.push(SubjectRow {
            subject: subject.id,
            trait_label: subject.trait_label.clone(),
            memory_saving: memory / runs as f64,
            time_saving: time / runs as f64,
        });
    }
    Ok(rows)
}

/// NAL composition row for the reference stream.
#[derive(Debug, Clone)]
pub struct NalRow {
    /// Unit type label.
    pub nal_type: String,
    /// Unit count.
    pub count: usize,
    /// Mean wire size in bytes.
    pub mean_size: f64,
    /// Smallest / largest wire size.
    pub size_range: (usize, usize),
}

/// Analyzes the reference stream's NAL composition plus the droppable-byte
/// fraction at several thresholds — the data behind choosing `S_th = 140`.
///
/// # Errors
///
/// Propagates codec errors.
/// Result of [`stream_composition`]: per-type rows plus
/// `(S_th, droppable-byte fraction)` pairs.
pub type StreamComposition = (Vec<NalRow>, Vec<(usize, f64)>);

pub fn stream_composition(seed: u64) -> Result<StreamComposition, Box<dyn std::error::Error>> {
    let (_, stream) = paper_reference(seed)?;
    let info = StreamInfo::analyze(&stream)?;
    let rows = [
        ("SPS", NalType::Sps),
        ("I (IDR)", NalType::IdrSlice),
        ("P", NalType::PSlice),
        ("B", NalType::BSlice),
    ]
    .into_iter()
    .map(|(label, t)| {
        let s = info.stats(t);
        NalRow {
            nal_type: label.into(),
            count: s.count,
            mean_size: s.mean_size(),
            size_range: (s.min_size, s.max_size),
        }
    })
    .collect();
    let fractions = [0usize, 70, 140, 280, 560]
        .into_iter()
        .map(|s_th| (s_th, info.droppable_fraction(s_th)))
        .collect();
    Ok((rows, fractions))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gru_vs_lstm_quick_profile_runs() {
        let rows = gru_vs_lstm(&Fig3Config::quick()).unwrap();
        assert_eq!(rows.len(), 2);
        // The GRU stack is strictly smaller than the matched LSTM stack.
        assert!(rows[1].params < rows[0].params);
        // Both beat chance on their training regime.
        for r in &rows {
            assert!(r.accuracy > 1.0 / 8.0, "{}: {}", r.cell, r.accuracy);
        }
    }

    #[test]
    fn limit_sweep_shows_pressure_dependence() {
        let rows = process_limit_sweep(50, 2).unwrap();
        assert_eq!(rows.len(), 6);
        // With the limit at the full app count there is no pressure and no
        // meaningful saving; with a tight limit the saving is substantial.
        let tight = rows[0].memory_saving;
        let loose = rows.last().unwrap().memory_saving;
        assert!(tight > loose + 0.05, "tight {tight:.3} vs loose {loose:.3}");
        assert!(
            loose.abs() < 0.05,
            "no-pressure saving should be ~0, got {loose:.3}"
        );
    }

    #[test]
    fn subject_sweep_covers_all_profiles() {
        let rows = subject_sweep(200, 2).unwrap();
        assert_eq!(rows.len(), 4);
        // The emotion manager should help (or at worst be neutral) for
        // every personality profile.
        for r in &rows {
            assert!(
                r.memory_saving > -0.02,
                "subject {}: saving {:.3}",
                r.subject,
                r.memory_saving
            );
        }
        // And clearly help for at least three of the four.
        let winners = rows.iter().filter(|r| r.memory_saving > 0.05).count();
        assert!(winners >= 3, "only {winners} subjects benefit");
    }

    #[test]
    fn stream_composition_matches_gop() {
        let (rows, fractions) = stream_composition(5).unwrap();
        let by_label = |l: &str| rows.iter().find(|r| r.nal_type == l).unwrap().clone();
        assert_eq!(by_label("SPS").count, 1);
        assert_eq!(by_label("I (IDR)").count, 3); // 24 frames, intra period 8
        assert!(by_label("I (IDR)").mean_size > by_label("B").mean_size);
        // Droppable fraction rises with the threshold.
        for pair in fractions.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
        }
    }
}
