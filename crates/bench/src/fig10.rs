//! Fig. 10: total memory loaded at app start and total loading time,
//! emotion-driven versus the system default, averaged over seeds.

use mobile_sim::device::DeviceConfig;
use mobile_sim::manager::PolicyKind;
use mobile_sim::monkey::MonkeyScript;
use mobile_sim::sim::{compare_policies, ComparisonReport};
use mobile_sim::subjects::SubjectProfile;
use mobile_sim::SimError;

/// Aggregated Fig. 10 numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig10Result {
    /// Mean bytes loaded at app start, emotion-driven.
    pub emotion_bytes: f64,
    /// Mean bytes loaded at app start, baseline.
    pub baseline_bytes: f64,
    /// Mean loading seconds, emotion-driven.
    pub emotion_secs: f64,
    /// Mean loading seconds, baseline.
    pub baseline_secs: f64,
    /// Fractional memory saving (paper: 17%).
    pub memory_saving: f64,
    /// Saving of the flash file-loading component (paper: roughly half
    /// the total saving).
    pub flash_saving: f64,
    /// Saving of the app-specific allocated-memory component.
    pub allocated_saving: f64,
    /// Fractional loading-time saving (paper: 12%).
    pub time_saving: f64,
    /// Seeds averaged.
    pub runs: usize,
}

/// Runs the Fig. 10 comparison over `runs` workload seeds and averages.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] for zero runs; propagates
/// simulator errors.
pub fn run(base_seed: u64, runs: usize) -> Result<Fig10Result, SimError> {
    if runs == 0 {
        return Err(SimError::InvalidParameter {
            name: "runs",
            reason: "must be non-zero",
        });
    }
    let device = DeviceConfig::paper_emulator();
    let subject = SubjectProfile::subject3();
    let mut totals = Fig10Result {
        emotion_bytes: 0.0,
        baseline_bytes: 0.0,
        emotion_secs: 0.0,
        baseline_secs: 0.0,
        memory_saving: 0.0,
        flash_saving: 0.0,
        allocated_saving: 0.0,
        time_saving: 0.0,
        runs,
    };
    let mut emotion_flash = 0.0f64;
    let mut baseline_flash = 0.0f64;
    let mut emotion_alloc = 0.0f64;
    let mut baseline_alloc = 0.0f64;
    for k in 0..runs {
        let workload = MonkeyScript::new(&subject, base_seed + k as u64)
            .paper_fig9()
            .build(&device)?;
        let report: ComparisonReport =
            compare_policies(&device, &subject, &workload, PolicyKind::Fifo, 0.05)?;
        totals.emotion_bytes += report.emotion.loaded_bytes as f64;
        totals.baseline_bytes += report.baseline.loaded_bytes as f64;
        totals.emotion_secs += report.emotion.load_time_s;
        totals.baseline_secs += report.baseline.load_time_s;
        emotion_flash += report.emotion.flash_bytes as f64;
        baseline_flash += report.baseline.flash_bytes as f64;
        emotion_alloc += report.emotion.allocated_bytes as f64;
        baseline_alloc += report.baseline.allocated_bytes as f64;
    }
    let n = runs as f64;
    totals.emotion_bytes /= n;
    totals.baseline_bytes /= n;
    totals.emotion_secs /= n;
    totals.baseline_secs /= n;
    totals.memory_saving = 1.0 - totals.emotion_bytes / totals.baseline_bytes;
    totals.flash_saving = 1.0 - emotion_flash / baseline_flash;
    totals.allocated_saving = 1.0 - emotion_alloc / baseline_alloc;
    totals.time_saving = 1.0 - totals.emotion_secs / totals.baseline_secs;
    Ok(totals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_runs_rejected() {
        assert!(run(0, 0).is_err());
    }

    #[test]
    fn savings_positive_and_in_band() {
        let r = run(100, 3).unwrap();
        assert!(r.memory_saving > 0.0, "memory {:.3}", r.memory_saving);
        assert!(r.time_saving > 0.0, "time {:.3}", r.time_saving);
        // Paper: 17% / 12%. Generous band for workload noise.
        assert!(r.memory_saving < 0.45);
        assert!(r.time_saving < 0.40);
        // Shape: memory saving exceeds time saving (warm starts still pay
        // the resume latency).
        assert!(r.memory_saving > r.time_saving);
    }
}
