//! In-text tables: the Sec. 2 model-size table and the Sec. 4 silicon/area
//! table.

use affect_core::classifier::ModelConfig;
use h264::power::SiliconSpec;

/// Sec. 2 model-size audit: `(name, paper-reported params, our params)`.
pub fn model_rows() -> Vec<(String, usize, usize)> {
    vec![
        (
            "NN (MLP)".into(),
            508_000,
            ModelConfig::paper_mlp().param_count(),
        ),
        (
            "CNN".into(),
            649_000,
            ModelConfig::paper_cnn().param_count(),
        ),
        (
            "LSTM".into(),
            429_000,
            ModelConfig::paper_lstm().param_count(),
        ),
    ]
}

/// Sec. 4 silicon table rows.
pub fn silicon_rows() -> Vec<(String, String)> {
    let s = SiliconSpec::paper_65nm();
    vec![
        ("Process".into(), format!("{} nm CMOS", s.node_nm)),
        ("Decoder area".into(), format!("{:.1} mm^2", s.area_mm2)),
        (
            "Baseline area (no pre-store buffer)".into(),
            format!("{:.3} mm^2", s.baseline_area_mm2()),
        ),
        (
            "Pre-store buffer overhead".into(),
            format!("{:.2}%", s.prestore_overhead * 100.0),
        ),
        ("Supply".into(), format!("{:.1} V", s.supply_v)),
        ("Clock".into(), format!("{:.0} MHz", s.clock_mhz)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_rows_within_one_percent_of_paper() {
        for (name, paper, ours) in model_rows() {
            let err = (ours as f64 - paper as f64).abs() / paper as f64;
            assert!(err < 0.01, "{name}: {ours} vs {paper}");
        }
    }

    #[test]
    fn silicon_rows_quote_the_paper() {
        let rows = silicon_rows();
        let text: String = rows.iter().map(|(k, v)| format!("{k}={v};")).collect();
        assert!(text.contains("65 nm"));
        assert!(text.contains("1.9 mm^2"));
        assert!(text.contains("4.23%"));
        assert!(text.contains("28 MHz"));
    }
}
