//! End-to-end throughput of the `affect-rt` streaming runtime as the
//! shared classifier worker pool scales over {1, 2, 4, 8} workers.
//!
//! Each iteration runs the full closed loop: 8 sessions submit
//! pre-synthesized voice windows, the staged pipeline classifies and
//! actuates them, and the run drains to idle. Besides the Criterion
//! timings, a calibration sweep writes `benches/results/
//! runtime_throughput.csv` (workers, windows, wall seconds, windows/s,
//! p50/p99 latency) so the scaling curve is inspectable offline.

use std::sync::Arc;
use std::time::Instant;

use affect_core::emotion::Emotion;
use affect_core::pipeline::FeatureConfig;
use affect_rt::{NullActuator, RuntimeBuilder, RuntimeConfig, RuntimeReport};
use bench::table::Table;
use biosignal::VoiceWindowStream;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SESSIONS: usize = 8;
const WINDOWS: u32 = 16;
const WINDOW_SAMPLES: usize = 1024;

fn runtime_config(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        feature: FeatureConfig {
            frame_len: 256,
            hop: 128,
            n_mfcc: 8,
            n_mels: 20,
            ..FeatureConfig::default()
        },
        window_samples: WINDOW_SAMPLES,
        workers,
        // Generous budget: the bench measures throughput, not shedding.
        deadline_ns: 60_000_000_000,
        ..RuntimeConfig::default()
    }
}

/// Pre-synthesized per-session window sets (synthesis cost stays out of
/// the measured loop).
fn workload() -> Vec<Vec<Vec<f32>>> {
    (0..SESSIONS)
        .map(|i| {
            VoiceWindowStream::new(
                vec![(Emotion::ALL[i % Emotion::ALL.len()], WINDOWS)],
                WINDOW_SAMPLES,
                16_000.0,
                7000 + i as u64,
            )
            .unwrap()
            .map(|w| w.samples)
            .collect()
        })
        .collect()
}

/// One full run: build, stream every window from concurrent producers,
/// drain, shut down. Returns the final report.
fn run_once(workers: usize, windows: &[Vec<Vec<f32>>]) -> RuntimeReport {
    let mut builder = RuntimeBuilder::new(runtime_config(workers)).unwrap();
    let sessions: Vec<_> = (0..SESSIONS)
        .map(|_| builder.add_session(Box::new(NullActuator)))
        .collect();
    let runtime = Arc::new(builder.start().unwrap());
    let producers: Vec<_> = sessions
        .iter()
        .map(|&session| {
            let runtime = Arc::clone(&runtime);
            let windows = windows[session.index()].clone();
            std::thread::spawn(move || {
                for window in windows {
                    runtime.submit(session, window);
                }
            })
        })
        .collect();
    for producer in producers {
        producer.join().unwrap();
    }
    runtime.wait_idle();
    let runtime = Arc::try_unwrap(runtime).unwrap_or_else(|_| panic!("producers joined"));
    runtime.shutdown().report
}

fn bench_worker_sweep(c: &mut Criterion) {
    let windows = workload();

    // Calibration sweep: one explicit timed run per pool size, recorded to
    // CSV alongside the committed figure data.
    let mut table = Table::new(vec![
        "workers".into(),
        "windows".into(),
        "seconds".into(),
        "windows_per_sec".into(),
        "p50_ms".into(),
        "p99_ms".into(),
    ]);
    eprintln!("\nruntime worker-pool sweep ({SESSIONS} sessions x {WINDOWS} windows):");
    for workers in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let report = run_once(workers, &windows);
        let elapsed = start.elapsed().as_secs_f64();
        assert!(report.all_accounted(), "bench run lost windows");
        let processed = report.total_processed();
        let p50 = report
            .sessions
            .iter()
            .map(|s| s.latency.p50_ns)
            .max()
            .unwrap_or(0);
        let p99 = report
            .sessions
            .iter()
            .map(|s| s.latency.p99_ns)
            .max()
            .unwrap_or(0);
        eprintln!(
            "  {workers} workers: {processed} windows in {elapsed:.3}s ({:.0} windows/s)",
            processed as f64 / elapsed
        );
        table.row(vec![
            workers.to_string(),
            processed.to_string(),
            format!("{elapsed:.4}"),
            format!("{:.1}", processed as f64 / elapsed),
            format!("{:.3}", p50 as f64 / 1e6),
            format!("{:.3}", p99 as f64 / 1e6),
        ]);
    }
    let csv_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/benches/results/runtime_throughput.csv"
    );
    table.write_csv(csv_path).expect("write sweep csv");
    eprintln!("  wrote {csv_path}");

    let mut group = c.benchmark_group("runtime_throughput");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| run_once(workers, &windows));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_worker_sweep);
criterion_main!(benches);
