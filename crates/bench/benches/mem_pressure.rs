//! Memory-pressure sweep: what each pressure band costs — and saves — on
//! a loaded fleet. One fresh fleet per point; after a warm-up round the
//! shard budgets are re-targeted (`set_budget_bytes`) so the *real* usage
//! lands at a chosen permille, then `enforce_pressure` runs once per
//! lockstep round exactly like a deployment's control plane.
//!
//! The sweep walks the same staircase the governor defends: a disabled
//! budget, a roomy Green one, then budgets tight enough to force Yellow
//! (ladder degradation), Red (BestEffort eviction) and Critical (Standard
//! eviction too). Reported per point: the worst band seen, surviving
//! sessions per tier, evicted windows, pressure-triggered ladder steps,
//! and throughput over the pressured rounds.
//!
//! Outputs:
//!   - `benches/results/mem_pressure.csv` — the full sweep
//!   - `../../BENCH_mem_pressure.json` — the repo-root summary
//!
//! Flags:
//!   - `--test` (passed by `cargo test`) shrinks the run to a smoke
//!     signal and skips file output.
//!   - `--budget <bytes>` pins every point's budget instead of deriving
//!     it from measured usage (the CI smoke job sweeps two fixed budgets).
//!
//! Every point asserts the fleet accounting invariant
//! `offered == submitted + shed + evicted` per tier, and that Critical
//! sessions survive every band.

use std::sync::Arc;
use std::time::Instant;

use affect_core::pipeline::FeatureConfig;
use affect_fleet::{FleetBuilder, FleetConfig, FleetReport, QosTier, SubmitOutcome};
use affect_rt::{
    NullActuator, OverflowPolicy, PressureBand, RuntimeConfig, StageConfig, VirtualClock,
};
use bench::table::Table;

const WINDOW_SAMPLES: usize = 256;
const TICK_NS: u64 = 1_000_000_000;
const SHARDS: usize = 4;

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig {
        feature: FeatureConfig {
            frame_len: 128,
            hop: 64,
            n_mfcc: 4,
            n_mels: 12,
            ..FeatureConfig::default()
        },
        window_samples: WINDOW_SAMPLES,
        workers: 1,
        ingest: StageConfig::new(256, OverflowPolicy::Block),
        classify: StageConfig::new(256, OverflowPolicy::Block),
        control: StageConfig::new(256, OverflowPolicy::Block),
        actuate_capacity: 256,
        // Pressure, not deadlines, is under test: a generous deadline and
        // a short miss streak make every ladder step pressure-triggered.
        deadline_ns: 3_600 * TICK_NS,
        miss_streak: 1,
        ..RuntimeConfig::default()
    }
}

struct Point {
    /// Usage target in permille of the budget; 0 disables the budget.
    target_permille: u64,
    label: &'static str,
}

const POINTS: [Point; 5] = [
    Point {
        target_permille: 0,
        label: "disabled",
    },
    Point {
        target_permille: 300,
        label: "green",
    },
    Point {
        target_permille: 750,
        label: "yellow",
    },
    Point {
        target_permille: 880,
        label: "red",
    },
    Point {
        target_permille: 980,
        label: "critical",
    },
];

struct PointResult {
    band: PressureBand,
    evicted_windows: u64,
    elapsed_s: f64,
    processed: u64,
    report: FleetReport,
}

/// One sweep point: warm the fleet up, re-target the shard budgets so
/// real usage sits at `target_permille`, then drive `rounds` pressured
/// lockstep rounds with `enforce_pressure` once per round.
fn run_point(
    sessions: usize,
    rounds: u64,
    target_permille: u64,
    fixed_budget: Option<u64>,
) -> PointResult {
    let mut config = FleetConfig {
        shards: SHARDS,
        runtime: runtime_config(),
        ..FleetConfig::default()
    };
    config.admission.max_sessions_per_shard = sessions;
    config.admission.critical_reserve = 0;
    config.admission.standard_reserve = 0;
    let clock = Arc::new(VirtualClock::new());
    let mut builder = FleetBuilder::new(config).expect("fleet config");
    for key in 0..sessions as u64 {
        let tier = QosTier::ALL[key as usize % QosTier::ALL.len()];
        builder
            .add_session(key, tier, Box::new(NullActuator))
            .expect("admission cap was lifted");
    }
    let fleet = builder.clock(clock.clone()).start().expect("fleet start");

    // Warm-up round with budgets disabled: scratch arenas and model
    // tables reach steady state, so the usage we scale against is real.
    for global in 0..fleet.session_count() {
        fleet.submit(fleet.session(global), vec![0.2; WINDOW_SAMPLES]);
    }
    fleet.wait_idle();

    // Re-target every shard's budget so its own usage sits at the chosen
    // permille (or at the fixed CI budget).
    if target_permille > 0 || fixed_budget.is_some() {
        for shard in 0..fleet.shard_count() {
            let Some(budget) = fleet.shard_budget(shard) else {
                continue;
            };
            let bytes = match fixed_budget {
                Some(bytes) => bytes,
                None => budget.used_bytes() * 1000 / target_permille,
            };
            budget.set_budget_bytes(bytes.max(1));
        }
    }

    let mut evicted_windows = 0u64;
    let mut band = PressureBand::Green;
    let start = Instant::now();
    for _ in 0..rounds {
        band = band.max(fleet.enforce_pressure());
        for global in 0..fleet.session_count() {
            if fleet.submit(fleet.session(global), vec![0.2; WINDOW_SAMPLES])
                == SubmitOutcome::Evicted
            {
                evicted_windows += 1;
            }
        }
        clock.advance(TICK_NS);
        fleet.wait_idle();
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let report = fleet.shutdown();
    assert!(
        report.accounted(),
        "accounting violation at {target_permille}permille"
    );
    let critical = QosTier::Critical.index();
    assert_eq!(
        report.admission.sessions_evicted.by_tier[critical], 0,
        "a Critical session was evicted"
    );
    let processed = report.merged.total_processed();
    PointResult {
        band,
        evicted_windows,
        elapsed_s,
        processed,
        report,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let fixed_budget: Option<u64> = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--budget takes bytes"));
    let (sessions, rounds) = if test_mode { (24, 3) } else { (96, 8) };

    let mut table = Table::new(vec![
        "point".into(),
        "target_permille".into(),
        "band".into(),
        "sessions".into(),
        "evicted_sessions".into(),
        "readmitted_sessions".into(),
        "evicted_windows".into(),
        "pressure_degradations".into(),
        "processed".into(),
        "windows_per_sec".into(),
    ]);
    let mut json_points = Vec::new();
    eprintln!("\nmemory-pressure sweep ({SHARDS} shards, {sessions} sessions, {rounds} rounds):");
    for point in &POINTS {
        // A fixed CI budget collapses the sweep to that budget at every
        // labelled point; the bands then come from real usage alone.
        let result = run_point(sessions, rounds, point.target_permille, fixed_budget);
        let adm = &result.report.admission;
        let per_sec = result.processed as f64 / result.elapsed_s;
        let evicted_sessions = adm.sessions_evicted.total();
        let readmitted = adm.sessions_readmitted.total();
        let degradations = result.report.merged.mem.pressure_degradations;
        eprintln!(
            "  {:>9} ({:>4}permille): band {:?}, {} sessions evicted, {} windows bounced, \
             {} ladder steps, {:>7.0} windows/s",
            point.label,
            point.target_permille,
            result.band,
            evicted_sessions,
            result.evicted_windows,
            degradations,
            per_sec,
        );
        table.row(vec![
            point.label.to_string(),
            point.target_permille.to_string(),
            format!("{:?}", result.band),
            sessions.to_string(),
            evicted_sessions.to_string(),
            readmitted.to_string(),
            result.evicted_windows.to_string(),
            degradations.to_string(),
            result.processed.to_string(),
            format!("{per_sec:.1}"),
        ]);
        json_points.push(format!(
            "    {{\n      \"point\": \"{}\",\n      \"target_permille\": {},\n      \
             \"band\": \"{:?}\",\n      \"evicted_sessions\": {},\n      \
             \"readmitted_sessions\": {},\n      \"evicted_windows\": {},\n      \
             \"pressure_degradations\": {},\n      \"windows_per_sec\": {:.1},\n      \
             \"accounted\": true\n    }}",
            point.label,
            point.target_permille,
            result.band,
            evicted_sessions,
            readmitted,
            result.evicted_windows,
            degradations,
            per_sec,
        ));
    }

    if test_mode {
        println!("test mode: skipping csv/json output");
        return;
    }

    let csv_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/benches/results/mem_pressure.csv"
    );
    table.write_csv(csv_path).expect("write mem sweep csv");
    println!("wrote {csv_path}");

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mem_pressure.json");
    let json = format!(
        "{{\n  \"bench\": \"mem_pressure\",\n  \"unit\": \"windows_per_sec\",\n  \
         \"shards\": {SHARDS},\n  \"sessions\": {sessions},\n  \"rounds_per_point\": {rounds},\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        json_points.join(",\n")
    );
    std::fs::write(json_path, json).expect("write mem_pressure json");
    println!("wrote {json_path}");
}
