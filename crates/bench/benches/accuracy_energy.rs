//! Accuracy/energy frontier of the degradation ladder (ISSUE 9 tentpole
//! gate): every classifier family the runtime can stand a session on —
//! {MLP, CNN, LSTM} × {f32, int8} plus the integer-only HDC rung — trained
//! on one synthetic corpus and measured on accuracy, inference latency,
//! estimated per-window arithmetic, and model storage.
//!
//! The "energy" axis is the *estimated operation count*, not wall time:
//! for the neural families it is first-order MACs (2 ops per weight, times
//! the weight-reuse factor of the architecture), for HDC it is
//! `HdcClassifier::estimated_word_ops` (XOR + popcount words per encode +
//! lookup). Both are deterministic in the model shape, so CI can gate on
//! the ratio without timing noise; ns/window is reported alongside as the
//! measured sanity check. One 64-bit word op bundles up to 64 bit ops, so
//! counting it as a single op *understates* HDC's advantage — the gate is
//! conservative.
//!
//! Writes:
//!   - `benches/results/accuracy_energy.csv` — the full family × precision
//!     grid
//!   - `../../BENCH_accuracy_energy.json` — the repo-root trajectory file
//!     CI's bench-smoke job uploads as an artifact
//!
//! Gates:
//!   - always (deterministic): HDC must be ≥ 5× cheaper than MLP-f32 in
//!     estimated ops — the claim that lets `affect-rt` keep classifying
//!     under breaker trips and load shedding;
//!   - always: every int8 family must stay within 10 accuracy points of
//!     its f32 twin (the paper's < 3% quantization-loss claim, with slack
//!     for the small synthetic test split);
//!   - full mode only (bigger split): HDC accuracy must clear the floor
//!     the runtime's `min_accuracy` table assumes for the bottom rung.

use std::time::Instant;

use affect_core::classifier::{ClassifierKind, ModelConfig};
use affect_core::pipeline::{FeatureConfig, FeaturePipeline};
use bench::table::Table;
use criterion::black_box;
use datasets::{
    extract_dataset, features::apply_feature_normalization, features::apply_normalization,
    features::normalize_features_in_place, features::normalize_in_place, Corpus, CorpusSpec,
    FeatureLayout, TrainTestSplit,
};
use nn::hdc::HdcClassifier;
use nn::optim::Adam;
use nn::train::{fit, FitConfig};
use nn::{Precision, Scratch, Sequential, Tensor};

/// Estimated-ops gate: HDC must be at least this many times cheaper than
/// the MLP-f32 rung above it.
const HDC_OPS_GATE: f64 = 5.0;
/// Max accuracy an int8 family may lose vs. its f32 twin.
const INT8_ACCURACY_SLACK: f32 = 0.10;
/// Accuracy floor for the HDC rung in full mode. Mirrors the bottom entry
/// of `affect-rt`'s `NOMINAL_ACCURACY` table — update both together.
const HDC_ACCURACY_FLOOR: f32 = 0.30;
/// Target wall-clock per latency measurement.
const TARGET_SECS: f64 = 0.25;

struct Row {
    family: &'static str,
    precision: &'static str,
    accuracy: f32,
    ns_per_window: f64,
    est_ops: u64,
    storage_bytes: usize,
}

/// Accuracy through the scratch inference path — the path the runtime
/// actually runs, and the only one the int8 switch affects.
fn scratch_accuracy(
    model: &mut Sequential,
    xs: &[Tensor],
    ys: &[usize],
    scratch: &mut Scratch,
) -> f32 {
    let mut hits = 0usize;
    for (x, &y) in xs.iter().zip(ys) {
        let (_, out) = model
            .forward_with(x.data(), x.shape(), scratch)
            .expect("forward");
        let pred = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty output");
        hits += usize::from(pred == y);
    }
    hits as f32 / xs.len().max(1) as f32
}

/// ns/window of the scratch forward pass over the test set.
fn time_neural(model: &mut Sequential, xs: &[Tensor], scratch: &mut Scratch, reps: usize) -> f64 {
    // Warm the scratch pool so the measured loop is allocation-free.
    for x in xs.iter().take(2) {
        let _ = model.forward_with(x.data(), x.shape(), scratch).unwrap();
    }
    let start = Instant::now();
    for _ in 0..reps {
        for x in xs {
            let _ = model
                .forward_with(black_box(x.data()), x.shape(), scratch)
                .unwrap();
        }
    }
    start.elapsed().as_nanos() as f64 / (reps * xs.len()).max(1) as f64
}

/// First-order per-window MAC estimate: 2 ops per weight, times how many
/// output positions / time steps reuse each weight.
fn neural_est_ops(kind: ClassifierKind, params: usize, time_steps: usize) -> u64 {
    let reuse = match kind {
        ClassifierKind::Mlp => 1,
        // Conv kernels slide over ~T positions; recurrent weights fire
        // once per step. Dense heads are a small fraction of both.
        ClassifierKind::Cnn | ClassifierKind::Lstm => time_steps,
        ClassifierKind::Hdc => unreachable!("HDC counts word ops"),
    };
    2 * params as u64 * reuse as u64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");

    let spec = CorpusSpec::emovo_like();
    let (actors, utterances, epochs) = if test_mode { (3, 2, 6) } else { (8, 3, 24) };
    let spec = spec.with_actors(actors).with_utterances(utterances);
    let seed = 7u64;
    let classes = spec.emotions.len();
    let corpus = Corpus::generate(&spec, seed).expect("corpus");
    eprintln!(
        "accuracy_energy: {} corpus, {} actors x {} utterances, {} classes",
        spec.name, actors, utterances, classes
    );

    let mut rows: Vec<Row> = Vec::new();

    for kind in ClassifierKind::NEURAL {
        let mut pipeline = FeaturePipeline::new(FeatureConfig {
            sample_rate: spec.sample_rate,
            frame_len: 256,
            hop: 128,
            ..FeatureConfig::default()
        })
        .expect("pipeline");
        let layout = FeatureLayout::for_kind(kind);
        let (xs, ys) = extract_dataset(&corpus, &mut pipeline, layout).expect("features");
        let split = TrainTestSplit::by_actor(&corpus, 0.25, seed).expect("split");
        let mut train_x = TrainTestSplit::gather(&split.train, &xs);
        let train_y = TrainTestSplit::gather(&split.train, &ys);
        let mut test_x = TrainTestSplit::gather(&split.test, &xs);
        let test_y = TrainTestSplit::gather(&split.test, &ys);
        match layout {
            FeatureLayout::Flat => {
                let (mean, std) = normalize_in_place(&mut train_x).expect("norm");
                apply_normalization(&mut test_x, &mean, &std).expect("norm");
            }
            _ => {
                let fpf = pipeline.features_per_frame();
                let (mean, std) = normalize_features_in_place(&mut train_x, fpf).expect("norm");
                apply_feature_normalization(&mut test_x, &mean, &std).expect("norm");
            }
        }

        let sample = &train_x[0];
        let config = match kind {
            ClassifierKind::Mlp => ModelConfig::scaled_mlp(sample.shape()[0], classes),
            ClassifierKind::Cnn => ModelConfig::scaled_cnn(sample.shape()[1], classes),
            ClassifierKind::Lstm => ModelConfig::scaled_lstm(sample.shape()[1], classes),
            ClassifierKind::Hdc => unreachable!("neural loop"),
        };
        let mut model = config.build(seed).expect("model");
        let mut optimizer = Adam::new(0.004);
        fit(
            &mut model,
            &train_x,
            &train_y,
            &mut optimizer,
            &FitConfig {
                epochs,
                batch_size: 8,
                seed,
                verbose: false,
            },
        )
        .expect("training");

        let params = model.param_count();
        let time_steps = if sample.shape().len() > 1 {
            sample.shape()[0]
        } else {
            1
        };
        let mut scratch = Scratch::new();
        let once = {
            let t0 = Instant::now();
            let _ = scratch_accuracy(&mut model, &test_x, &test_y, &mut scratch);
            t0.elapsed().as_secs_f64().max(1e-6)
        };
        let reps = if test_mode {
            1
        } else {
            ((TARGET_SECS / once) as usize).clamp(2, 200)
        };

        for precision in [Precision::F32, Precision::Int8] {
            model.set_precision(precision).expect("precision switch");
            let accuracy = scratch_accuracy(&mut model, &test_x, &test_y, &mut scratch);
            let ns = time_neural(&mut model, &test_x, &mut scratch, reps);
            let storage_bytes = match precision {
                Precision::F32 => nn::quant::float_weight_bytes(params),
                Precision::Int8 => nn::quant::int8_weight_bytes(params, model.len() * 2),
            };
            let label = match precision {
                Precision::F32 => "f32",
                Precision::Int8 => "i8",
            };
            eprintln!(
                "  {:4} {label:>3}: accuracy {:.3}, {:>9.0} ns/window, {:>10} est ops, {:>7} B",
                kind.name(),
                accuracy,
                ns,
                neural_est_ops(kind, params, time_steps),
                storage_bytes
            );
            rows.push(Row {
                family: kind.name(),
                precision: label,
                accuracy,
                ns_per_window: ns,
                est_ops: neural_est_ops(kind, params, time_steps),
                storage_bytes,
            });
        }
        model.set_precision(Precision::F32).expect("restore f32");
    }

    // The HDC rung: integer-only, trained in one pass, measured on the
    // same flat features as the MLP.
    {
        let mut pipeline = FeaturePipeline::new(FeatureConfig {
            sample_rate: spec.sample_rate,
            frame_len: 256,
            hop: 128,
            ..FeatureConfig::default()
        })
        .expect("pipeline");
        let (xs, ys) = extract_dataset(&corpus, &mut pipeline, FeatureLayout::Flat).expect("flat");
        let split = TrainTestSplit::by_actor(&corpus, 0.25, seed).expect("split");
        let mut train_x = TrainTestSplit::gather(&split.train, &xs);
        let train_y = TrainTestSplit::gather(&split.train, &ys);
        let mut test_x = TrainTestSplit::gather(&split.test, &xs);
        let test_y = TrainTestSplit::gather(&split.test, &ys);
        let (mean, std) = normalize_in_place(&mut train_x).expect("norm");
        apply_normalization(&mut test_x, &mean, &std).expect("norm");

        let mut clf = HdcClassifier::new(
            nn::hdc::HdcConfig::new(train_x[0].len(), classes, seed).expect("hdc config"),
        )
        .expect("hdc");
        clf.fit(&train_x, &train_y).expect("hdc fit");
        let accuracy = clf.accuracy(&test_x, &test_y).expect("hdc accuracy");

        let once = {
            let t0 = Instant::now();
            let _ = clf.accuracy(&test_x, &test_y).unwrap();
            t0.elapsed().as_secs_f64().max(1e-6)
        };
        let reps = if test_mode {
            1
        } else {
            ((TARGET_SECS / once) as usize).clamp(2, 400)
        };
        let start = Instant::now();
        for _ in 0..reps {
            for x in &test_x {
                let _ = clf.predict(black_box(x.data())).unwrap();
            }
        }
        let ns = start.elapsed().as_nanos() as f64 / (reps * test_x.len()).max(1) as f64;
        eprintln!(
            "  HDC   i8: accuracy {:.3}, {:>9.0} ns/window, {:>10} est ops, {:>7} B",
            accuracy,
            ns,
            clf.estimated_word_ops(),
            clf.storage_bytes()
        );
        rows.push(Row {
            family: "HDC",
            precision: "i8",
            accuracy,
            ns_per_window: ns,
            est_ops: clf.estimated_word_ops(),
            storage_bytes: clf.storage_bytes(),
        });
    }

    // --- Gates ---------------------------------------------------------
    let find = |family: &str, precision: &str| -> &Row {
        rows.iter()
            .find(|r| r.family == family && r.precision == precision)
            .expect("row present")
    };
    let mlp_f32 = find("NN", "f32");
    let hdc = find("HDC", "i8");
    let ops_ratio = mlp_f32.est_ops as f64 / hdc.est_ops.max(1) as f64;
    eprintln!(
        "accuracy_energy: HDC is x{ops_ratio:.1} cheaper than MLP-f32 in estimated ops \
         (gate x{HDC_OPS_GATE})"
    );
    for kind in ClassifierKind::NEURAL {
        let f32_row = find(kind.name(), "f32");
        let i8_row = find(kind.name(), "i8");
        assert!(
            f32_row.accuracy - i8_row.accuracy <= INT8_ACCURACY_SLACK,
            "{}: int8 lost too much accuracy ({:.3} -> {:.3})",
            kind.name(),
            f32_row.accuracy,
            i8_row.accuracy
        );
    }
    if !test_mode {
        assert!(
            hdc.accuracy >= HDC_ACCURACY_FLOOR,
            "HDC accuracy {:.3} under the {} floor the runtime ladder assumes",
            hdc.accuracy,
            HDC_ACCURACY_FLOOR
        );
    }

    // --- Artifacts -----------------------------------------------------
    let mut table = Table::new(vec![
        "family".into(),
        "precision".into(),
        "accuracy".into(),
        "ns_per_window".into(),
        "est_ops".into(),
        "storage_bytes".into(),
    ]);
    let mut json_rows = Vec::new();
    for r in &rows {
        table.row(vec![
            r.family.into(),
            r.precision.into(),
            format!("{:.4}", r.accuracy),
            format!("{:.0}", r.ns_per_window),
            r.est_ops.to_string(),
            r.storage_bytes.to_string(),
        ]);
        json_rows.push(format!(
            "    {{\"family\": \"{}\", \"precision\": \"{}\", \"accuracy\": {:.4}, \
             \"ns_per_window\": {:.0}, \"est_ops\": {}, \"storage_bytes\": {}}}",
            r.family, r.precision, r.accuracy, r.ns_per_window, r.est_ops, r.storage_bytes
        ));
    }

    // `--test` keeps the committed results untouched: a tiny debug run
    // would overwrite the tracked numbers with noise.
    if !test_mode {
        let csv_path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/benches/results/accuracy_energy.csv"
        );
        table.write_csv(csv_path).expect("write csv");
        eprintln!("wrote {csv_path}");

        let json_path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_accuracy_energy.json"
        );
        let json = format!(
            "{{\n  \"bench\": \"accuracy_energy\",\n  \"unit\": \"accuracy_and_est_ops\",\n  \
             \"classes\": {classes},\n  \"hdc_vs_mlp_f32_ops_ratio\": {ops_ratio:.1},\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write(json_path, json).expect("write json");
        eprintln!("wrote {json_path}");
    }

    assert!(
        ops_ratio >= HDC_OPS_GATE,
        "HDC is only x{ops_ratio:.1} cheaper than MLP-f32 in estimated ops (gate x{HDC_OPS_GATE})"
    );
}
