//! End-to-end Fig. 6 playback: the full mode-profile measurement plus the
//! session replay, as one benchmark unit.

use affect_core::policy::PolicyTable;
use biosignal::UulmmacSession;
use criterion::{criterion_group, criterion_main, Criterion};
use h264::adaptive::{adaptive_playback, paper_reference};
use std::hint::black_box;

fn bench_playback(c: &mut Criterion) {
    let (frames, stream) = paper_reference(5).unwrap();
    let session = UulmmacSession::paper_fig6(5).unwrap();
    let schedule: Vec<_> = session
        .segments()
        .iter()
        .map(|s| (s.state, s.duration_min()))
        .collect();
    let policy = PolicyTable::paper_defaults();

    let mut group = c.benchmark_group("fig6_playback");
    group.sample_size(10);
    group.bench_function("adaptive_playback_end_to_end", |b| {
        b.iter(|| adaptive_playback(black_box(&stream), &frames, &schedule, &policy).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_playback);
criterion_main!(benches);
