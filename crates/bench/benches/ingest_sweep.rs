//! Streaming-ingest throughput sweep over wire chunk size (ISSUE 8
//! tentpole gate).
//!
//! Encodes a clip once, then decodes it repeatedly through the chunked
//! streaming front-end (`Decoder::begin_stream` → `decode_chunk` →
//! `finish`) at transport chunk sizes from one byte to the whole buffer,
//! reporting wire MB/s (stream bytes through the scanner per second).
//! Whole-buffer `Decoder::decode` is measured as the baseline — since the
//! batch path is itself a thin wrapper over the streaming path, the sweep
//! isolates pure chunking overhead (scanner carry state, per-chunk
//! buffer management).
//!
//! Writes:
//!   - `benches/results/ingest_sweep.csv` — chunk-size grid with MB/s and
//!     the overhead ratio vs. whole-buffer decode
//!   - `../../BENCH_ingest_sweep.json` — the repo-root trajectory file
//!     CI's bench-smoke job uploads as an artifact
//!
//! Two gates, both exercised in every mode (including `--test`):
//!   - correctness: every chunking's output must equal whole-buffer
//!     decode (frames, activity, selection, buffer stats);
//!   - performance (skipped in `--test`): at MTU-sized chunks (1500 B)
//!     streaming ingest must stay within 2× of whole-buffer decode time.

use std::time::Instant;

use affect_core::policy::VideoPowerMode;
use bench::table::Table;
use criterion::black_box;
use h264::adaptive::options_for_mode;
use h264::decoder::{DecodeOutput, Decoder};
use h264::encoder::{Encoder, EncoderConfig, GopPattern};
use h264::video::synthetic_clip;

/// Max allowed slowdown vs. whole-buffer decode at MTU-sized chunks.
const MTU_OVERHEAD_GATE: f64 = 2.0;
/// Target wall-clock per chunk-size measurement.
const TARGET_SECS: f64 = 0.25;

fn chunk_sizes(len: usize, test_mode: bool) -> Vec<usize> {
    if test_mode {
        vec![1, 64, 1500, len]
    } else {
        vec![1, 4, 16, 64, 256, 1500, 8192, len]
    }
}

fn decode_chunked(
    options: h264::decoder::DecoderOptions,
    stream: &[u8],
    chunk: usize,
) -> DecodeOutput {
    let mut s = Decoder::new(options).begin_stream();
    for piece in stream.chunks(chunk) {
        s.decode_chunk(black_box(piece)).expect("chunk decodes");
    }
    s.finish().expect("stream finishes")
}

fn assert_equivalent(chunk: usize, got: &DecodeOutput, want: &DecodeOutput) {
    assert_eq!(
        got.frames, want.frames,
        "frames diverged at chunk size {chunk}"
    );
    assert_eq!(
        got.activity, want.activity,
        "activity diverged at chunk size {chunk}"
    );
    assert_eq!(
        got.selection, want.selection,
        "selection diverged at chunk size {chunk}"
    );
    assert_eq!(
        got.buffer, want.buffer,
        "buffer stats diverged at chunk size {chunk}"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");

    let mode = VideoPowerMode::Combined;
    let options = options_for_mode(mode);
    let frames = synthetic_clip(96, 96, if test_mode { 4 } else { 8 }, 17).unwrap();
    let stream = Encoder::new(EncoderConfig {
        qp: 28,
        gop: GopPattern {
            intra_period: 4,
            b_between: 1,
        },
        ..EncoderConfig::default()
    })
    .unwrap()
    .encode(&frames)
    .unwrap();
    let stream_mb = stream.len() as f64 / 1e6;

    // Baseline: whole-buffer decode, also the correctness reference.
    let reference = Decoder::new(options)
        .decode(&stream)
        .expect("intact stream");
    let reps = if test_mode {
        2
    } else {
        let t0 = Instant::now();
        let _ = Decoder::new(options).decode(&stream).unwrap();
        let once = t0.elapsed().as_secs_f64().max(1e-6);
        ((TARGET_SECS / once) as usize).clamp(3, 400)
    };
    let start = Instant::now();
    for _ in 0..reps {
        let _ = Decoder::new(options).decode(black_box(&stream)).unwrap();
    }
    let whole_mb_s = stream_mb * reps as f64 / start.elapsed().as_secs_f64().max(1e-9);
    eprintln!(
        "ingest_sweep: {} byte stream, whole-buffer baseline {:.1} MB/s ({reps} reps)",
        stream.len(),
        whole_mb_s
    );

    let mut table = Table::new(vec![
        "chunk_bytes".into(),
        "chunks".into(),
        "wire_mb_s".into(),
        "overhead_vs_whole".into(),
    ]);
    let mut json_points = Vec::new();
    let mut mtu_overhead = 1.0f64;

    for chunk in chunk_sizes(stream.len(), test_mode) {
        // Correctness gate: every chunking equals whole-buffer decode.
        let out = decode_chunked(options, &stream, chunk);
        assert_equivalent(chunk, &out, &reference);

        let start = Instant::now();
        for _ in 0..reps {
            let _ = decode_chunked(options, &stream, chunk);
        }
        let mb_s = stream_mb * reps as f64 / start.elapsed().as_secs_f64().max(1e-9);
        let overhead = whole_mb_s / mb_s.max(1e-9);
        if chunk == 1500 {
            mtu_overhead = overhead;
        }
        let n_chunks = stream.len().div_ceil(chunk);
        eprintln!(
            "  chunk {chunk:>7} B  {n_chunks:>6} chunks  {mb_s:>8.1} MB/s  x{overhead:.2} vs whole"
        );
        table.row(vec![
            chunk.to_string(),
            n_chunks.to_string(),
            format!("{mb_s:.1}"),
            format!("{overhead:.3}"),
        ]);
        json_points.push(format!(
            "    {{\"chunk_bytes\": {chunk}, \"chunks\": {n_chunks}, \"wire_mb_per_s\": {mb_s:.1}, \
             \"overhead_vs_whole\": {overhead:.3}}}"
        ));
    }

    eprintln!("ingest_sweep: every chunking byte-identical to whole-buffer decode");

    // `--test` keeps the committed results untouched: a 2-rep debug run
    // would overwrite the tracked numbers with noise.
    if test_mode {
        return;
    }

    let csv_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/benches/results/ingest_sweep.csv"
    );
    table.write_csv(csv_path).expect("write csv");
    eprintln!("wrote {csv_path}");

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest_sweep.json");
    let json = format!(
        "{{\n  \"bench\": \"ingest_sweep\",\n  \"unit\": \"wire_mb_per_sec\",\n  \
         \"stream_bytes\": {},\n  \"whole_buffer_mb_per_s\": {whole_mb_s:.1},\n  \
         \"mtu_overhead\": {mtu_overhead:.3},\n  \"points\": [\n{}\n  ]\n}}\n",
        stream.len(),
        json_points.join(",\n")
    );
    std::fs::write(json_path, json).expect("write json");
    eprintln!("wrote {json_path}");

    assert!(
        mtu_overhead <= MTU_OVERHEAD_GATE,
        "MTU-chunked ingest is x{mtu_overhead:.2} slower than whole-buffer decode \
         (gate x{MTU_OVERHEAD_GATE})"
    );
}
