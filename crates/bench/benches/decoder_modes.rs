//! Decode throughput of the four power modes on the calibration clip —
//! the Fig. 6 (middle) comparison as wall-clock rather than modelled
//! energy. The workload reduction of the saving modes should show up as a
//! real speedup here.

use affect_core::policy::VideoPowerMode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use h264::adaptive::{options_for_mode, paper_reference};
use h264::decoder::Decoder;
use std::hint::black_box;

fn bench_modes(c: &mut Criterion) {
    let (_, stream) = paper_reference(5).unwrap();
    let mut group = c.benchmark_group("decode_mode");
    group.sample_size(20);
    for mode in VideoPowerMode::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &stream, |b, s| {
            b.iter(|| {
                let mut decoder = Decoder::new(options_for_mode(mode));
                decoder.decode(black_box(s)).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
