//! Throughput of the mobile simulator under the three kill policies on
//! the Fig. 9 workload, plus the Affect-Table learning-rate ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mobile_sim::device::DeviceConfig;
use mobile_sim::manager::PolicyKind;
use mobile_sim::monkey::MonkeyScript;
use mobile_sim::sim::{compare_policies, Simulator};
use mobile_sim::subjects::SubjectProfile;
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let device = DeviceConfig::paper_emulator();
    let subject = SubjectProfile::subject3();
    let workload = MonkeyScript::new(&subject, 5)
        .paper_fig9()
        .build(&device)
        .unwrap();

    let mut group = c.benchmark_group("sim_policy");
    for kind in [PolicyKind::Fifo, PolicyKind::Lru, PolicyKind::Emotion] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &workload, |b, w| {
            b.iter(|| {
                let mut sim =
                    Simulator::with_subject(device.clone(), kind, &subject, 0.05).unwrap();
                sim.run(black_box(w)).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_alpha_ablation(c: &mut Criterion) {
    // DESIGN.md §7: App Affect Table learning rate vs reload savings.
    let device = DeviceConfig::paper_emulator();
    let subject = SubjectProfile::subject3();
    let workload = MonkeyScript::new(&subject, 6)
        .paper_fig9()
        .build(&device)
        .unwrap();

    eprintln!("\nAffect-table EMA alpha ablation (memory saving vs fifo):");
    for alpha in [0.0f32, 0.02, 0.05, 0.1, 0.3] {
        let report =
            compare_policies(&device, &subject, &workload, PolicyKind::Fifo, alpha).unwrap();
        eprintln!(
            "  alpha {alpha:>4}: memory saving {:>5.1}%  time saving {:>5.1}%",
            report.memory_saving() * 100.0,
            report.time_saving() * 100.0
        );
    }

    c.bench_function("compare_policies_alpha_0.05", |b| {
        b.iter(|| {
            compare_policies(
                &device,
                &subject,
                black_box(&workload),
                PolicyKind::Fifo,
                0.05,
            )
            .unwrap()
        });
    });
}

criterion_group!(benches, bench_policies, bench_alpha_ablation);
criterion_main!(benches);
