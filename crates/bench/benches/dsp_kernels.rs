//! Kernel benchmarks for the DSP front end (the per-window work the
//! wearable/phone does for every classification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsp::{pitch_autocorrelation, rfft_magnitude, MfccExtractor};
use std::hint::black_box;

fn tone(hz: f32, n: usize, sample_rate: f32) -> Vec<f32> {
    (0..n)
        .map(|i| (2.0 * std::f32::consts::PI * hz * i as f32 / sample_rate).sin())
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_magnitude");
    for size in [256usize, 512, 1024] {
        let signal = tone(440.0, size, 16_000.0);
        group.bench_with_input(BenchmarkId::from_parameter(size), &signal, |b, s| {
            b.iter(|| rfft_magnitude(black_box(s)).unwrap());
        });
    }
    group.finish();
}

fn bench_mfcc(c: &mut Criterion) {
    let extractor = MfccExtractor::new(16_000.0, 512, 26, 13).unwrap();
    let frame = tone(220.0, 512, 16_000.0);
    c.bench_function("mfcc_extract_512", |b| {
        b.iter(|| extractor.extract(black_box(&frame)).unwrap());
    });
}

fn bench_pitch(c: &mut Criterion) {
    let frame = tone(180.0, 800, 8_000.0);
    c.bench_function("pitch_autocorrelation_800", |b| {
        b.iter(|| pitch_autocorrelation(black_box(&frame), 8_000.0, 60.0, 500.0).unwrap());
    });
}

criterion_group!(benches, bench_fft, bench_mfcc, bench_pitch);
criterion_main!(benches);
