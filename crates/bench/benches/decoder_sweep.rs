//! Ablation sweep of the Input Selector parameters (`S_th`, `f`) — the
//! design-choice study DESIGN.md §7 calls out. Prints the power/quality
//! frontier alongside the timing measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use h264::adaptive::paper_reference;
use h264::buffers::SelectorParams;
use h264::decoder::{Decoder, DecoderOptions};
use h264::quality::mean_psnr;
use std::hint::black_box;

fn bench_sweep(c: &mut Criterion) {
    let (frames, stream) = paper_reference(5).unwrap();

    // Report the frontier once so the bench output doubles as the ablation
    // table.
    eprintln!("\nS_th / f ablation (deleted units, psnr):");
    for s_th in [0usize, 70, 140, 280, 560] {
        for f in [1u32, 2, 4] {
            let mut decoder = Decoder::new(DecoderOptions {
                deblock: true,
                selector: Some(SelectorParams::new(s_th, f).unwrap()),
                resilient: false,
            });
            let out = decoder.decode(&stream).unwrap();
            let psnr = mean_psnr(&frames, &out.frames).unwrap();
            eprintln!(
                "  s_th {s_th:>4}  f {f}: deleted {:>2}  psnr {psnr:.2} dB",
                out.selection.deleted_units
            );
        }
    }

    let mut group = c.benchmark_group("selector_sweep");
    group.sample_size(20);
    for s_th in [0usize, 140, 560] {
        group.bench_with_input(BenchmarkId::from_parameter(s_th), &stream, |b, s| {
            b.iter(|| {
                let mut decoder = Decoder::new(DecoderOptions {
                    deblock: true,
                    selector: Some(SelectorParams::new(s_th, 1).unwrap()),
                    resilient: false,
                });
                decoder.decode(black_box(s)).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
