//! Feature-extraction throughput per classifier layout — the phone-side
//! per-utterance cost feeding the Fig. 3 study — plus the smoothing-window
//! ablation of DESIGN.md §7.

use affect_core::emotion::Emotion;
use affect_core::pipeline::{FeatureConfig, FeaturePipeline};
use affect_core::smoothing::MajoritySmoother;
use biosignal::{synthesize_utterance, UtteranceParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_extraction(c: &mut Criterion) {
    let mut pipeline = FeaturePipeline::new(FeatureConfig {
        sample_rate: 8_000.0,
        frame_len: 256,
        hop: 128,
        ..FeatureConfig::default()
    })
    .unwrap();
    let window = synthesize_utterance(
        &UtteranceParams::for_emotion(Emotion::Happy),
        1.2,
        8_000.0,
        1,
    )
    .unwrap();

    let mut group = c.benchmark_group("feature_extraction");
    group.bench_function("sequence", |b| {
        b.iter(|| pipeline.extract_sequence(black_box(&window)).unwrap());
    });
    group.bench_function("strip", |b| {
        b.iter(|| pipeline.extract_strip(black_box(&window)).unwrap());
    });
    group.bench_function("flat_stats", |b| {
        b.iter(|| pipeline.extract_flat(black_box(&window)).unwrap());
    });
    group.finish();
}

fn bench_smoothing_ablation(c: &mut Criterion) {
    // DESIGN.md §7: smoothing window vs control thrash. Feed a noisy
    // stream (80% happy, 20% random) and count state changes per window.
    let noisy: Vec<Emotion> = (0..10_000)
        .map(|i| {
            if i % 5 == 4 {
                Emotion::ALL[i * 7 % 8]
            } else {
                Emotion::Happy
            }
        })
        .collect();
    eprintln!("\nsmoothing-window ablation (state changes over 10k noisy windows):");
    for window in [1usize, 3, 5, 9] {
        let mut smoother = MajoritySmoother::new(window, 0).unwrap();
        let changes = noisy
            .iter()
            .filter(|&&e| smoother.push(e).is_some())
            .count();
        eprintln!("  window {window}: {changes} changes");
    }

    let mut group = c.benchmark_group("smoother_push");
    for window in [1usize, 5, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &noisy, |b, stream| {
            b.iter(|| {
                let mut smoother = MajoritySmoother::new(window, 0).unwrap();
                let mut changes = 0usize;
                for &e in stream.iter().take(1_000) {
                    if smoother.push(black_box(e)).is_some() {
                        changes += 1;
                    }
                }
                changes
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extraction, bench_smoothing_ablation);
criterion_main!(benches);
