//! Inference latency of the three classifier families — the "real-time"
//! budget a wearable-class deployment must meet — at the scaled profile,
//! float versus int8-rounded weights.

use affect_core::classifier::ModelConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use nn::quant::quantize_weights_in_place;
use nn::Tensor;
use std::hint::black_box;

const SEQ_LEN: usize = 73;
const FEATURES: usize = 19;

fn bench_family(c: &mut Criterion, name: &str, config: ModelConfig, input: Tensor) {
    let mut float_model = config.build(1).unwrap();
    let mut int8_model = config.build(1).unwrap();
    quantize_weights_in_place(&mut int8_model).unwrap();

    let mut group = c.benchmark_group(name);
    group.bench_function("float", |b| {
        b.iter(|| float_model.forward(black_box(&input), false).unwrap());
    });
    group.bench_function("int8_rounded", |b| {
        b.iter(|| int8_model.forward(black_box(&input), false).unwrap());
    });
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    bench_family(
        c,
        "mlp_forward",
        ModelConfig::scaled_mlp(SEQ_LEN * FEATURES, 8),
        Tensor::zeros(&[SEQ_LEN * FEATURES]).unwrap(),
    );
    bench_family(
        c,
        "cnn_forward",
        ModelConfig::scaled_cnn(SEQ_LEN * FEATURES, 8),
        Tensor::zeros(&[1, SEQ_LEN * FEATURES]).unwrap(),
    );
    bench_family(
        c,
        "lstm_forward",
        ModelConfig::scaled_lstm(FEATURES, 8),
        Tensor::zeros(&[SEQ_LEN, FEATURES]).unwrap(),
    );
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
