//! Fleet load generator: how many concurrent affect sessions the sharded
//! runtime sustains, and what the tail latency does on the way to
//! saturation.
//!
//! Each load point builds a fresh fleet (shards ≈ cores, sessions cycled
//! over the three QoS tiers), drives it in free-running lockstep under a
//! shared `VirtualClock` — every round offers one window per session and
//! advances virtual time one tick, with no mid-run drain — then drains
//! and shuts down. Because arrival stamps come from the virtual clock,
//! the recorded latency measures *backlog in ticks*: a window that sat
//! queued while the driver pushed three more rounds shows three virtual
//! seconds of latency. That turns the merged latency histogram into a
//! p99-vs-load curve; wall-clock `Instant` independently measures
//! windows/s.
//!
//! Outputs:
//!   - `benches/results/fleet_throughput.csv` — the full sweep
//!   - `../../BENCH_fleet_throughput.json` — the repo-root trajectory
//!     (sessions/core and p99-vs-load points)
//!
//! Flags:
//!   - `--test` (passed by `cargo test`) shrinks the run to a smoke
//!     signal and skips file output.
//!   - `--sessions N` caps the sweep's largest load point (the CI
//!     fleet-smoke job uses `--sessions 512`; the default tops out at
//!     12288, past the 10k-session target).
//!
//! Every run, at every load point, asserts both accounting invariants:
//! per session `produced == processed + dropped`, per tier
//! `offered == submitted + shed`.

use std::sync::Arc;
use std::time::Instant;

use affect_core::pipeline::FeatureConfig;
use affect_fleet::{drive_lockstep, FleetBuilder, FleetConfig, FleetReport, LoadPlan, QosTier};
use affect_obs::MetricsRegistry;
use affect_rt::{NullActuator, OverflowPolicy, RuntimeConfig, StageConfig, VirtualClock};
use bench::table::Table;

const WINDOW_SAMPLES: usize = 256;
const TICK_NS: u64 = 1_000_000_000;
const ROUNDS: u64 = 4;

/// Per-shard runtime sized for session *count*, not per-window depth:
/// small windows, small feature frames, one worker per shard (the shard
/// itself is the unit of parallelism).
fn runtime_config() -> RuntimeConfig {
    RuntimeConfig {
        feature: FeatureConfig {
            frame_len: 128,
            hop: 64,
            n_mfcc: 4,
            n_mels: 12,
            ..FeatureConfig::default()
        },
        window_samples: WINDOW_SAMPLES,
        workers: 1,
        ingest: StageConfig::new(256, OverflowPolicy::Block),
        classify: StageConfig::new(256, OverflowPolicy::Block),
        control: StageConfig::new(256, OverflowPolicy::Block),
        actuate_capacity: 256,
        // The bench measures capacity, not deadline policy: a generous
        // budget keeps degradation churn out of the throughput numbers.
        deadline_ns: 3_600 * TICK_NS,
        ..RuntimeConfig::default()
    }
}

struct PointResult {
    shards: usize,
    elapsed_s: f64,
    report: FleetReport,
}

/// One load point: build a fleet of `sessions` wearers over `shards`
/// shards, drive `ROUNDS` free-running lockstep rounds, drain, shut
/// down. The timed region covers submit through drain — the full cost of
/// clearing the offered load.
fn run_point(sessions: usize, shards: usize) -> PointResult {
    let mut config = FleetConfig {
        shards,
        runtime: runtime_config(),
        ..FleetConfig::default()
    };
    // Admission is not under test here: lift the cap and the reserves so
    // every synthetic wearer is admitted regardless of routing skew.
    config.admission.max_sessions_per_shard = sessions;
    config.admission.critical_reserve = 0;
    config.admission.standard_reserve = 0;
    let clock = Arc::new(VirtualClock::new());
    let registry = Arc::new(MetricsRegistry::new());
    let mut builder = FleetBuilder::new(config).expect("fleet config");
    for key in 0..sessions as u64 {
        let tier = QosTier::ALL[key as usize % QosTier::ALL.len()];
        builder
            .add_session(key, tier, Box::new(NullActuator))
            .expect("admission cap was lifted");
    }
    let fleet = builder
        .clock(clock.clone())
        .metrics(registry)
        .start()
        .expect("fleet start");
    let plan = LoadPlan {
        rounds: ROUNDS,
        window_samples: WINDOW_SAMPLES,
        tick_ns: TICK_NS,
        drain_every: None,
    };
    let start = Instant::now();
    drive_lockstep(&fleet, &clock, &plan);
    fleet.wait_idle();
    let elapsed_s = start.elapsed().as_secs_f64();
    let report = fleet.shutdown();
    assert!(
        report.accounted(),
        "accounting violation at {sessions} sessions"
    );
    PointResult {
        shards,
        elapsed_s,
        report,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let max_sessions: usize = args
        .iter()
        .position(|a| a == "--sessions")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--sessions takes a number"))
        .unwrap_or(if test_mode { 128 } else { 12_288 });

    // One shard per core is the intended shape; floor at 4 so the sweep
    // exercises routing, QoS shedding, and report merging even on small
    // CI boxes (shards are threads — they timeshare fine).
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 16);

    // Sweep to saturation: geometric load points up to the target.
    let mut points = Vec::new();
    let mut n = 512usize;
    while n < max_sessions {
        points.push(n);
        n *= 4;
    }
    points.push(max_sessions);

    let mut table = Table::new(vec![
        "sessions".into(),
        "shards".into(),
        "sessions_per_shard".into(),
        "offered".into(),
        "submitted".into(),
        "shed".into(),
        "processed".into(),
        "seconds".into(),
        "windows_per_sec".into(),
        "p50_virtual_ticks".into(),
        "p99_virtual_ticks".into(),
    ]);
    let mut json_points = Vec::new();
    eprintln!("\nfleet load sweep ({shards} shards, {ROUNDS} rounds per point):");
    for &sessions in &points {
        let result = run_point(sessions, shards);
        let report = &result.report;
        let admission = &report.admission;
        let latency = report.merged.merged_latency();
        let p50_ticks = latency.quantile(0.50) as f64 / TICK_NS as f64;
        let p99_ticks = latency.quantile(0.99) as f64 / TICK_NS as f64;
        let processed = report.merged.total_processed();
        let per_sec = processed as f64 / result.elapsed_s;
        eprintln!(
            "  {sessions:>6} sessions ({:>5.0}/shard): {processed:>6} windows in {:>6.3}s \
             ({per_sec:>8.0} windows/s), shed {:>5}, p99 {p99_ticks:.2} ticks",
            sessions as f64 / result.shards as f64,
            result.elapsed_s,
            admission.shed.total(),
        );
        table.row(vec![
            sessions.to_string(),
            result.shards.to_string(),
            format!("{:.1}", sessions as f64 / result.shards as f64),
            admission.offered.total().to_string(),
            admission.submitted.total().to_string(),
            admission.shed.total().to_string(),
            processed.to_string(),
            format!("{:.4}", result.elapsed_s),
            format!("{per_sec:.1}"),
            format!("{p50_ticks:.3}"),
            format!("{p99_ticks:.3}"),
        ]);
        json_points.push(format!(
            "    {{\n      \"sessions\": {sessions},\n      \"shards\": {},\n      \
             \"sessions_per_shard\": {:.1},\n      \"windows_per_sec\": {per_sec:.1},\n      \
             \"shed\": {},\n      \"p50_virtual_ticks\": {p50_ticks:.3},\n      \
             \"p99_virtual_ticks\": {p99_ticks:.3},\n      \"accounted\": true\n    }}",
            result.shards,
            sessions as f64 / result.shards as f64,
            admission.shed.total(),
        ));
    }

    if !test_mode && max_sessions >= 10_000 {
        eprintln!("  sustained {max_sessions} concurrent sessions (target: 10000+)");
    }

    // `--test` keeps the committed results untouched: a 128-session run
    // is a smoke signal, not a measurement.
    if test_mode {
        println!("test mode: skipping csv/json output");
        return;
    }

    let csv_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/benches/results/fleet_throughput.csv"
    );
    table.write_csv(csv_path).expect("write fleet sweep csv");
    println!("wrote {csv_path}");

    let json_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_fleet_throughput.json"
    );
    let json = format!(
        "{{\n  \"bench\": \"fleet_throughput\",\n  \"unit\": \"windows_per_sec\",\n  \
         \"shards\": {shards},\n  \"rounds_per_point\": {ROUNDS},\n  \"points\": [\n{}\n  ]\n}}\n",
        json_points.join(",\n")
    );
    std::fs::write(json_path, json).expect("write fleet_throughput json");
    println!("wrote {json_path}");
}
