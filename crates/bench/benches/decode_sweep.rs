//! Decode-throughput sweep over QP × resolution × affect mode, one run
//! per decoder kernel backend (ISSUE 7 tentpole gate).
//!
//! Each cell encodes a synthetic clip once, then decodes it repeatedly
//! with `Decoder::with_kernels` pinned to the `reference` and `simd`
//! backends, reporting macroblocks per second (the decoder's natural
//! work unit — `Activity::macroblocks` counts every decoded MB, so the
//! metric is identical across modes even when the Input Selector drops
//! NAL units). Writes:
//!   - `benches/results/decode_sweep.csv` — the full grid with both
//!     backends' MB/s and the simd/reference speedup per cell
//!   - `../../BENCH_decode_sweep.json` — the repo-root trajectory file
//!     CI's bench-smoke job uploads as an artifact
//!
//! The acceptance gate: with real vector lanes (backend name other than
//! `simd-scalar`), at least one cell must reach a ≥ 1.5× speedup. The
//! gate is skipped in `--test` mode (CI smoke / `cargo test`) and when
//! the simd backend resolves to the portable scalar lanes, where parity
//! — not speedup — is the contract.

use std::time::Instant;

use affect_core::policy::VideoPowerMode;
use bench::table::Table;
use criterion::black_box;
use h264::adaptive::options_for_mode;
use h264::backend::BackendKind;
use h264::decoder::Decoder;
use h264::encoder::{Encoder, EncoderConfig, GopPattern};
use h264::video::synthetic_clip;

/// Minimum simd/reference speedup at least one cell must reach.
const SPEEDUP_GATE: f64 = 1.5;
/// Target wall-clock per (cell, backend) measurement.
const TARGET_SECS: f64 = 0.25;

struct Cell {
    qp: u8,
    width: usize,
    height: usize,
    mode: VideoPowerMode,
}

fn grid(test_mode: bool) -> Vec<Cell> {
    let qps: &[u8] = if test_mode { &[28] } else { &[12, 28, 40] };
    let sizes: &[(usize, usize)] = if test_mode {
        &[(48, 48)]
    } else {
        &[(48, 48), (96, 96), (176, 144)]
    };
    let modes: &[VideoPowerMode] = if test_mode {
        &[VideoPowerMode::Standard]
    } else {
        &[VideoPowerMode::Standard, VideoPowerMode::Combined]
    };
    let mut cells = Vec::new();
    for &qp in qps {
        for &(width, height) in sizes {
            for &mode in modes {
                cells.push(Cell {
                    qp,
                    width,
                    height,
                    mode,
                });
            }
        }
    }
    cells
}

/// Decodes `stream` `reps` times with the given backend and returns
/// (MB/s, macroblocks per decode).
fn measure(kind: BackendKind, cell: &Cell, stream: &[u8], reps: usize) -> (f64, u64) {
    let options = options_for_mode(cell.mode);
    // Warm: touches the stream once and yields the per-decode MB count.
    let mb_per_decode = Decoder::with_kernels(options, kind.kernels())
        .decode(stream)
        .expect("intact stream decodes")
        .activity
        .macroblocks;
    let start = Instant::now();
    let mut total_mb = 0u64;
    for _ in 0..reps {
        let out = Decoder::with_kernels(options, kind.kernels())
            .decode(black_box(stream))
            .expect("intact stream decodes");
        total_mb += out.activity.macroblocks;
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    (total_mb as f64 / elapsed, mb_per_decode)
}

fn mode_label(mode: VideoPowerMode) -> &'static str {
    match mode {
        VideoPowerMode::Standard => "standard",
        VideoPowerMode::NalDeletion => "nal_deletion",
        VideoPowerMode::DeblockOff => "deblock_off",
        VideoPowerMode::Combined => "combined",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");

    let simd_name = BackendKind::Simd.kernels().name();
    let vector_lanes = simd_name != "simd-scalar";
    eprintln!("decode_sweep: simd backend is `{simd_name}`");

    let mut table = Table::new(vec![
        "qp".into(),
        "size".into(),
        "mode".into(),
        "mb_per_decode".into(),
        "ref_mb_s".into(),
        "simd_mb_s".into(),
        "speedup".into(),
    ]);
    let mut json_points = Vec::new();
    let mut best_speedup = 0.0f64;

    for cell in grid(test_mode) {
        let frames =
            synthetic_clip(cell.width, cell.height, if test_mode { 4 } else { 6 }, 17).unwrap();
        let stream = Encoder::new(EncoderConfig {
            qp: cell.qp,
            gop: GopPattern {
                intra_period: 4,
                b_between: 1,
            },
            ..EncoderConfig::default()
        })
        .unwrap()
        .encode(&frames)
        .unwrap();

        // Size the rep count off one timed reference decode so each
        // measurement fills roughly TARGET_SECS regardless of cell cost.
        let reps = if test_mode {
            2
        } else {
            let t0 = Instant::now();
            let _ = Decoder::with_kernels(
                options_for_mode(cell.mode),
                BackendKind::Reference.kernels(),
            )
            .decode(&stream)
            .unwrap();
            let once = t0.elapsed().as_secs_f64().max(1e-6);
            ((TARGET_SECS / once) as usize).clamp(3, 400)
        };

        let (ref_mb_s, mb) = measure(BackendKind::Reference, &cell, &stream, reps);
        let (simd_mb_s, _) = measure(BackendKind::Simd, &cell, &stream, reps);
        let speedup = simd_mb_s / ref_mb_s;
        best_speedup = best_speedup.max(speedup);

        let size = format!("{}x{}", cell.width, cell.height);
        let mode = mode_label(cell.mode);
        eprintln!(
            "  qp {:>2} {:>8} {:<10} ref {:>9.0} MB/s  simd {:>9.0} MB/s  x{:.2}",
            cell.qp, size, mode, ref_mb_s, simd_mb_s, speedup
        );
        table.row(vec![
            cell.qp.to_string(),
            size.clone(),
            mode.to_string(),
            mb.to_string(),
            format!("{ref_mb_s:.1}"),
            format!("{simd_mb_s:.1}"),
            format!("{speedup:.3}"),
        ]);
        json_points.push(format!(
            "    {{\"qp\": {}, \"size\": \"{}\", \"mode\": \"{}\", \"mb_per_decode\": {}, \
             \"reference_mb_per_s\": {:.1}, \"simd_mb_per_s\": {:.1}, \"speedup\": {:.3}}}",
            cell.qp, size, mode, mb, ref_mb_s, simd_mb_s, speedup
        ));
    }

    eprintln!("decode_sweep: best simd/reference speedup x{best_speedup:.2}");

    // `--test` keeps the committed results untouched: a 2-rep debug run
    // would overwrite the tracked numbers with noise.
    if test_mode {
        return;
    }

    let csv_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/benches/results/decode_sweep.csv"
    );
    table.write_csv(csv_path).expect("write csv");
    eprintln!("wrote {csv_path}");

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decode_sweep.json");
    let json = format!(
        "{{\n  \"bench\": \"decode_sweep\",\n  \"unit\": \"macroblocks_per_sec\",\n  \
         \"simd_backend\": \"{simd_name}\",\n  \"best_speedup\": {best_speedup:.3},\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        json_points.join(",\n")
    );
    std::fs::write(json_path, json).expect("write json");
    eprintln!("wrote {json_path}");

    // The tentpole acceptance gate. With portable scalar lanes the simd
    // backend is a parity build, not a fast one — conformance covers it.
    if vector_lanes {
        assert!(
            best_speedup >= SPEEDUP_GATE,
            "simd backend best speedup x{best_speedup:.2} below the x{SPEEDUP_GATE} gate"
        );
    }
}
