//! Per-window classify-path benchmark: the seed's allocating kernels
//! against the planned, scratch-buffer hot path introduced by the
//! zero-allocation rework.
//!
//! "Before" replays the pre-change per-window work faithfully, as
//! in-bench replicas of the seed code: MFCC with on-the-fly Hann
//! coefficients, ad-hoc `rfft_magnitude`, per-call mel/DCT vectors with
//! per-element trig; inference through naive triple-loop conv and
//! sequential matvec with the seed's per-layer `input_cache` clones and
//! per-op output allocations. "After" runs `MfccExtractor::extract_into`
//! (precomputed plan/window/filterbank/DCT basis) and
//! `predict_proba_with` through a warm `Scratch` arena over the blocked
//! kernels.
//!
//! Besides the timings, the bench measures per-window heap traffic with
//! a counting global allocator and writes:
//!   - `benches/results/kernel_hotpath.csv` — per-stage latency, bytes
//!     allocated per call, and speedups
//!   - `../../BENCH_kernel_hotpath.json` — the repo-root trajectory
//!     point tracked across PRs
//!
//! `--test` (passed by `cargo test` and the CI smoke job) shrinks the
//! loops to a handful of iterations and skips the speedup gate.

use std::time::Instant;

use affect_core::classifier::ModelConfig;
use alloc_counter::CountingAllocator;
use bench::table::Table;
use criterion::black_box;
use dsp::fft::rfft_magnitude;
use dsp::mel::dct_ii;
use dsp::{MelFilterBank, MfccExtractor, Window};
use nn::{Scratch, Sequential};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

const SAMPLE_RATE: f32 = 16_000.0;
const WINDOW_SAMPLES: usize = 1024;
const FRAME_LEN: usize = 512;
const HOP: usize = 256;
const N_MELS: usize = 26;
const N_MFCC: usize = 13;
const CLASSES: usize = 7;

/// Frames per analysis window.
const FRAMES: usize = (WINDOW_SAMPLES - FRAME_LEN) / HOP + 1;
/// Flat feature vector length fed to the classifiers.
const FEAT_DIM: usize = FRAMES * N_MFCC;

fn synth_window() -> Vec<f32> {
    (0..WINDOW_SAMPLES)
        .map(|i| {
            let t = i as f32 / SAMPLE_RATE;
            (2.0 * std::f32::consts::PI * 220.0 * t).sin()
                + 0.3 * (2.0 * std::f32::consts::PI * 570.0 * t).sin()
        })
        .collect()
}

fn lcg_weights(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as i32 % 1000) as f32 / 2500.0
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Seed-faithful "before" kernels. These replicate the pre-change code paths
// line for line: every op allocates its output, dense/conv layers clone
// their input into a cache exactly as the seed `forward` did on every call
// (inference included), and conv uses the naive triple loop with per-element
// weight indexing.
// ---------------------------------------------------------------------------

/// The seed's `MfccExtractor::extract`: windows with freshly computed Hann
/// coefficients, allocates the FFT buffer and every intermediate vector,
/// and evaluates the DCT cosines per call.
fn seed_extract(bank: &MelFilterBank, frame: &[f32]) -> Vec<f32> {
    let mut windowed = frame.to_vec();
    Window::Hann.apply(&mut windowed).unwrap();
    let spectrum = rfft_magnitude(&windowed).unwrap();
    let energies = bank.apply(&spectrum).unwrap();
    let log_energies: Vec<f32> = energies.iter().map(|&e| (e.max(1e-10)).ln()).collect();
    dct_ii(&log_energies, N_MFCC)
}

struct SeedDense {
    w: Vec<f32>, // [m, n]
    b: Vec<f32>,
    m: usize,
    n: usize,
    cache: Option<Vec<f32>>,
}

impl SeedDense {
    fn new(n: usize, m: usize, seed: u64) -> Self {
        Self {
            w: lcg_weights(m * n, seed),
            b: lcg_weights(m, seed + 1),
            m,
            n,
            cache: None,
        }
    }

    fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.m];
        for (row, out_val) in out.iter_mut().enumerate() {
            let base = row * self.n;
            let mut acc = 0.0f32;
            for (j, &vj) in x.iter().enumerate() {
                acc += self.w[base + j] * vj;
            }
            *out_val = acc + self.b[row];
        }
        self.cache = Some(x.to_vec());
        out
    }
}

struct SeedConv {
    w: Vec<f32>, // [out_ch, in_ch * k]
    b: Vec<f32>,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    cache: Option<Vec<f32>>,
}

impl SeedConv {
    fn new(in_ch: usize, out_ch: usize, kernel: usize, seed: u64) -> Self {
        Self {
            w: lcg_weights(out_ch * in_ch * kernel, seed),
            b: lcg_weights(out_ch, seed + 1),
            in_ch,
            out_ch,
            kernel,
            cache: None,
        }
    }

    fn forward(&mut self, x: &[f32], t_in: usize) -> Vec<f32> {
        let t_out = t_in - self.kernel + 1;
        let mut out = vec![0.0f32; self.out_ch * t_out];
        for o in 0..self.out_ch {
            let b = self.b[o];
            for t in 0..t_out {
                let mut acc = b;
                for c in 0..self.in_ch {
                    let in_base = c * t_in + t;
                    for k in 0..self.kernel {
                        acc += self.w[o * self.in_ch * self.kernel + c * self.kernel + k]
                            * x[in_base + k];
                    }
                }
                out[o * t_out + t] = acc;
            }
        }
        self.cache = Some(x.to_vec());
        out
    }
}

fn seed_relu(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

fn seed_maxpool(x: &[f32], channels: usize, t: usize, pool: usize) -> Vec<f32> {
    let t_out = t / pool;
    let mut out = vec![f32::NEG_INFINITY; channels * t_out];
    for c in 0..channels {
        for (i, out_val) in out[c * t_out..(c + 1) * t_out].iter_mut().enumerate() {
            for k in 0..pool {
                *out_val = out_val.max(x[c * t + i * pool + k]);
            }
        }
    }
    out
}

fn seed_softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// The seed's scaled MLP: 39 → 48 → 24 → 12 → 7 with ReLU between.
struct SeedMlp {
    layers: Vec<SeedDense>,
}

impl SeedMlp {
    fn new() -> Self {
        let dims = [FEAT_DIM, 48, 24, 12, CLASSES];
        Self {
            layers: dims
                .windows(2)
                .enumerate()
                .map(|(i, d)| SeedDense::new(d[0], d[1], 100 + i as u64 * 7))
                .collect(),
        }
    }

    fn predict_proba(&mut self, x: &[f32]) -> Vec<f32> {
        let last = self.layers.len() - 1;
        let mut cur = x.to_vec();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            cur = layer.forward(&cur);
            if i < last {
                cur = seed_relu(&cur);
            }
        }
        seed_softmax(&cur)
    }
}

/// The seed's scaled CNN: three conv(k=3)+ReLU+pool(2) blocks over
/// channels 1 → 8 → 16 → 32, then dense 96 → 32 → 7.
struct SeedCnn {
    convs: Vec<SeedConv>,
    dense: Vec<SeedDense>,
    pool: usize,
}

impl SeedCnn {
    fn new() -> Self {
        let channels = [1usize, 8, 16, 32];
        let convs: Vec<SeedConv> = channels
            .windows(2)
            .enumerate()
            .map(|(i, c)| SeedConv::new(c[0], c[1], 3, 200 + i as u64 * 11))
            .collect();
        let mut t = FEAT_DIM;
        for _ in &convs {
            t = (t - 2) / 2;
        }
        let flat = channels[channels.len() - 1] * t;
        Self {
            convs,
            dense: vec![
                SeedDense::new(flat, 32, 300),
                SeedDense::new(32, CLASSES, 301),
            ],
            pool: 2,
        }
    }

    fn predict_proba(&mut self, x: &[f32]) -> Vec<f32> {
        let mut cur = x.to_vec();
        let mut t = FEAT_DIM;
        for conv in &mut self.convs {
            cur = conv.forward(&cur, t);
            t -= conv.kernel - 1;
            cur = seed_relu(&cur);
            cur = seed_maxpool(&cur, conv.out_ch, t, self.pool);
            t /= self.pool;
        }
        // Flatten is a no-op on the flat Vec, but the seed allocated a copy.
        cur = cur.clone();
        let logits = {
            let h = seed_relu(&self.dense[0].forward(&cur));
            self.dense[1].forward(&h)
        };
        seed_softmax(&logits)
    }
}

/// One pre-change window: seed MFCC per frame, then both classifier
/// families through the seed's naive allocating forward.
fn before_window(
    window: &[f32],
    bank: &MelFilterBank,
    mlp: &mut SeedMlp,
    cnn: &mut SeedCnn,
) -> f32 {
    let mut features = Vec::new();
    let mut start = 0;
    while start + FRAME_LEN <= window.len() {
        features.extend_from_slice(&seed_extract(bank, &window[start..start + FRAME_LEN]));
        start += HOP;
    }
    mlp.predict_proba(&features)[0] + cnn.predict_proba(&features)[0]
}

// ---------------------------------------------------------------------------
// Post-change hot path.
// ---------------------------------------------------------------------------

/// Reusable state for the post-change path: everything below is warm after
/// the first window.
struct HotState {
    mfcc: MfccExtractor,
    features: Vec<f32>,
    coeffs: Vec<f32>,
    scratch: Scratch,
}

struct Models {
    mlp: Sequential,
    cnn: Sequential,
}

/// One post-change window: `extract_into` per frame, then both families
/// through `predict_proba_with` on the shared scratch arena.
fn after_window(window: &[f32], state: &mut HotState, models: &mut Models) -> f32 {
    state.features.clear();
    let mut start = 0;
    while start + FRAME_LEN <= window.len() {
        state
            .mfcc
            .extract_into(&window[start..start + FRAME_LEN], &mut state.coeffs)
            .unwrap();
        state.features.extend_from_slice(&state.coeffs);
        start += HOP;
    }
    let first = models
        .mlp
        .predict_proba_with(&state.features, &[FEAT_DIM], &mut state.scratch)
        .unwrap()[0];
    first
        + models
            .cnn
            .predict_proba_with(&state.features, &[1, FEAT_DIM], &mut state.scratch)
            .unwrap()[0]
}

/// Mean wall time (µs) and heap bytes per call of `f` over `iters` runs.
fn measure(iters: u64, mut f: impl FnMut() -> f32) -> (f64, f64) {
    // Warm-up outside the measurement: sizes scratch arenas and caches.
    black_box(f());
    black_box(f());
    let before = alloc_counter::snapshot();
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let elapsed = start.elapsed();
    let delta = alloc_counter::snapshot().since(&before);
    (
        elapsed.as_nanos() as f64 / iters as f64 / 1e3,
        delta.bytes_allocated as f64 / iters as f64,
    )
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let iters: u64 = if test_mode { 5 } else { 2_000 };

    let window = synth_window();
    let bank = MelFilterBank::new(SAMPLE_RATE, FRAME_LEN, N_MELS).unwrap();
    let mut seed_mlp = SeedMlp::new();
    let mut seed_cnn = SeedCnn::new();
    let mut models = Models {
        mlp: ModelConfig::scaled_mlp(FEAT_DIM, CLASSES)
            .build(11)
            .unwrap(),
        cnn: ModelConfig::scaled_cnn(FEAT_DIM, CLASSES)
            .build(12)
            .unwrap(),
    };
    let mut hot = HotState {
        mfcc: MfccExtractor::new(SAMPLE_RATE, FRAME_LEN, N_MELS, N_MFCC).unwrap(),
        features: Vec::new(),
        coeffs: Vec::new(),
        scratch: Scratch::new(),
    };

    // Stage-level measurements (one frame / one forward), then the full
    // per-window classify path both ways.
    let frame = &window[..FRAME_LEN];
    let (mfcc_b_us, mfcc_b_bytes) = measure(iters, || seed_extract(&bank, frame)[0]);
    let (mfcc_a_us, mfcc_a_bytes) = measure(iters, || {
        hot.mfcc.extract_into(frame, &mut hot.coeffs).unwrap();
        hot.coeffs[0]
    });

    let features: Vec<f32> = (0..FEAT_DIM).map(|i| (i as f32 * 0.17).sin()).collect();
    let (mlp_b_us, mlp_b_bytes) = measure(iters, || seed_mlp.predict_proba(&features)[0]);
    let (mlp_a_us, mlp_a_bytes) = measure(iters, || {
        models
            .mlp
            .predict_proba_with(&features, &[FEAT_DIM], &mut hot.scratch)
            .unwrap()[0]
    });
    let (cnn_b_us, cnn_b_bytes) = measure(iters, || seed_cnn.predict_proba(&features)[0]);
    let (cnn_a_us, cnn_a_bytes) = measure(iters, || {
        models
            .cnn
            .predict_proba_with(&features, &[1, FEAT_DIM], &mut hot.scratch)
            .unwrap()[0]
    });

    let (win_b_us, win_b_bytes) = measure(iters, || {
        before_window(&window, &bank, &mut seed_mlp, &mut seed_cnn)
    });
    let (win_a_us, win_a_bytes) = measure(iters, || after_window(&window, &mut hot, &mut models));

    let mut table = Table::new(vec![
        "stage".into(),
        "before_us".into(),
        "after_us".into(),
        "speedup".into(),
        "before_bytes_per_call".into(),
        "after_bytes_per_call".into(),
    ]);
    let mut emit = |stage: &str, b_us: f64, a_us: f64, b_bytes: f64, a_bytes: f64| {
        println!(
            "{stage:<28} before {b_us:>9.2} µs  after {a_us:>9.2} µs  speedup {:>5.2}x  bytes {b_bytes:>8.0} -> {a_bytes:>6.0}",
            b_us / a_us
        );
        table.row(vec![
            stage.into(),
            format!("{b_us:.3}"),
            format!("{a_us:.3}"),
            format!("{:.2}", b_us / a_us),
            format!("{b_bytes:.0}"),
            format!("{a_bytes:.0}"),
        ]);
    };
    println!("kernel_hotpath: per-window classify path ({iters} iters/stage)");
    emit(
        "mfcc_frame_512",
        mfcc_b_us,
        mfcc_a_us,
        mfcc_b_bytes,
        mfcc_a_bytes,
    );
    emit("mlp_forward", mlp_b_us, mlp_a_us, mlp_b_bytes, mlp_a_bytes);
    emit("cnn_forward", cnn_b_us, cnn_a_us, cnn_b_bytes, cnn_a_bytes);
    emit(
        "window_classify_path",
        win_b_us,
        win_a_us,
        win_b_bytes,
        win_a_bytes,
    );

    // `--test` keeps the committed results untouched: five iterations are a
    // smoke signal, not a measurement.
    if test_mode {
        println!("test mode: skipping csv/json output");
        return;
    }

    let csv_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/benches/results/kernel_hotpath.csv"
    );
    table.write_csv(csv_path).expect("write kernel_hotpath csv");
    println!("wrote {csv_path}");

    // Repo-root trajectory point: one JSON object per optimization PR so
    // the per-window cost is trackable across the stack.
    let json_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_kernel_hotpath.json"
    );
    let json = format!(
        "{{\n  \"bench\": \"kernel_hotpath\",\n  \"unit\": \"us_per_window\",\n  \"points\": [\n    {{\n      \"label\": \"zero-alloc-kernels\",\n      \"window_before_us\": {win_b_us:.3},\n      \"window_after_us\": {win_a_us:.3},\n      \"speedup\": {:.3},\n      \"bytes_before_per_window\": {win_b_bytes:.0},\n      \"bytes_after_per_window\": {win_a_bytes:.0}\n    }}\n  ]\n}}\n",
        win_b_us / win_a_us
    );
    std::fs::write(json_path, json).expect("write kernel_hotpath json");
    println!("wrote {json_path}");

    assert!(
        win_b_us / win_a_us >= 2.0,
        "classify-path speedup regressed below 2x: {:.2}",
        win_b_us / win_a_us
    );
}
