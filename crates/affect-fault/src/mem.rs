//! Deterministic memory-pressure injection: seed-pure phantom charges
//! that walk a [`MemoryBudget`] through all four
//! pressure bands.
//!
//! Real memory pressure is hard to stage in a test (it depends on
//! allocator behaviour, session mix, and platform), so chaos runs inject
//! *phantom* bytes instead: a pure function of `(seed, tick)` decides how
//! many fake bytes sit on top of the real charges at every governor tick.
//! Because the phantom charge is written absolutely
//! ([`MemoryBudget::set_phantom`]
//! overwrites rather than accumulates), two runs with the same seed see
//! byte-identical pressure at every tick regardless of thread
//! interleaving — the same property the stage fault plan has.
//!
//! The schedule is a staircase: each cycle of `period_ticks` spends a
//! quarter in each band's byte range (Green → Yellow → Red → Critical),
//! with seed-dependent jitter *inside* the range so different seeds stress
//! different usage points without ever leaving the intended band. Real
//! charges add on top of the phantom load, so the observed band can only
//! ever round *up* from the scheduled one — pressure chaos never
//! under-delivers.

use affect_rt::{MemoryBudget, PressureBand};

use crate::decision_hash;

/// Namespace tag for phantom-charge draws in the hash stream.
pub const SITE_MEM: u64 = 0x4D45_4D50; // "MEMP"

/// Permille range of the budget each band's quarter draws from:
/// `(low, width)` such that a draw lands in `[low, low + width)`.
const BAND_RANGES: [(u64, u64); 4] = [
    (0, 500),   // Green: well under the 700‰ threshold
    (700, 140), // Yellow: [700, 840) — clear of the 850‰ Red line
    (850, 90),  // Red: [850, 940) — clear of the 950‰ Critical line
    (950, 100), // Critical: [950, 1050) — may overshoot the budget
];

/// A deterministic phantom-charge schedule against one memory budget.
///
/// [`phantom_bytes`](MemPressurePlan::phantom_bytes) is a pure function of
/// `(seed, tick)`; [`apply`](MemPressurePlan::apply) writes it into a live
/// [`MemoryBudget`] and returns the band now in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemPressurePlan {
    seed: u64,
    budget_bytes: u64,
    period_ticks: u64,
}

impl MemPressurePlan {
    /// A staircase over `budget_bytes` with the default 64-tick cycle
    /// (16 ticks per band).
    pub fn staircase(seed: u64, budget_bytes: u64) -> Self {
        Self::with_period(seed, budget_bytes, 64)
    }

    /// A staircase with an explicit cycle length.
    ///
    /// # Panics
    ///
    /// Panics when `period_ticks < 4` — the cycle could not visit every
    /// band.
    pub fn with_period(seed: u64, budget_bytes: u64, period_ticks: u64) -> Self {
        assert!(
            period_ticks >= 4,
            "a pressure cycle needs at least one tick per band"
        );
        Self {
            seed,
            budget_bytes,
            period_ticks,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The budget the schedule is scaled against.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// The band the staircase schedules for `tick` (before real charges
    /// are added on top).
    pub fn scheduled_band(&self, tick: u64) -> PressureBand {
        let quarter = (tick % self.period_ticks) * 4 / self.period_ticks;
        PressureBand::ALL[quarter as usize]
    }

    /// The phantom bytes to charge at `tick` — pure in `(seed, tick)`, so
    /// replay is byte-stable in any interleaving.
    pub fn phantom_bytes(&self, tick: u64) -> u64 {
        let (low, width) = BAND_RANGES[self.scheduled_band(tick) as usize];
        let jitter = decision_hash(self.seed, SITE_MEM, tick, 0) % width;
        // permille → bytes against the configured budget (u128 keeps even
        // absurd budgets exact).
        ((u128::from(self.budget_bytes) * u128::from(low + jitter)) / 1000) as u64
    }

    /// Writes tick `tick`'s phantom charge into `budget` and returns the
    /// band now in force (scheduled band, possibly rounded up by real
    /// charges sharing the budget).
    pub fn apply(&self, budget: &MemoryBudget, tick: u64) -> PressureBand {
        budget.set_phantom(self.phantom_bytes(tick));
        budget.refresh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affect_rt::MemConsumer;

    #[test]
    fn schedule_is_pure_and_seed_sensitive() {
        let a = MemPressurePlan::staircase(7, 1 << 20);
        let b = MemPressurePlan::staircase(7, 1 << 20);
        let c = MemPressurePlan::staircase(8, 1 << 20);
        let mut diverged = false;
        for tick in 0..512 {
            assert_eq!(a.phantom_bytes(tick), b.phantom_bytes(tick));
            diverged |= a.phantom_bytes(tick) != c.phantom_bytes(tick);
        }
        assert!(diverged, "different seeds must differ somewhere");
    }

    #[test]
    fn staircase_walks_all_four_bands_every_cycle() {
        let plan = MemPressurePlan::staircase(42, 1_000_000);
        let budget = MemoryBudget::new(plan.budget_bytes());
        let mut seen = [false; 4];
        for tick in 0..64 {
            let band = plan.apply(&budget, tick);
            assert_eq!(band, plan.scheduled_band(tick), "no real charges");
            seen[band as usize] = true;
        }
        assert_eq!(seen, [true; 4], "one cycle visits every band");
    }

    #[test]
    fn phantom_lands_inside_the_scheduled_band() {
        let plan = MemPressurePlan::with_period(3, 10_000, 16);
        for tick in 0..160 {
            let (low, width) = BAND_RANGES[plan.scheduled_band(tick) as usize];
            let permille = plan.phantom_bytes(tick) * 1000 / plan.budget_bytes();
            assert!(
                (low.saturating_sub(1)..low + width).contains(&permille),
                "tick {tick}: {permille}‰ outside [{low}, {})",
                low + width
            );
        }
    }

    #[test]
    fn real_charges_only_round_the_band_up() {
        let plan = MemPressurePlan::staircase(11, 1_000_000);
        let budget = MemoryBudget::new(plan.budget_bytes());
        budget.charge(MemConsumer::RingQueues, 50_000); // 50‰ of real load
        for tick in 0..64 {
            let observed = plan.apply(&budget, tick);
            assert!(
                observed >= plan.scheduled_band(tick),
                "tick {tick}: {observed:?} under {:?}",
                plan.scheduled_band(tick)
            );
        }
    }

    #[test]
    fn apply_is_absolute_so_replay_is_byte_stable() {
        let plan = MemPressurePlan::staircase(99, 1 << 16);
        let once = MemoryBudget::new(plan.budget_bytes());
        let twice = MemoryBudget::new(plan.budget_bytes());
        for tick in 0..128 {
            plan.apply(&once, tick);
            // Replaying every tick twice must not accumulate anything.
            plan.apply(&twice, tick);
            plan.apply(&twice, tick);
            assert_eq!(once.used_bytes(), twice.used_bytes(), "tick {tick}");
        }
    }
}
